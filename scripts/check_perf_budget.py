#!/usr/bin/env python3
"""Perf smoke: replay wall-clock versus a checked-in budget file.

Usage::

    python scripts/check_perf_budget.py benchmarks/trace_scaling_budget.json
    python scripts/check_perf_budget.py benchmarks/replay_scaling_budget.json

Runs the replay profile for every entry in the budget file — a cluster
replay (``repro.runner.profile_cluster``) by default, or a sharded fleet
replay (``repro.runner.profile_fleet``) when the entry says ``"kind":
"fleet"`` — taking the best of ``repeats`` runs, and fails if any
measurement exceeds ``regression_factor`` times its ``budget_s``.
Budgets are deliberately loose (~4x a warm local run), so the gate only
trips on a genuine hot-path regression — not on a noisy shared runner.
Used by the CI perf-smoke job; run it locally after touching
``repro/sim/trace.py``, ``repro/serving/cluster.py`` or
``repro/fleet/parallel.py``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import profile_cluster, profile_fleet  # noqa: E402


def _measure(entry, rate_hz):
    if entry.get("kind", "cluster") == "fleet":
        return profile_fleet(
            requests=entry["requests"],
            rate_hz=entry.get("rate_hz", rate_hz),
            regions=entry.get("regions", 4),
            jobs=entry.get("jobs", 1),
            routing=entry.get("routing", "round-robin"))
    return profile_cluster(
        requests=entry["requests"], rate_hz=rate_hz,
        trace_retention=entry["trace_retention"],
        fast_forward=entry["fast_forward"])


def _detail(entry, profile):
    if entry.get("kind", "cluster") == "fleet":
        return (f"mode={profile.mode}  jobs={profile.jobs}  "
                f"rollbacks={profile.rollbacks}")
    return f"retained={profile.peak_retained_records}"


def main(argv):
    if len(argv) != 1:
        print("usage: check_perf_budget.py <budget.json>", file=sys.stderr)
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        budget = json.load(handle)
    factor = budget.get("regression_factor", 2.0)
    repeats = budget.get("repeats", 3)
    rate_hz = budget.get("rate_hz", 200.0)
    failures = 0
    width = max(len(entry["name"]) for entry in budget["entries"])
    for entry in budget["entries"]:
        best = None
        for _ in range(repeats):
            profile = _measure(entry, rate_hz)
            if best is None or profile.wall_s < best.wall_s:
                best = profile
        ceiling = factor * entry["budget_s"]
        verdict = "ok" if best.wall_s <= ceiling else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"{entry['name']:<{width}}  wall={best.wall_s:7.3f}s  "
              f"budget={entry['budget_s']:.3f}s  ceiling={ceiling:.3f}s  "
              f"requests={best.requests}  "
              f"{_detail(entry, best)}  {verdict}")
    if failures:
        print(f"{failures} measurement(s) over {factor}x budget",
              file=sys.stderr)
        return 1
    print("all measurements within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
