#!/usr/bin/env python3
"""Perf smoke: replay wall-clock versus a checked-in budget file.

Usage::

    python scripts/check_perf_budget.py benchmarks/trace_scaling_budget.json
    python scripts/check_perf_budget.py benchmarks/replay_scaling_budget.json
    python scripts/check_perf_budget.py benchmarks/pack_transfer_budget.json

Runs the replay profile for every entry in the budget file — a cluster
replay (``repro.runner.profile_cluster``) by default, a sharded fleet
replay (``repro.runner.profile_fleet``) when the entry says ``"kind":
"fleet"``, or the kernel-pack spin-up comparison
(``repro.runner.profile_packs``, gated on its pack-restore leg) when it
says ``"kind": "packs"`` — taking the best of ``repeats`` runs, and
fails if any measurement exceeds ``regression_factor`` times its
``budget_s``.  An entry with an unrecognized ``kind`` is a hard error
(exit 2) before anything is measured, so a typo can't silently fall
back to the cluster profile.  Budgets are deliberately loose (~4x a
warm local run), so the gate only trips on a genuine hot-path
regression — not on a noisy shared runner.  Used by the CI perf-smoke
job; run it locally after touching ``repro/sim/trace.py``,
``repro/serving/cluster.py``, ``repro/fleet/parallel.py`` or
``repro/packs/store.py``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import (profile_cluster, profile_fleet,  # noqa: E402
                          profile_packs)

KNOWN_KINDS = ("cluster", "fleet", "packs")


def _measure(entry, rate_hz):
    kind = entry.get("kind", "cluster")
    if kind == "fleet":
        return profile_fleet(
            requests=entry["requests"],
            rate_hz=entry.get("rate_hz", rate_hz),
            regions=entry.get("regions", 4),
            jobs=entry.get("jobs", 1),
            routing=entry.get("routing", "round-robin"))
    if kind == "packs":
        return profile_packs(
            requests=entry["requests"],
            rate_hz=entry.get("rate_hz", rate_hz),
            instances=entry.get("instances", 2),
            idle_timeout_s=entry.get("idle_timeout_s", 0.05))
    return profile_cluster(
        requests=entry["requests"], rate_hz=rate_hz,
        trace_retention=entry["trace_retention"],
        fast_forward=entry["fast_forward"])


def _wall(entry, profile):
    """The wall-clock reading the entry's budget gates."""
    if entry.get("kind", "cluster") == "packs":
        return profile.wall_pack_s
    return profile.wall_s


def _detail(entry, profile):
    kind = entry.get("kind", "cluster")
    if kind == "fleet":
        return (f"mode={profile.mode}  jobs={profile.jobs}  "
                f"rollbacks={profile.rollbacks}")
    if kind == "packs":
        return (f"restores={profile.pack_restores}  "
                f"speedup={profile.modeled_speedup_vs_cold:.2f}x-cold")
    return f"retained={profile.peak_retained_records}"


def main(argv):
    if len(argv) != 1:
        print("usage: check_perf_budget.py <budget.json>", file=sys.stderr)
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        budget = json.load(handle)
    bad = sorted({entry.get("kind", "cluster") for entry in budget["entries"]}
                 - set(KNOWN_KINDS))
    if bad:
        print(f"unknown budget entry kind(s) {bad}; expected one of "
              f"{list(KNOWN_KINDS)}", file=sys.stderr)
        return 2
    factor = budget.get("regression_factor", 2.0)
    repeats = budget.get("repeats", 3)
    rate_hz = budget.get("rate_hz", 200.0)
    failures = 0
    width = max(len(entry["name"]) for entry in budget["entries"])
    for entry in budget["entries"]:
        best = best_wall = None
        for _ in range(repeats):
            profile = _measure(entry, rate_hz)
            wall = _wall(entry, profile)
            if best is None or wall < best_wall:
                best, best_wall = profile, wall
        ceiling = factor * entry["budget_s"]
        verdict = "ok" if best_wall <= ceiling else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"{entry['name']:<{width}}  wall={best_wall:7.3f}s  "
              f"budget={entry['budget_s']:.3f}s  ceiling={ceiling:.3f}s  "
              f"requests={best.requests}  "
              f"{_detail(entry, best)}  {verdict}")
    if failures:
        print(f"{failures} measurement(s) over {factor}x budget",
              file=sys.stderr)
        return 1
    print("all measurements within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
