#!/usr/bin/env python3
"""Validate a ``BENCH_*.json`` report against the benchmark schema.

Usage::

    python scripts/validate_bench.py BENCH_20260806-090000.json [...]

Exits nonzero (listing every violation) if any report fails validation.
Used by the CI bench-smoke job; handy locally after editing the report
writer.  Uses the repo's own hand-rolled validator so it runs without
any third-party schema library.  Reports produced with ``repro bench
--metrics`` carry an optional ``metrics`` section (a telemetry-registry
dump) that is validated too, and summarized in the ok line; ``repro
bench --fleet --slo`` adds a ``monitors`` section (per-fleet-cell SLO
monitor summaries) that gets the same treatment.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import validate_report  # noqa: E402


def main(argv):
    if not argv:
        print("usage: validate_bench.py BENCH_*.json [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})")
            failures += 1
            continue
        errors = validate_report(payload)
        if errors:
            failures += 1
            print(f"{path}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            metrics = payload.get("metrics")
            extra = (f", {len(metrics)} metric families"
                     if isinstance(metrics, dict) else "")
            cells = payload.get("cells", [])
            chaos_cells = [cell for cell in cells
                           if cell.get("kind") == "cluster"
                           and "availability" in cell]
            if chaos_cells:
                shed = sum(cell.get("shed", 0) for cell in chaos_cells)
                avail = min(cell["availability"] for cell in chaos_cells)
                extra += (f", {len(chaos_cells)} chaos cells "
                          f"(min availability {avail:.4f}, {shed} shed)")
            fleet_cells = [cell for cell in cells
                           if cell.get("kind") == "fleet"]
            if fleet_cells:
                avail = min(cell["availability"] for cell in fleet_cells)
                shed = sum(cell.get("shed", 0) for cell in fleet_cells)
                cold = sum(cell.get("cold_starts", 0)
                           for cell in fleet_cells)
                extra += (f", {len(fleet_cells)} fleet cells "
                          f"(min availability {avail:.4f}, {shed} shed, "
                          f"{cold} cold starts)")
            monitors = payload.get("monitors")
            if isinstance(monitors, dict) and monitors:
                fired = sum(1 for summary in monitors.values()
                            for state in summary["monitors"].values()
                            if state["fired"])
                alerts = sum(len(summary.get("alerts", []))
                             for summary in monitors.values())
                extra += (f", {len(monitors)} SLO-watched cells "
                          f"({fired} fired, {alerts} alerts)")
            scenarios = payload.get("chaos", {}).get("scenarios", [])
            if scenarios:
                passed = sum(1 for s in scenarios if s.get("pass"))
                extra += f", {passed}/{len(scenarios)} scenarios passed"
            frontier = payload.get("fleet_frontier")
            if frontier:
                legs = ", ".join(
                    f"{leg}={value if value is not None else 'none'}"
                    for leg, value in frontier.get("frontiers",
                                                   {}).items())
                verdict = "pass" if frontier.get("pass") else "FAIL"
                extra += f", frontier [{legs}] {verdict}"
            print(f"{path}: ok "
                  f"({payload['totals']['cells']} cells, "
                  f"schema v{payload['schema_version']}{extra})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
