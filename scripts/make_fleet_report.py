#!/usr/bin/env python3
"""Regenerate the checked-in fleet scale-to-zero frontier report.

Usage::

    python scripts/make_fleet_report.py [OUTPUT]

Writes ``benchmarks/fleet_frontier_report.json`` (or OUTPUT) — the
``repro fleet --frontier`` sweep with the volatile ``run`` section
pinned (``created_unix=0``), so the payload is byte-stable and the
regression tests can assert the checked-in copy matches a fresh
regeneration exactly.  Rerun this script whenever a deliberate change
to the simulator, the fleet layer or the autoscaling billing shifts the
sweep numbers, and commit the diff alongside the change.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import fleet_frontier_report  # noqa: E402

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "benchmarks", "fleet_frontier_report.json")


def main(argv):
    output = argv[0] if argv else DEFAULT_OUTPUT
    report = fleet_frontier_report(created_unix=0.0)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    frontier = report["fleet_frontier"]
    legs = ", ".join(f"{leg}={value if value is not None else 'none'}"
                     for leg, value in frontier["frontiers"].items())
    print(f"wrote {os.path.relpath(output)}: frontiers [{legs}] "
          f"pass={frontier['pass']}")
    return 0 if frontier["pass"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
