#!/usr/bin/env python3
"""Regenerate the checked-in chaos resilience comparison report.

Usage::

    python scripts/make_chaos_report.py [OUTPUT]

Writes ``benchmarks/chaos_resilience_report.json`` (or OUTPUT) — the
``repro chaos --resilience`` comparison with the volatile ``run``
section pinned (``created_unix=0``), so the payload is byte-stable and
the regression tests can assert the checked-in copy matches a fresh
regeneration exactly.  Rerun this script whenever a deliberate change
to the simulator, the fault layer or the resilience policy shifts the
scenario numbers, and commit the diff alongside the change.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import chaos_report  # noqa: E402

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "benchmarks", "chaos_resilience_report.json")


def main(argv):
    output = argv[0] if argv else DEFAULT_OUTPUT
    report = chaos_report(created_unix=0.0)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    scenarios = report["chaos"]["scenarios"]
    passed = sum(1 for s in scenarios if s["pass"])
    print(f"wrote {os.path.relpath(output)}: {passed}/{len(scenarios)} "
          f"scenarios passed")
    return 0 if passed == len(scenarios) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
