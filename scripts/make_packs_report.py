#!/usr/bin/env python3
"""Regenerate the checked-in kernel-pack degradation report.

Usage::

    python scripts/make_packs_report.py [OUTPUT]

Writes ``benchmarks/pack_degradation_report.json`` (or OUTPUT) — the
``repro chaos --packs`` four-leg ladder comparison with the volatile
``run`` section pinned (``created_unix=0``), so the payload is
byte-stable and CI can assert the checked-in copy matches a fresh
regeneration exactly.  Rerun this script whenever a deliberate change
to the simulator, the fault layer or the pack fetch hierarchy shifts
the leg numbers, and commit the diff alongside the change.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import packs_report  # noqa: E402

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "..",
                              "benchmarks", "pack_degradation_report.json")


def main(argv):
    output = argv[0] if argv else DEFAULT_OUTPUT
    report = packs_report(created_unix=0.0)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    gates = report["packs"]["gates"]
    verdicts = ", ".join(f"{name}={gates[name]}" for name in
                         ("healthy_reduces_cold_starts",
                          "degraded_falls_back_to_cold",
                          "bytes_conserved", "no_lost_requests"))
    print(f"wrote {os.path.relpath(output)}: {verdicts} "
          f"pass={gates['pass']}")
    return 0 if gates["pass"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
