"""Regenerate EXPERIMENTS.md from a full experiment run.

Usage:  python scripts/generate_experiments_md.py > EXPERIMENTS.md
"""

import io
import sys

from repro.report import format_table
from repro.serving.experiments import DEFAULT_BATCHES, ExperimentSuite


def main(out=sys.stdout):
    suite = ExperimentSuite("MI100")
    w = out.write

    w("# EXPERIMENTS — paper vs. reproduction\n\n")
    w("All measurements below come from the deterministic simulation\n"
      "(`python scripts/generate_experiments_md.py`); the paper's numbers\n"
      "were measured on real MI100/A100/6900XT hardware.  Per DESIGN.md the\n"
      "goal is matching *shape* (orderings, trends, crossovers), not\n"
      "absolute values.\n\n")

    # ------------------------------------------------------------- Fig 1a
    fig1a = suite.fig1a()
    w("## Fig. 1(a) — cold/hot slowdown per device\n\n")
    w("Paper averages: MI100 23.7x, A100 19.5x, 6900XT 31.3x.\n\n```\n")
    models = suite.models + ["average"]
    rows = [[m] + [fig1a[d][m] for d in fig1a] for m in models]
    w(format_table(["model"] + list(fig1a), rows, precision=1))
    w("\n```\n\nShape check: 6900XT > MI100 > A100 ordering holds; every "
      "model slows down by an order of magnitude.\n\n")

    # ------------------------------------------------------------- Fig 1b
    fig1b = suite.fig1b()
    w("## Fig. 1(b) — baseline cold-start breakdown\n\n")
    w("Paper averages: code loading 65.8%, GPU execution 8.4%.\n\n```\n")
    phases = list(next(iter(fig1b.values())))
    rows = [[m] + [fig1b[m][p] for p in phases] for m in fig1b]
    w(format_table(["model"] + phases, rows, precision=3))
    w("\n```\n\nShape check: code loading dominates everywhere; GPU "
      "execution is a minor share.\n\n")

    # ------------------------------------------------------------- Fig 6a
    fig6a = suite.fig6a()
    w("## Fig. 6(a) — end-to-end cold-start speedups\n\n")
    w("Paper averages: NNV12 3.04x, PaSK 5.62x, Ideal 7.75x.\n\n```\n")
    rows = [[m] + [fig6a[s][m] for s in fig6a] for m in models]
    w(format_table(["model"] + list(fig6a), rows))
    w("\n```\n\nShape check: Ideal > PaSK > NNV12 > 1 on average and on "
      "every convolutional model; models with more primitive layers "
      "(eff, reg, ssd, unet) gain the most; the transformers gain least.\n"
      "Known deviation: our PaSK average sits below the paper's 5.62x "
      "because (a) the strict reading of Sec. VI leaves BLAS completely "
      "unmanaged, capping the transformer rows near 1.1-1.4x, and (b) the "
      "simulated PaSK remains loader-bound on shallow models "
      "(alex/vgg/res) where first-of-bucket misses cannot be amortized. "
      "The extension bench `bench_ext_blas_reuse.py` shows the transformer "
      "rows improving substantially once PASK manages BLAS, as the paper "
      "predicts.\n\n")

    # ------------------------------------------------------------- Fig 6b
    fig6b = suite.fig6b()
    w("## Fig. 6(b) — GPU utilization during cold start\n\n")
    w("Paper averages: NNV12 8.2%, PaSK 25.9%, Ideal 68.5%.\n\n```\n")
    rows = [[m] + [fig6b[s][m] for s in fig6b] for m in models]
    w(format_table(["model"] + list(fig6b), rows, precision=3))
    w("\n```\n\nShape check: Ideal > PaSK > NNV12 utilization ordering "
      "holds on average.\n\n")

    # ------------------------------------------------------------ Table 2
    table2 = suite.table2(batches=DEFAULT_BATCHES)
    w("## Table II — speedup vs inference batch size\n\n")
    w("Paper: NNV12 3.04->1.74x, PaSK 5.62->3.10x, Ideal 7.75->6.41x "
      "(batch 1 -> 128), all monotonically decreasing.\n\n```\n")
    rows = [[s] + [table2[s][b] for b in DEFAULT_BATCHES] for s in table2]
    w(format_table(["scheme"] + [str(b) for b in DEFAULT_BATCHES], rows))
    w("\n```\n\nShape check: every scheme's average speedup decreases "
      "monotonically with batch size, and the per-batch ordering "
      "Ideal > PaSK > NNV12 is preserved.\n\n")

    # ------------------------------------------------------------- Fig 7
    fig7 = suite.fig7()
    w("## Fig. 7 — PaSK cold-start breakdown\n\n")
    w("Paper averages: solution loading 11.2%, PASK overhead 1.3%; "
      "transformers show larger loading shares.\n\n```\n")
    phases7 = list(next(iter(fig7.values())))
    rows = [[m] + [fig7[m][p] for p in phases7] for m in fig7]
    w(format_table(["model"] + phases7, rows, precision=3))
    w("\n```\n\nShape check: PASK overhead stays in the low single-digit "
      "percent; transformer loading shares exceed the convolutional "
      "models'.  Known deviation: our loading share stays larger than "
      "11.2% because the simulated PaSK remains load-bound (see Fig. 6(a) "
      "note).\n\n")

    # ------------------------------------------------------------- Fig 8
    fig8 = suite.fig8()
    w("## Fig. 8 — ablation: variants normalized to PaSK\n\n")
    w("Paper: both variants below PaSK everywhere; PaSK-I weakest where "
      "pre-milestone execution is short; transformers show only "
      "nuances.\n\n```\n")
    rows = [[m] + [fig8[s][m] for s in fig8] for m in models]
    w(format_table(["model"] + list(fig8), rows))
    w("\n```\n\nShape check: neither variant ever beats full PaSK; the "
      "transformer rows are ~1.0 for PaSK-I (single reusable operator); "
      "PaSK-R's deficit is largest on lookup-heavy models.\n\n")

    # ------------------------------------------------------------- Fig 9
    fig9 = suite.fig9()
    w("## Fig. 9 — cache hit rate and lookups per query\n\n")
    w("Paper: 69.7% average hit rate; 1.22 (categorical) vs 1.89 (naive) "
      "lookups per query.  Transformers omitted (one primitive op).\n\n```\n")
    metrics = list(next(iter(fig9.values())))
    rows = [[m] + [fig9[m][k] for k in metrics] for m in fig9]
    w(format_table(["model"] + metrics, rows))
    w("\n```\n\nShape check: hit rate lands in the paper's band and grows "
      "with operator count (alex lowest); the categorical cache needs "
      "fewer IsApplicable evaluations per query than the naive "
      "organization.\n")


if __name__ == "__main__":
    buffer = io.StringIO()
    main(buffer)
    sys.stdout.write(buffer.getvalue())
