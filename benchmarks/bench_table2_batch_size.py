"""Table II: cold-start speedup with varying inference batch sizes.

Paper values for reference (batch 1 -> 128): NNV12 3.04->1.74x,
PaSK 5.62->3.10x, Ideal 7.75->6.41x -- all decreasing with batch size.
"""

from conftest import emit

from repro.report import format_table
from repro.serving.experiments import DEFAULT_BATCHES


def test_table2_batch_size_sweep(benchmark, suite):
    result = benchmark.pedantic(
        lambda: suite.table2(batches=DEFAULT_BATCHES),
        rounds=1, iterations=1)
    rows = [[scheme] + [per_batch[b] for b in DEFAULT_BATCHES]
            for scheme, per_batch in result.items()]
    emit(format_table(["scheme"] + [str(b) for b in DEFAULT_BATCHES], rows,
                      title="Table II: speedup vs batch size"))
    for scheme, per_batch in result.items():
        values = [per_batch[b] for b in DEFAULT_BATCHES]
        assert values == sorted(values, reverse=True), scheme
    for batch in DEFAULT_BATCHES:
        assert (result["Ideal"][batch] > result["PaSK"][batch]
                > result["NNV12"][batch])
