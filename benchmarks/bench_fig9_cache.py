"""Fig. 9: cache hit rate and applicability lookups per query.

Paper values for reference: 69.7% average hit rate; 1.22 lookups/query
for the categorical cache vs 1.89 for the naive organization.
Transformers are omitted (single primitive operator), as in the paper.
"""

from conftest import emit

from repro.report import format_table


def test_fig9_cache_statistics(benchmark, suite):
    result = benchmark.pedantic(suite.fig9, rounds=1, iterations=1)
    metrics = list(next(iter(result.values())))
    rows = [[m] + [row[k] for k in metrics] for m, row in result.items()]
    emit(format_table(["model"] + metrics, rows,
                      title="Fig 9: categorical cache statistics"))
    assert 0.50 <= result["average"]["hit_rate"] <= 0.95
    assert (result["average"]["lookups_categorical"]
            < result["average"]["lookups_naive"])
    assert result["eff"]["hit_rate"] > result["alex"]["hit_rate"]
