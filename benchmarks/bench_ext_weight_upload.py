"""Extension: cold starts including weight upload.

The paper notes code loading "should be considered alongside data
pre-fetching, keep alive and pre-warming techniques".  This bench adds
the weight H2D transfer to the cold start: reactive schemes pay it
serially before parsing, while PASK overlaps it with its parse/load
pipeline as a concurrent DMA.  The *added* cold-start cost under PASK is
therefore much smaller than under the baseline (for weight-heavy models
like VGG the DMA itself becomes the new critical path, which no kernel
-loading scheme can hide -- that is data pre-fetching's job).
"""

from conftest import emit

from repro.core.schemes import Scheme
from repro.report import format_table
from repro.serving.server import InferenceServer

MODELS = ("vgg", "res", "eff")  # vgg carries ~500 MB of FC weights


def test_ext_weight_upload(benchmark, suite):
    plain = suite.server()
    uploading = InferenceServer("MI100", upload_weights=True)

    def experiment():
        rows = {}
        for model in MODELS:
            base_plain = plain.serve_cold(model, Scheme.BASELINE)
            pask_plain = plain.serve_cold(model, Scheme.PASK)
            base_up = uploading.serve_cold(model, Scheme.BASELINE)
            pask_up = uploading.serve_cold(model, Scheme.PASK)
            rows[model] = {
                "speedup_plain": base_plain.total_time / pask_plain.total_time,
                "speedup_upload": base_up.total_time / pask_up.total_time,
                "baseline_added_ms":
                    (base_up.total_time - base_plain.total_time) * 1e3,
                "pask_added_ms":
                    (pask_up.total_time - pask_plain.total_time) * 1e3,
            }
        return rows

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[m, result[m]["speedup_plain"], result[m]["speedup_upload"],
             result[m]["baseline_added_ms"], result[m]["pask_added_ms"]]
            for m in MODELS]
    emit(format_table(
        ["model", "speedup (no upload)", "speedup (with upload)",
         "baseline +ms", "PaSK +ms"], rows,
        title="Extension: cold start including weight H2D upload"))
    for model in MODELS:
        # The overlapped DMA adds less to PASK's cold start than the
        # serial upload adds to the baseline's.
        assert (result[model]["pask_added_ms"]
                < result[model]["baseline_added_ms"])
        # And PASK still clearly beats the baseline end to end.
        assert result[model]["speedup_upload"] > 1.5
