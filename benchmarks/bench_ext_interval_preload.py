"""Extension (Sec. VI "Loading desired solutions"): interval preloading.

Between two requests scheduled onto the same instance there are idle
seconds; PASK uses them to load the solutions it skipped, so subsequent
requests run their optimal kernels with nothing left to load.
"""

from conftest import emit

from repro.core.schemes import Scheme
from repro.report import format_table

MODEL = "res"
REQUESTS = 3
INTERVAL_S = 0.05


def test_ext_interval_preloading(benchmark, suite):
    server = suite.server()

    def experiment():
        with_preload = server.serve_session(
            MODEL, Scheme.PASK, n_requests=REQUESTS,
            interval_s=INTERVAL_S, interval_preload=True)
        without = server.serve_session(
            MODEL, Scheme.PASK, n_requests=REQUESTS,
            interval_s=INTERVAL_S, interval_preload=False)
        return with_preload, without

    with_preload, without = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)
    rows = []
    for index in range(REQUESTS):
        rows.append([f"request {index}",
                     without[index].total_time * 1e3,
                     without[index].loads,
                     with_preload[index].total_time * 1e3,
                     with_preload[index].loads])
    emit(format_table(
        ["", "no-preload ms", "loads", "preload ms", "loads"], rows,
        title="Sec VI extension: loading skipped solutions between requests"))

    # Request 0 is identical (no interval has happened yet).
    assert with_preload[0].total_time == without[0].total_time
    # Later requests are faster and load nothing once preloaded.
    for index in range(1, REQUESTS):
        assert with_preload[index].total_time <= without[index].total_time
    assert with_preload[-1].loads == 0
