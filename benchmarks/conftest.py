"""Shared fixtures for the benchmark harness.

All figure/table benches share one memoized :class:`ExperimentSuite`, so
a full ``pytest benchmarks/ --benchmark-only`` session simulates each
(device, model, scheme, batch) combination exactly once.  Run with ``-s``
to see the regenerated tables/figures inline.
"""

import pytest

from repro.serving.experiments import ExperimentSuite


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1,
        help="prewarm the experiment suite through the parallel runner "
             "with this many worker processes (results are byte-identical "
             "to the serial path)")
    parser.addoption(
        "--result-cache", default=None, metavar="DIR",
        help="content-addressed result cache directory for the prewarm "
             "(e.g. .repro-cache); omitted = no cache")


@pytest.fixture(scope="session")
def suite(request):
    suite = ExperimentSuite("MI100")
    jobs = request.config.getoption("--jobs")
    cache_dir = request.config.getoption("--result-cache")
    if jobs > 1 or cache_dir is not None:
        from repro.runner import ResultCache
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        suite.prewarm(jobs=jobs, cache=cache)
    return suite


def emit(text: str) -> None:
    """Print a regenerated table/figure (visible with ``pytest -s``)."""
    print()
    print(text)
