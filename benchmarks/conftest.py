"""Shared fixtures for the benchmark harness.

All figure/table benches share one memoized :class:`ExperimentSuite`, so
a full ``pytest benchmarks/ --benchmark-only`` session simulates each
(device, model, scheme, batch) combination exactly once.  Run with ``-s``
to see the regenerated tables/figures inline.
"""

import pytest

from repro.serving.experiments import ExperimentSuite


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite("MI100")


def emit(text: str) -> None:
    """Print a regenerated table/figure (visible with ``pytest -s``)."""
    print()
    print(text)
