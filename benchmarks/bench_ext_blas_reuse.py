"""Extension (Sec. VI "Library supporting"): PASK hooked into hipBLAS.

The paper argues extending PASK to the BLAS library is straightforward
since it follows the same find-execute pattern, and would unlock the
transformer models.  This bench measures exactly that: PaSK vs PaSK with
``manage_blas=True`` on the three ViT models.
"""

from conftest import emit

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.core.schemes import Scheme
from repro.gpu import HipRuntime
from repro.report import format_table
from repro.sim import Environment

MODELS = ("vit", "swin", "swin2")


def run_with_blas_management(suite, model):
    server = suite.server()
    program = server._lowered(model, Scheme.PASK, 1)
    env = Environment()
    runtime = HipRuntime(env, server.device)
    middleware = PaskMiddleware(env, runtime, server.library, server.blas,
                                PaskConfig(manage_blas=True))
    outcome = {}

    def driver():
        stats = yield from middleware.execute(program)
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    return env.now, outcome


def test_ext_blas_managed_transformers(benchmark, suite):
    def experiment():
        rows = {}
        for model in MODELS:
            base = suite.cold(model, Scheme.BASELINE).total_time
            stock = suite.cold(model, Scheme.PASK).total_time
            managed, _ = run_with_blas_management(suite, model)
            rows[model] = {"PaSK": base / stock,
                           "PaSK+BLAS": base / managed}
        return rows

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table_rows = [[m, result[m]["PaSK"], result[m]["PaSK+BLAS"]]
                  for m in MODELS]
    emit(format_table(["model", "PaSK speedup", "PaSK+BLAS speedup"],
                      table_rows,
                      title="Sec VI extension: PASK managing hipBLAS"))
    for model in MODELS:
        # Managing BLAS must improve transformer cold starts markedly.
        assert result[model]["PaSK+BLAS"] > result[model]["PaSK"] * 1.3
