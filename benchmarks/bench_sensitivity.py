"""Robustness: are the paper's shapes stable under cost-model changes?

Sweeps the single most influential calibration constant -- the reactive
load penalty -- across a wide range and checks that the headline
ordering (Ideal > PaSK > NNV12 > Baseline) survives everywhere.  The
absolute speedups move, the conclusions do not.
"""

import dataclasses

from conftest import emit

from repro.core.schemes import Scheme
from repro.gpu import MI100
from repro.report import format_table
from repro.serving.metrics import mean
from repro.serving.server import InferenceServer

PENALTIES = (1.0, 1.5, 2.3, 3.0)
MODELS = ("vgg", "res", "eff", "ssd")
SCHEMES = (Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)


def test_sensitivity_reactive_penalty(benchmark):
    def experiment():
        table = {}
        for penalty in PENALTIES:
            device = dataclasses.replace(MI100,
                                         reactive_load_penalty=penalty)
            server = InferenceServer(device)
            speedups = {}
            for scheme in SCHEMES:
                values = []
                for model in MODELS:
                    base = server.serve_cold(model, Scheme.BASELINE)
                    run = server.serve_cold(model, scheme)
                    values.append(base.total_time / run.total_time)
                speedups[scheme.label] = mean(values)
            table[penalty] = speedups
        return table

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[p] + [result[p][s.label] for s in SCHEMES] for p in PENALTIES]
    emit(format_table(["reactive penalty"] + [s.label for s in SCHEMES],
                      rows,
                      title="Sensitivity: average conv-model speedup vs "
                            "reactive-load penalty"))
    for penalty in PENALTIES:
        speedups = result[penalty]
        assert speedups["Ideal"] > speedups["PaSK"] > 1.0
        assert speedups["PaSK"] > speedups["NNV12"] * 0.95
    # Larger penalties widen PASK's advantage (it avoids reactive loads).
    assert result[3.0]["PaSK"] > result[1.0]["PaSK"]
