"""Fig. 8: normalized performance of PaSK-I and PaSK-R vs full PaSK.

Paper observations reproduced: both variants never beat PaSK; the gap
nearly vanishes on the transformer models (a single reusable primitive
operator); PaSK-R's deficit tracks its extra applicability lookups.
"""

from conftest import emit

from repro.report import format_table
from repro.serving.experiments import TRANSFORMER_MODELS


def test_fig8_ablation(benchmark, suite):
    result = benchmark.pedantic(suite.fig8, rounds=1, iterations=1)
    models = suite.models + ["average"]
    rows = [[m] + [result[s][m] for s in result] for m in models]
    emit(format_table(["model"] + list(result), rows,
                      title="Fig 8: performance normalized to PaSK"))
    for scheme, per_model in result.items():
        for model, value in per_model.items():
            assert value <= 1.0 + 1e-9, (scheme, model)
    for model in TRANSFORMER_MODELS:
        assert result["PaSK-I"][model] > 0.95
    assert result["PaSK-I"]["average"] < 0.85
    assert result["PaSK-R"]["average"] < 0.85
