"""Fig. 1: DNN model cold-start (a) overhead and (b) breakdown.

Paper values for reference: average cold/hot slowdowns 23.7x (MI100),
19.5x (A100) and 31.3x (6900XT); baseline breakdown dominated by code
loading (65.8%) with GPU execution a small share (8.4%).
"""

from conftest import emit

from repro.report import format_table


def test_fig1a_cold_start_overhead(benchmark, suite):
    result = benchmark.pedantic(suite.fig1a, rounds=1, iterations=1)
    models = [m for m in suite.models] + ["average"]
    rows = [[model] + [result[dev][model] for dev in result]
            for model in models]
    emit(format_table(["model"] + list(result), rows,
                      title="Fig 1(a): cold/hot slowdown per device",
                      precision=1))
    for device, per_model in result.items():
        assert per_model["average"] > 10, device
    assert (result["6900XT"]["average"] > result["MI100"]["average"]
            > result["A100"]["average"])


def test_fig1b_cold_start_breakdown(benchmark, suite):
    result = benchmark.pedantic(suite.fig1b, rounds=1, iterations=1)
    phases = list(next(iter(result.values())))
    rows = [[model] + [row[p] for p in phases]
            for model, row in result.items()]
    emit(format_table(["model"] + phases, rows,
                      title="Fig 1(b): baseline cold-start breakdown "
                            "(fractions of total)",
                      precision=3))
    assert result["average"]["code_loading"] > 0.55
    assert result["average"]["gpu_execution"] < 0.15
