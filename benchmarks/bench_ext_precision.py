"""Extension (Sec. VI "More factors for kernel specialization").

A low-precision (fp16) model arrives on an instance whose runtime and
PASK cache are warm with fp32 binaries.  With ``precision_fallback`` the
middleware runs fp16 layers on the resident fp32 kernels instead of
loading the absent fp16-specialized ones -- trading arithmetic precision
cost for loading time, as the paper proposes.
"""

from conftest import emit

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.engine import lower
from repro.gpu import HipRuntime
from repro.graph import GraphBuilder
from repro.report import format_table
from repro.sim import Environment
from repro.tensors import DataType


def fp_cnn(name, dtype):
    # Every convolution uses a different kernel configuration, so fp16
    # binaries cannot be reused across layers -- only the precision
    # fallback onto the warm fp32 binaries can avoid the loads.
    layers = [(32, 3, 1, 1), (32, 5, 1, 2), (64, 1, 1, 0), (64, 3, 2, 1),
              (128, 5, 2, 2)]
    builder = GraphBuilder(name, dtype=dtype)
    x = builder.input("x", (1, 16, 64, 64))
    for i, (channels, kernel, stride, pad) in enumerate(layers):
        x = builder.conv(x, channels, kernel, stride=stride, pad=pad,
                         name=f"c{i}")
        x = builder.relu(x, name=f"r{i}")
    builder.output(x)
    return builder.finish()


def run_pair(suite, fallback):
    server = suite.server()
    fp32_program = lower(fp_cnn("warm32", DataType.FP32), server.library)
    fp16_program = lower(fp_cnn("cold16", DataType.FP16), server.library)
    env = Environment()
    runtime = HipRuntime(env, server.device)
    config = PaskConfig(precision_fallback=fallback)
    warm = PaskMiddleware(env, runtime, server.library, server.blas, config)
    outcome = {}

    def driver():
        yield from warm.execute(fp32_program)
        start = env.now
        # Same process, same cache: the fp16 model cold-starts second.
        cold = PaskMiddleware(env, runtime, server.library, server.blas,
                              config, cache=warm.cache)
        stats = yield from cold.execute(fp16_program)
        outcome["fp16_time"] = env.now - start
        outcome["reused"] = stats["reused_layers"]

    process = env.process(driver())
    env.run(until=process)
    return outcome


def test_ext_precision_fallback(benchmark, suite):
    def experiment():
        return {"off": run_pair(suite, fallback=False),
                "on": run_pair(suite, fallback=True)}

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[mode, result[mode]["fp16_time"] * 1e3, result[mode]["reused"]]
            for mode in ("off", "on")]
    emit(format_table(["precision fallback", "fp16 cold ms", "reused layers"],
                      rows,
                      title="Sec VI extension: high-precision kernel reuse "
                            "for low-precision layers"))
    assert result["on"]["reused"] > result["off"]["reused"]
    assert result["on"]["fp16_time"] < result["off"]["fp16_time"]
