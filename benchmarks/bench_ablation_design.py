"""Design-choice ablations beyond the paper's Fig. 8.

Two micro-ablations DESIGN.md calls out:

1. **MRU ordering** in the categorical cache: the paper argues
   neighbouring layers have similar problems, so recently used entries
   should be probed first.  We compare lookups/query with and without
   recency ordering.
2. **The milestone gate**: what happens if PASK reuses from the very
   first layer instead of seeding the cache unconditionally before the
   milestone.
"""

from conftest import emit

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.core.schemes import Scheme
from repro.gpu import HipRuntime
from repro.report import format_table
from repro.serving.experiments import CONV_MODELS
from repro.serving.metrics import mean
from repro.sim import Environment

MODELS = ("vgg", "res", "reg", "eff", "ssd", "unet")


def run_config(suite, model, config):
    server = suite.server()
    program = server._lowered(model, Scheme.PASK, 1)
    env = Environment()
    runtime = HipRuntime(env, server.device)
    middleware = PaskMiddleware(env, runtime, server.library, server.blas,
                                config)
    outcome = {}

    def driver():
        stats = yield from middleware.execute(program)
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    outcome["total_time"] = env.now
    return outcome


def test_ablation_mru_ordering(benchmark, suite):
    def experiment():
        rows = {}
        for model in MODELS:
            mru = run_config(suite, model, PaskConfig(cache_mru=True))
            fifo = run_config(suite, model, PaskConfig(cache_mru=False))
            rows[model] = {
                "mru_lookups": mru["cache_stats"].lookups_per_query,
                "fifo_lookups": fifo["cache_stats"].lookups_per_query,
                "mru_ms": mru["total_time"] * 1e3,
                "fifo_ms": fifo["total_time"] * 1e3,
            }
        return rows

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = [[m, result[m]["mru_lookups"], result[m]["fifo_lookups"],
              result[m]["mru_ms"], result[m]["fifo_ms"]] for m in MODELS]
    emit(format_table(["model", "MRU lookups/q", "FIFO lookups/q",
                       "MRU ms", "FIFO ms"], table,
                      title="Ablation: recency ordering in the categorical "
                            "cache"))
    # On average the MRU ordering needs no more lookups than FIFO.
    assert (mean(result[m]["mru_lookups"] for m in MODELS)
            <= mean(result[m]["fifo_lookups"] for m in MODELS) + 1e-9)


def test_ablation_milestone_gate(benchmark, suite):
    def experiment():
        rows = {}
        for model in MODELS:
            gated = run_config(suite, model, PaskConfig())
            eager = run_config(suite, model,
                               PaskConfig(reuse_before_milestone=True))
            rows[model] = {
                "gated_ms": gated["total_time"] * 1e3,
                "eager_ms": eager["total_time"] * 1e3,
                "gated_reused": gated["reused_layers"],
                "eager_reused": eager["reused_layers"],
            }
        return rows

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = [[m, result[m]["gated_ms"], result[m]["eager_ms"],
              result[m]["gated_reused"], result[m]["eager_reused"]]
             for m in MODELS]
    emit(format_table(["model", "milestone ms", "eager ms",
                       "milestone reused", "eager reused"], table,
                      title="Ablation: milestone gate vs reuse-from-start"))
    # Eager reuse can only reuse at least as many layers; both configs
    # must complete every model.
    for m in MODELS:
        assert result[m]["eager_reused"] >= result[m]["gated_reused"] - 2
        assert result[m]["eager_ms"] > 0
