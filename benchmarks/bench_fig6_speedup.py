"""Fig. 6: (a) end-to-end cold-start speedups, (b) GPU utilization.

Paper values for reference: average speedups PaSK 5.62x, NNV12 3.04x,
Ideal 7.75x; average utilizations NNV12 8.2%, PaSK 25.9%, Ideal 68.5%.
"""

from conftest import emit

from repro.report import format_table


def test_fig6a_speedups(benchmark, suite):
    result = benchmark.pedantic(suite.fig6a, rounds=1, iterations=1)
    models = suite.models + ["average"]
    rows = [[m] + [result[s][m] for s in result] for m in models]
    emit(format_table(["model"] + list(result), rows,
                      title="Fig 6(a): cold-start speedup over Baseline"))
    averages = {s: result[s]["average"] for s in result}
    assert averages["Ideal"] > averages["PaSK"] > averages["NNV12"] > 1.0
    assert 3.0 <= averages["PaSK"] <= 7.0


def test_fig6b_utilization(benchmark, suite):
    result = benchmark.pedantic(suite.fig6b, rounds=1, iterations=1)
    models = suite.models + ["average"]
    rows = [[m] + [result[s][m] for s in result] for m in models]
    emit(format_table(["model"] + list(result), rows,
                      title="Fig 6(b): GPU utilization during cold start",
                      precision=3))
    averages = {s: result[s]["average"] for s in result}
    assert averages["Ideal"] > averages["PaSK"] > averages["NNV12"]
