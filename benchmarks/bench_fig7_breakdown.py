"""Fig. 7: model cold-start breakdown for PaSK.

Paper values for reference: solution loading 11.2% and PASK overhead
1.3% on average, with transformers showing larger loading shares.  Our
simulation keeps PaSK more load-bound than the paper (see
EXPERIMENTS.md) but preserves the overhead and transformer trends.
"""

from conftest import emit

from repro.report import format_table
from repro.serving.experiments import CONV_MODELS, TRANSFORMER_MODELS
from repro.serving.metrics import mean


def test_fig7_pask_breakdown(benchmark, suite):
    result = benchmark.pedantic(suite.fig7, rounds=1, iterations=1)
    phases = list(next(iter(result.values())))
    rows = [[m] + [row[p] for p in phases] for m, row in result.items()]
    emit(format_table(["model"] + phases, rows,
                      title="Fig 7: PaSK cold-start breakdown "
                            "(fractions of total)",
                      precision=3))
    assert result["average"]["pask_overhead"] < 0.06
    transformer_loading = mean(result[m]["solution_loading"]
                               for m in TRANSFORMER_MODELS)
    conv_loading = mean(result[m]["solution_loading"] for m in CONV_MODELS)
    assert transformer_loading > conv_loading
