"""Extension: trace/metric scaling from 10^3 to 10^6 simulated requests.

Sweeps cluster replays across three orders of magnitude of request count
and pins the two properties the streaming trace layer exists for:

- with ``retention="aggregate"`` the retained record count stays bounded
  by the ring while the aggregates keep counting everything, and
- repeated metric queries cost the same no matter how many records were
  ever ingested (sub-linear — in practice O(1) — query cost).

The emitted table feeds the BENCH report narrative so the next PR has a
wall-clock trajectory to compare against.  CI runs the same measurement
at reduced size through ``scripts/check_perf_budget.py``.
"""

import time

from conftest import emit

from repro.core.schemes import Scheme
from repro.report import format_table
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.sim.trace import Phase

RATE_HZ = 200.0
RING = 1024
SIZES = (1_000, 10_000, 100_000, 1_000_000)
FULL_PATH_CAP = 100_000  # the unbounded path gets slow beyond this
QUERY_REPEATS = 50


def _replay(server, trace, retention, fast_forward):
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                           keep_alive_s=0.5, trace_retention=retention,
                           trace_ring=RING, fast_forward=fast_forward)
    simulator = ClusterSimulator(server, config)
    began = time.perf_counter()
    stats = simulator.run(trace)
    wall = time.perf_counter() - began
    return stats, wall


def _queries(recorder):
    recorder.busy_time(Phase.EXEC)
    recorder.total()
    recorder.utilization("cluster")
    recorder.span()


def _query_cost(recorder):
    """Amortized steady-state cost of the metric queries a report issues.

    The first call after ingestion pays one O(merged segments) union sum
    per bucket; every repeat is an O(1) cache hit — which is exactly the
    access pattern of a report rendering several figures from one trace.
    """
    _queries(recorder)  # warm every per-bucket cache once
    began = time.perf_counter()
    for _ in range(QUERY_REPEATS):
        _queries(recorder)
    return (time.perf_counter() - began) / QUERY_REPEATS


def _metrics(recorder):
    return (recorder.total(), recorder.busy_time(), recorder.span(),
            recorder.busy_time(Phase.EXEC), recorder.utilization("cluster"),
            recorder.record_count)


def test_ext_trace_scaling(benchmark, suite):
    server = suite.server()
    traces = {n: poisson_trace("res", RATE_HZ, n / RATE_HZ, seed=1)
              for n in SIZES}

    def sweep():
        rows = {}
        for n, trace in traces.items():
            stats, wall = _replay(server, trace, "aggregate", True)
            rows[n] = {
                "requests": stats.requests,
                "wall_s": wall,
                "query_s": _query_cost(stats.trace),
                "records": stats.trace.record_count,
                "retained": stats.trace.retained_records,
                "ff_fraction": stats.fast_forwarded / stats.requests,
                "stats": stats,
            }
            if n <= FULL_PATH_CAP:
                full_stats, full_wall = _replay(server, trace, "full", False)
                rows[n]["full_wall_s"] = full_wall
                rows[n]["full"] = full_stats
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for n in SIZES:
        row = rows[n]
        table.append([
            row["requests"], f"{row['wall_s']:.3f}",
            (f"{row['full_wall_s']:.3f}" if "full_wall_s" in row else "-"),
            f"{row['query_s'] * 1e6:.1f}", row["records"], row["retained"],
            f"{row['ff_fraction']:.3f}",
        ])
    emit(format_table(
        ["requests", "agg+ff s", "full s", "query us", "records",
         "retained", "ff frac"],
        table, title="Trace scaling: streaming aggregation + fast-forward"))

    smallest, largest = rows[SIZES[0]], rows[SIZES[-1]]

    # Retention stays bounded while the aggregates keep counting.
    for n in SIZES:
        if rows[n]["records"] > RING:
            assert rows[n]["retained"] <= RING
        assert rows[n]["records"] >= rows[n]["requests"]

    # Metric queries must not scale with ingested records: across a
    # 1000x size increase, amortized query cost may grow far less than
    # linearly (the 0.1 factor leaves two orders of magnitude of margin
    # for timer noise on a ~microsecond measurement).
    size_ratio = largest["requests"] / smallest["requests"]
    query_ratio = largest["query_s"] / max(smallest["query_s"], 1e-9)
    assert query_ratio < 0.1 * size_ratio, (
        f"metric query cost grew {query_ratio:.0f}x over a "
        f"{size_ratio:.0f}x size increase")

    # The steady-state fast path must carry a dense trace.
    assert largest["ff_fraction"] > 0.9

    # Aggregate-retention metrics are byte-identical to the full path.
    for n in SIZES:
        if "full" not in rows[n]:
            continue
        stats, full = rows[n]["stats"], rows[n]["full"]
        assert stats.latencies == full.latencies
        assert _metrics(stats.trace) == _metrics(full.trace)
