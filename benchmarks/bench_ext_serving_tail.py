"""Extension: cold-start impact on serving tail latency.

Replays a bursty Poisson trace against an autoscaled pool with a short
keep-alive (the preemptive/serverless setting the paper motivates with)
and compares per-request latency percentiles across schemes.  This goes
beyond the paper's single-request evaluation to the downstream metric
operators actually care about.
"""

from conftest import emit

from repro.core.schemes import Scheme
from repro.report import format_table
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace

MODEL = "reg"
SCHEMES = (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)


def test_ext_serving_tail_latency(benchmark, suite):
    server = suite.server()
    trace = poisson_trace(MODEL, rate_hz=25.0, duration_s=4.0, seed=11)

    def experiment():
        out = {}
        for scheme in SCHEMES:
            config = ClusterConfig(scheme=scheme, max_instances=4,
                                   keep_alive_s=0.4)
            out[scheme.label] = ClusterSimulator(server, config).run(trace)
        return out

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for label, stats in result.items():
        rows.append([label, stats.requests, stats.cold_starts,
                     stats.mean_latency * 1e3,
                     stats.percentile(0.50) * 1e3,
                     stats.percentile(0.99) * 1e3])
    emit(format_table(
        ["scheme", "requests", "cold starts", "mean ms", "p50 ms", "p99 ms"],
        rows, title=f"Serving tail latency under a bursty trace ({MODEL!r})"))

    baseline = result["Baseline"]
    pask = result["PaSK"]
    assert pask.percentile(0.99) < baseline.percentile(0.99)
    assert pask.mean_latency < baseline.mean_latency
    assert result["Ideal"].percentile(0.99) <= pask.percentile(0.99)
