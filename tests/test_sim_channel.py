"""Unit tests for SPSC channels."""

import pytest

from repro.sim import Channel, ChannelClosed, Environment, SimulationError


def test_put_then_get_fifo():
    env = Environment()
    channel = Channel(env)
    received = []

    def producer():
        for item in (1, 2, 3):
            yield channel.put(item)

    def consumer():
        for _ in range(3):
            item = yield channel.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [1, 2, 3]


def test_get_blocks_until_put():
    env = Environment()
    channel = Channel(env)
    log = []

    def consumer():
        item = yield channel.get()
        log.append((item, env.now))

    def producer():
        yield env.timeout(5.0)
        yield channel.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [("late", 5.0)]


def test_bounded_put_blocks_until_slot_free():
    env = Environment()
    channel = Channel(env, capacity=1)
    log = []

    def producer():
        yield channel.put("a")
        log.append(("put-a", env.now))
        yield channel.put("b")
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(3.0)
        item = yield channel.get()
        log.append((f"got-{item}", env.now))
        item = yield channel.get()
        log.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put-a", 0.0), ("got-a", 3.0), ("put-b", 3.0),
                   ("got-b", 3.0)]


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Channel(env, capacity=0)


def test_close_wakes_blocked_getter_with_sentinel():
    env = Environment()
    channel = Channel(env)
    seen = []

    def consumer():
        item = yield channel.get()
        seen.append(item)

    def closer():
        yield env.timeout(1.0)
        channel.close()

    env.process(consumer())
    env.process(closer())
    env.run()
    assert seen == [ChannelClosed]


def test_close_drains_remaining_items_first():
    env = Environment()
    channel = Channel(env)
    seen = []

    def producer():
        yield channel.put(1)
        yield channel.put(2)
        channel.close()

    def consumer():
        while True:
            item = yield channel.get()
            if item is ChannelClosed:
                break
            seen.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert seen == [1, 2]


def test_put_on_closed_channel_rejected():
    env = Environment()
    channel = Channel(env)
    channel.close()
    with pytest.raises(SimulationError):
        channel.put(1)


def test_get_on_closed_empty_channel_returns_sentinel_immediately():
    env = Environment()
    channel = Channel(env)
    channel.close()
    event = channel.get()
    assert event.triggered
    assert event.value is ChannelClosed


def test_len_reflects_buffered_items():
    env = Environment()
    channel = Channel(env)
    channel.put("x")
    channel.put("y")
    assert len(channel) == 2
    channel.get()
    assert len(channel) == 1


def test_handoff_to_waiting_getter_skips_buffer():
    env = Environment()
    channel = Channel(env, capacity=1)
    log = []

    def consumer():
        item = yield channel.get()
        log.append(item)

    def producer():
        yield env.timeout(1.0)
        yield channel.put("direct")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == ["direct"]
    assert len(channel) == 0


def test_pipeline_of_two_channels():
    """Parse -> load -> issue style pipeline preserves order end-to-end."""
    env = Environment()
    stage1 = Channel(env, name="parse->load")
    stage2 = Channel(env, name="load->issue")
    out = []

    def parser():
        for i in range(5):
            yield env.timeout(0.1)
            yield stage1.put(i)
        stage1.close()

    def loader():
        while True:
            item = yield stage1.get()
            if item is ChannelClosed:
                stage2.close()
                return
            yield env.timeout(0.5)
            yield stage2.put(item)

    def issuer():
        while True:
            item = yield stage2.get()
            if item is ChannelClosed:
                return
            out.append((item, round(env.now, 6)))

    env.process(parser())
    env.process(loader())
    env.process(issuer())
    env.run()
    assert [item for item, _ in out] == [0, 1, 2, 3, 4]
    # Loading (0.5) dominates parsing (0.1): items leave every 0.5s.
    assert out[-1][1] == pytest.approx(0.1 + 5 * 0.5)


# ----------------------------------------------------------------------
# Regression: close() with parked processes (fault-injection hang)
# ----------------------------------------------------------------------
# A crashed consumer closing a bounded channel used to raise in the
# closing process and leave the blocked producer parked forever -- the
# exact hang a stalled-loader fault triggers.  close() now fails the
# pending put with ChannelClosedError instead.

def test_close_fails_blocked_putter_instead_of_raising():
    from repro.sim import ChannelClosedError

    env = Environment()
    channel = Channel(env, capacity=1)
    outcomes = []

    def producer():
        yield channel.put("a")
        try:
            yield channel.put("b")
            outcomes.append("put-b-ok")
        except ChannelClosedError:
            outcomes.append("put-b-closed")

    def crashing_consumer():
        yield env.timeout(1.0)
        channel.close()  # dies without ever consuming

    env.process(producer())
    env.process(crashing_consumer())
    env.run()
    assert outcomes == ["put-b-closed"]


def test_close_during_pending_get_delivers_sentinel_not_hang():
    env = Environment()
    channel = Channel(env, capacity=1)
    seen = []

    def consumer():
        while True:
            item = yield channel.get()
            if item is ChannelClosed:
                seen.append("closed")
                return
            seen.append(item)

    def dying_producer():
        yield channel.put(1)
        yield env.timeout(0.5)
        channel.close()  # crash mid-stream with the consumer blocked

    env.process(consumer())
    env.process(dying_producer())
    env.run()
    assert seen == [1, "closed"]


def test_stalled_pipeline_unwinds_cleanly_on_close():
    # Three-stage pipeline shaped like parse -> load -> issue.  The
    # middle stage crashes; both its neighbours must unpark: the
    # upstream putter via ChannelClosedError, the downstream getter via
    # the ChannelClosed sentinel.  No process is left waiting.
    from repro.sim import ChannelClosedError

    env = Environment()
    upstream = Channel(env, capacity=1)
    downstream = Channel(env, capacity=1)
    events = []

    def parser():
        try:
            for i in range(10):
                yield upstream.put(i)
        except ChannelClosedError:
            events.append("parser-stopped")

    def crashing_loader():
        item = yield upstream.get()
        yield downstream.put(item)
        yield env.timeout(1.0)
        # Simulated crash: close both sides on the way out.
        upstream.close()
        downstream.close()

    def issuer():
        while True:
            item = yield downstream.get()
            if item is ChannelClosed:
                events.append("issuer-stopped")
                return
            events.append(("issued", item))

    env.process(parser())
    env.process(crashing_loader())
    env.process(issuer())
    env.run()
    assert ("issued", 0) in events
    assert "parser-stopped" in events
    assert "issuer-stopped" in events
