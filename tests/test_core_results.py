"""Unit tests for ExecutionResult metrics."""

import pytest

from repro.core.results import ExecutionResult
from repro.sim import Phase, TraceRecorder


def make_result(total=10.0):
    trace = TraceRecorder()
    trace.record(0.0, 2.0, "gpu", Phase.EXEC)
    trace.record(2.0, 8.0, "loader", Phase.LOAD)
    trace.record(8.0, 8.5, "loader", Phase.CHECK)
    trace.record(8.5, 8.6, "loader", Phase.OVERHEAD)
    return ExecutionResult(scheme="PaSK", model="m", batch=1,
                           total_time=total, trace=trace)


class TestExecutionResult:
    def test_gpu_utilization(self):
        assert make_result().gpu_utilization == pytest.approx(0.2)

    def test_phase_fraction(self):
        result = make_result()
        assert result.phase_fraction(Phase.LOAD) == pytest.approx(0.6)
        assert result.phase_fraction(Phase.PARSE) == 0.0

    def test_phase_fraction_zero_total(self):
        result = make_result(total=0.0)
        assert result.phase_fraction(Phase.LOAD) == 0.0

    def test_breakdown_sums_to_one(self):
        breakdown = make_result().breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["gpu_compute"] == pytest.approx(0.2)
        assert breakdown["solution_loading"] == pytest.approx(0.6)
        assert breakdown["pask_overhead"] == pytest.approx(0.06)
        assert breakdown["others"] == pytest.approx(0.14)

    def test_breakdown_overlap_attributed_exclusively(self):
        trace = TraceRecorder()
        trace.record(0.0, 10.0, "loader", Phase.LOAD)
        trace.record(0.0, 10.0, "gpu", Phase.EXEC)
        result = ExecutionResult(scheme="x", model="m", batch=1,
                                 total_time=10.0, trace=trace)
        breakdown = result.breakdown()
        assert breakdown["gpu_compute"] == pytest.approx(1.0)
        assert breakdown["solution_loading"] == pytest.approx(0.0)

    def test_speedup_over(self):
        fast = make_result(total=5.0)
        slow = make_result(total=10.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_over_zero_time_rejected(self):
        zero = make_result(total=0.0)
        with pytest.raises(ValueError):
            zero.speedup_over(make_result())

    def test_repr_mentions_model_and_scheme(self):
        text = repr(make_result())
        assert "m/PaSK" in text
