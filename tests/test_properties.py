"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cache import CategoricalSolutionCache, LoadedInstance, \
    NaiveSolutionCache
from repro.engine.serialize import deserialize_program, serialize_program
from repro.engine.instruction import EngineKernel, Instruction, InstrKind
from repro.engine.program import Program
from repro.gpu import MI100, load_time, CodeObjectFile
from repro.primitive import ConvProblem, kernel_time
from repro.primitive.solution import _bucket_signature, _exact_signature
from repro.primitive.solvers import all_miopen_solutions
from repro.sim import Environment, merge_intervals
from repro.sim.trace import subtract_intervals
from repro.tensors import DataType, TensorDesc

_SOLUTIONS = all_miopen_solutions()
_CONV_SOLUTIONS = [s for s in _SOLUTIONS if s.kind.value == "convolution"]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

conv_problems = st.builds(
    ConvProblem,
    batch=st.sampled_from([1, 2, 4, 16]),
    in_channels=st.sampled_from([3, 8, 16, 32, 64, 96, 128, 256]),
    height=st.sampled_from([7, 14, 28, 56, 112, 224]),
    width=st.sampled_from([7, 14, 28, 56, 112, 224]),
    out_channels=st.sampled_from([8, 16, 32, 64, 128, 512]),
    kernel=st.sampled_from([(1, 1), (3, 3), (5, 5), (7, 7)]),
    stride=st.sampled_from([(1, 1), (2, 2)]),
    pad=st.sampled_from([(0, 0), (1, 1), (2, 2), (3, 3)]),
)

intervals = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False),
              st.floats(0, 100, allow_nan=False)).map(
        lambda p: (min(p), max(p))),
    max_size=20)


# ----------------------------------------------------------------------
# Interval math
# ----------------------------------------------------------------------

@given(intervals)
def test_merge_intervals_disjoint_and_sorted(items):
    merged = merge_intervals(items)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
        assert s1 <= e1 and s2 <= e2


@given(intervals)
def test_merge_preserves_total_coverage(items):
    merged = merge_intervals(items)
    # Total measure never exceeds the sum and never misses any point:
    total = sum(e - s for s, e in merged)
    raw = sum(e - s for s, e in items)
    assert total <= raw + 1e-9


@given(intervals, intervals)
def test_subtract_plus_intersection_equals_base(base, remove):
    merged_base = merge_intervals(base)
    merged_remove = merge_intervals(remove)
    difference = subtract_intervals(merged_base, merged_remove)
    # difference is inside base and disjoint from every remove interval
    # of positive measure (zero-length removes carve nothing out, so the
    # difference may legitimately cover such points).
    for s, e in difference:
        assert any(bs - 1e-9 <= s and e <= be + 1e-9
                   for bs, be in merged_base)
        for rs, re_ in merged_remove:
            if re_ <= rs:
                continue
            assert e <= rs + 1e-9 or s >= re_ - 1e-9
    # measure(diff) == measure(base) - measure(base ∩ remove)
    base_measure = sum(e - s for s, e in merged_base)
    diff_measure = sum(e - s for s, e in difference)
    assert diff_measure <= base_measure + 1e-9


# ----------------------------------------------------------------------
# Simulation clock
# ----------------------------------------------------------------------

@given(st.lists(st.floats(0.001, 10, allow_nan=False), min_size=1,
                max_size=20))
def test_clock_monotonic_under_arbitrary_timeouts(delays):
    env = Environment()
    seen = []

    def proc():
        for delay in delays:
            yield env.timeout(delay)
            seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == sorted(seen)
    assert math.isclose(seen[-1], sum(delays), rel_tol=1e-9)


# ----------------------------------------------------------------------
# Solutions
# ----------------------------------------------------------------------

@given(conv_problems)
@settings(max_examples=60)
def test_some_solution_always_applicable(problem):
    """The registry guarantees a universal fallback for every conv."""
    assert any(s.is_applicable(problem) for s in _CONV_SOLUTIONS)


@given(conv_problems)
@settings(max_examples=60)
def test_tuning_compatible_implies_applicable(problem):
    for solution in _CONV_SOLUTIONS:
        if not solution.is_applicable(problem):
            continue
        other = problem.with_batch(problem.batch + 1)
        if solution.tuning_compatible(problem, other):
            assert solution.is_applicable(other)


@given(conv_problems)
@settings(max_examples=60)
def test_bucket_signature_coarser_than_exact(problem):
    """Two problems with equal exact signatures share the bucket too."""
    same = ConvProblem(problem.batch, problem.in_channels, problem.height,
                       problem.width, problem.out_channels, problem.kernel,
                       problem.stride, problem.pad, problem.dilation,
                       problem.group, problem.dtype, problem.layout)
    assert _exact_signature(problem) == _exact_signature(same)
    assert _bucket_signature(problem) == _bucket_signature(same)
    assert _bucket_signature(problem) in _exact_signature(problem)


@given(conv_problems)
@settings(max_examples=60)
def test_efficiency_never_exceeds_base(problem):
    other = problem.with_batch(problem.batch + 3)
    for solution in _CONV_SOLUTIONS:
        assert solution.efficiency(problem, other) <= solution.base_efficiency + 1e-12


@given(conv_problems)
@settings(max_examples=60)
def test_code_object_deterministic_and_positive(problem):
    for solution in _CONV_SOLUTIONS:
        a = solution.code_object_for(problem)
        b = solution.code_object_for(problem)
        assert a.name == b.name
        assert a.size_bytes == b.size_bytes > 0


@given(conv_problems, st.sampled_from([1, 2, 4, 8, 16, 64]))
@settings(max_examples=60)
def test_flops_scale_linearly_with_batch(problem, factor):
    scaled = problem.with_batch(problem.batch * factor)
    assert math.isclose(scaled.flops, problem.flops * factor, rel_tol=1e-9)


# ----------------------------------------------------------------------
# Perf & loading models
# ----------------------------------------------------------------------

@given(st.floats(1e3, 1e13), st.floats(1.0, 1e9),
       st.floats(0.01, 1.0))
def test_kernel_time_positive_and_monotone_in_efficiency(flops, bytes_moved,
                                                         efficiency):
    fast = kernel_time(flops, bytes_moved, efficiency, MI100)
    slow = kernel_time(flops, bytes_moved, efficiency / 2, MI100)
    assert 0 < fast <= slow


@given(st.integers(1_000, 10_000_000))
def test_load_time_monotone_in_size(size):
    small = CodeObjectFile.single_kernel("a", size)
    large = CodeObjectFile.single_kernel("b", size * 2)
    assert load_time(small, MI100) < load_time(large, MI100)
    assert load_time(small, MI100, reactive=True) > load_time(small, MI100)


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(_CONV_SOLUTIONS), conv_problems),
                max_size=12),
       conv_problems)
@settings(max_examples=60)
def test_cache_hit_is_always_servable(entries, query):
    cache = CategoricalSolutionCache()
    for solution, problem in entries:
        if solution.is_applicable(problem):
            cache.insert(LoadedInstance(solution, problem))
    desired = _CONV_SOLUTIONS[0]
    result = cache.get_sub_solution(desired, query)
    if result.hit:
        assert result.instance.can_serve(query)
        assert result.instance.solution.pattern is desired.pattern


@given(st.lists(st.tuples(st.sampled_from(_CONV_SOLUTIONS), conv_problems),
                max_size=12),
       conv_problems)
@settings(max_examples=60)
def test_categorical_never_more_lookups_than_pattern_list(entries, query):
    cache = CategoricalSolutionCache()
    for solution, problem in entries:
        if solution.is_applicable(problem):
            cache.insert(LoadedInstance(solution, problem))
    desired = _CONV_SOLUTIONS[-1]
    before = len(cache.entries(desired.pattern))
    result = cache.get_sub_solution(desired, query)
    assert result.lookups <= before


@given(st.lists(st.tuples(st.sampled_from(_CONV_SOLUTIONS), conv_problems),
                max_size=12),
       conv_problems)
@settings(max_examples=60)
def test_naive_finds_whenever_categorical_same_pattern_finds(entries, query):
    """The naive cache sees a superset of candidates, so a categorical
    hit implies a naive hit on identical contents."""
    categorical = CategoricalSolutionCache()
    naive = NaiveSolutionCache()
    for solution, problem in entries:
        if solution.is_applicable(problem):
            instance = LoadedInstance(solution, problem)
            categorical.insert(instance)
            naive.insert(instance)
    desired = _CONV_SOLUTIONS[0]
    c = categorical.get_sub_solution(desired, query)
    n = naive.get_sub_solution(desired, query)
    if c.hit:
        assert n.hit


# ----------------------------------------------------------------------
# Serialization round-trip
# ----------------------------------------------------------------------

@given(st.lists(conv_problems, min_size=1, max_size=8))
@settings(max_examples=40)
def test_program_round_trip(problems):
    instructions = []
    for index, problem in enumerate(problems):
        solution = next(s for s in _CONV_SOLUTIONS if s.is_applicable(problem))
        instructions.append(Instruction(
            index, f"layer{index}", InstrKind.MIOPEN_PRIMITIVE,
            problem=problem, solution_name=solution.name))
    program = Program("prop", tuple(instructions))
    restored = deserialize_program(serialize_program(program))
    assert restored.instructions == program.instructions


@given(st.sampled_from(["Add", "Softmax", "Gelu"]),
       st.floats(0, 1e9), st.integers(0, 10**9))
def test_engine_kernel_round_trip(op, flops, bytes_moved):
    kernel = EngineKernel(op, "1x2x3", flops, bytes_moved)
    instr = Instruction(0, "k", InstrKind.ENGINE_KERNEL, engine_kernel=kernel)
    program = Program("ek", (instr,))
    restored = deserialize_program(serialize_program(program))
    assert restored.instructions[0].engine_kernel == kernel


# ----------------------------------------------------------------------
# Tensor descriptors
# ----------------------------------------------------------------------

@given(st.lists(st.integers(1, 64), min_size=1, max_size=5),
       st.sampled_from(list(DataType)))
def test_tensor_numel_and_bytes_consistent(dims, dtype):
    t = TensorDesc(tuple(dims), dtype)
    expected = 1
    for d in dims:
        expected *= d
    assert t.numel == expected
    assert t.size_bytes == expected * dtype.size_bytes
