"""Unit tests for tensor descriptors, dtypes and layouts."""

import pytest

from repro.tensors import DataType, Layout, TensorDesc, layout_transform_time


class TestDataType:
    def test_sizes(self):
        assert DataType.FP32.size_bytes == 4
        assert DataType.FP16.size_bytes == 2
        assert DataType.BF16.size_bytes == 2
        assert DataType.INT8.size_bytes == 1
        assert DataType.INT32.size_bytes == 4

    def test_low_precision_flag(self):
        assert DataType.FP16.is_low_precision
        assert DataType.INT8.is_low_precision
        assert not DataType.FP32.is_low_precision
        assert not DataType.INT32.is_low_precision

    def test_labels_unique(self):
        labels = {d.label for d in DataType}
        assert len(labels) == len(list(DataType))


class TestLayoutTransform:
    def test_transform_time_positive_and_linear(self):
        t1 = layout_transform_time(1 << 20, 1000.0)
        t2 = layout_transform_time(2 << 20, 1000.0)
        assert t1 > 0
        assert t2 == pytest.approx(2 * t1)

    def test_transform_time_zero_bytes(self):
        assert layout_transform_time(0, 1000.0) == 0.0

    def test_transform_time_rejects_bad_input(self):
        with pytest.raises(ValueError):
            layout_transform_time(-1, 1000.0)
        with pytest.raises(ValueError):
            layout_transform_time(1024, 0.0)


class TestTensorDesc:
    def test_numel_and_bytes(self):
        t = TensorDesc((2, 3, 4, 5), DataType.FP32)
        assert t.numel == 120
        assert t.size_bytes == 480
        assert t.rank == 4

    def test_default_dtype_layout(self):
        t = TensorDesc((1, 3, 224, 224))
        assert t.dtype is DataType.FP32
        assert t.layout is Layout.NCHW

    def test_rejects_empty_and_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorDesc(())
        with pytest.raises(ValueError):
            TensorDesc((1, 0, 3))
        with pytest.raises(ValueError):
            TensorDesc((1, -2))

    def test_with_batch(self):
        t = TensorDesc((1, 3, 224, 224))
        t64 = t.with_batch(64)
        assert t64.dims == (64, 3, 224, 224)
        assert t.dims == (1, 3, 224, 224)  # original untouched

    def test_with_batch_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TensorDesc((1, 3)).with_batch(0)

    def test_with_layout_and_dtype(self):
        t = TensorDesc((1, 3, 8, 8))
        assert t.with_layout(Layout.NHWC).layout is Layout.NHWC
        assert t.with_dtype(DataType.FP16).size_bytes == t.numel * 2

    def test_hashable_and_equal(self):
        a = TensorDesc((1, 3, 8, 8))
        b = TensorDesc((1, 3, 8, 8))
        assert a == b
        assert hash(a) == hash(b)

    def test_str_format(self):
        t = TensorDesc((1, 3, 8, 8), DataType.FP16, Layout.NHWC)
        assert str(t) == "1x3x8x8:fp16:NHWC"
