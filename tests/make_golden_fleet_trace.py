#!/usr/bin/env python3
"""Regenerate ``tests/data/golden_fleet_trace.json``.

The golden flight-recorder Perfetto export of a sharded two-region
time-warp fleet replay (see ``tests/test_fleet_obs.py``) — the exact
artifact ``repro trace export --fleet`` ships with its default knobs.
Rerun after an intentional change to the flight recorder, the sharded
replay protocol or the simulator's calibrated timings::

    PYTHONPATH=src python tests/make_golden_fleet_trace.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from test_fleet_obs import GOLDEN_PATH, _export_fleet  # noqa: E402


def main():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = _export_fleet(GOLDEN_PATH)
    print(f"wrote {GOLDEN_PATH}: {len(payload['traceEvents'])} events "
          f"({payload['metadata']['mode']} mode, "
          f"{payload['metadata']['rollbacks']} rollbacks)")


if __name__ == "__main__":
    sys.exit(main())
