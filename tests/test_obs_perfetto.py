"""Perfetto export: structure, validation, determinism, golden file.

The golden trace is a full instrumented cold start of a tiny
ResNet-style model (see ``_tiny_graph``), regenerated with::

    PYTHONPATH=src python tests/make_golden_trace.py

and compared structurally (parsed JSON) so the expected Perfetto
payload is pinned across refactors of the exporter and the simulator.
"""

import json
import os

import pytest

from repro.core.schemes import Scheme
from repro.graph import GraphBuilder
from repro.obs import (SpanRecorder, to_perfetto, trace_events,
                       validate_trace, write_trace)
from repro.obs.spans import Span
from repro.serving.server import InferenceServer

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "golden_trace.json")


def _tiny_graph():
    """The golden model: two conv/relu stages and a linear head."""
    b = GraphBuilder("tinyres")
    x = b.input("x", (1, 3, 16, 16))
    y = b.conv(x, out_channels=4, kernel=3, pad=1, name="c1")
    y = b.relu(y, name="r1")
    y = b.conv(y, out_channels=4, kernel=3, pad=1, name="c2")
    y = b.relu(y, name="r2")
    y = b.gemm(b.flatten(b.global_avgpool(y)), out_features=10, name="fc")
    b.output(y)
    return b.finish()


def _export_tiny(path):
    server = InferenceServer("MI100")
    server.register_model(_tiny_graph())
    spans = SpanRecorder()
    result = server.serve_cold("tinyres", Scheme.PASK, spans=spans)
    payload = write_trace(path, list(spans), device="MI100",
                          metadata={"model": "tinyres",
                                    "scheme": Scheme.PASK.label,
                                    "total_time_s": result.total_time})
    return payload


SAMPLE_SPANS = [
    Span(1, "serve", "request", "server", 0.0, 4.0),
    Span(2, "mod_a", "load", "loader", 0.0, 2.0, parent_id=1,
         attrs=(("size", 64),)),
    Span(3, "k1", "exec", "gpu", 2.0, 3.5, parent_id=1, links=(2,)),
]


class TestTraceEvents:
    def test_metadata_names_device_and_actors(self):
        events = trace_events(SAMPLE_SPANS, device="MI100")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "device:MI100" in names
        assert {"gpu", "loader", "server"} <= names

    def test_complete_events_use_integer_micros(self):
        events = trace_events(SAMPLE_SPANS)
        exec_event = next(e for e in events if e.get("name") == "k1")
        assert exec_event["ph"] == "X"
        assert exec_event["ts"] == 2_000_000
        assert exec_event["dur"] == 1_500_000
        assert exec_event["args"]["span_id"] == 3
        assert exec_event["args"]["parent_id"] == 1

    def test_links_become_matched_flow_pairs(self):
        events = trace_events(SAMPLE_SPANS)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == "2-3"
        assert starts[0]["ts"] == 2_000_000   # at the load's end
        assert finishes[0]["ts"] == 2_000_000  # at the exec's start
        assert finishes[0]["bp"] == "e"

    def test_ts_monotonic_per_tid(self):
        events = trace_events(SAMPLE_SPANS)
        last = {}
        for event in events:
            if event["ph"] == "M":
                continue
            tid = event["tid"]
            assert event["ts"] >= last.get(tid, 0)
            last[tid] = event["ts"]

    def test_sample_payload_validates(self):
        assert validate_trace(to_perfetto(SAMPLE_SPANS)) == []


class TestValidateTrace:
    def test_rejects_non_payload(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": 3}) != []

    def test_rejects_missing_dur(self):
        payload = {"traceEvents": [
            {"ph": "X", "name": "k", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("dur" in p for p in validate_trace(payload))

    def test_rejects_backwards_ts(self):
        payload = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 10, "dur": 0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 5, "dur": 0}]}
        assert any("backwards" in p for p in validate_trace(payload))

    def test_rejects_unmatched_flow(self):
        payload = {"traceEvents": [
            {"ph": "s", "name": "w", "id": "1-2", "pid": 1, "tid": 1,
             "ts": 0}]}
        assert any("matched s/f pair" in p for p in validate_trace(payload))

    def test_rejects_float_ts(self):
        payload = {"traceEvents": [
            {"ph": "X", "name": "k", "pid": 1, "tid": 1, "ts": 0.5,
             "dur": 1}]}
        assert any("non-negative integer" in p
                   for p in validate_trace(payload))


class TestGoldenExport:
    def test_export_is_deterministic_across_runs(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        _export_tiny(str(first))
        _export_tiny(str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_matches_checked_in_golden(self, tmp_path):
        exported = _export_tiny(str(tmp_path / "trace.json"))
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert exported["metadata"] == golden["metadata"]
        assert exported["traceEvents"] == golden["traceEvents"]
        assert exported == golden

    def test_golden_file_validates(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert validate_trace(golden) == []
        # The cold start must exhibit the full causal story: loads,
        # linked execs and a request lifecycle.
        events = golden["traceEvents"]
        assert any(e.get("cat") == "load" for e in events)
        assert any(e.get("cat") == "request" for e in events)
        assert any(e["ph"] == "s" for e in events)
