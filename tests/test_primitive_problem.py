"""Unit tests for primitive problem descriptors."""

import pytest

from repro.primitive import (
    ActivationProblem,
    ConvProblem,
    GemmProblem,
    PoolProblem,
    PrimitiveKind,
)
from repro.tensors import DataType


class TestConvProblem:
    def test_out_spatial(self):
        p = ConvProblem(1, 3, 224, 224, 64, (7, 7), (2, 2), (3, 3))
        assert p.out_spatial == (112, 112)

    def test_out_spatial_unit(self):
        p = ConvProblem(1, 16, 32, 32, 32, (3, 3), pad=(1, 1))
        assert p.out_spatial == (32, 32)

    def test_flops(self):
        p = ConvProblem(1, 16, 32, 32, 64, (3, 3), pad=(1, 1))
        assert p.flops == pytest.approx(2 * 64 * 32 * 32 * 16 * 9)

    def test_grouped_flops(self):
        dense = ConvProblem(1, 32, 8, 8, 32, (3, 3), pad=(1, 1))
        dw = ConvProblem(1, 32, 8, 8, 32, (3, 3), pad=(1, 1), group=32)
        assert dense.flops == pytest.approx(32 * dw.flops)

    def test_depthwise_and_pointwise_flags(self):
        dw = ConvProblem(1, 32, 8, 8, 32, (3, 3), pad=(1, 1), group=32)
        pw = ConvProblem(1, 32, 8, 8, 64, (1, 1))
        assert dw.is_depthwise and not dw.is_pointwise
        assert pw.is_pointwise and not pw.is_depthwise

    def test_with_batch(self):
        p = ConvProblem(1, 3, 32, 32, 8, (3, 3))
        p4 = p.with_batch(4)
        assert p4.batch == 4
        assert p4.flops == pytest.approx(4 * p.flops)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvProblem(0, 3, 32, 32, 8, (3, 3))
        with pytest.raises(ValueError):
            ConvProblem(1, 3, 32, 32, 8, (3, 3), pad=(-1, 0))
        with pytest.raises(ValueError):
            ConvProblem(1, 3, 32, 32, 8, (3, 3), group=2)

    def test_collapsed_output_raises_on_access(self):
        p = ConvProblem(1, 3, 2, 2, 8, (5, 5))
        with pytest.raises(ValueError):
            _ = p.out_spatial

    def test_hashable(self):
        a = ConvProblem(1, 3, 32, 32, 8, (3, 3))
        b = ConvProblem(1, 3, 32, 32, 8, (3, 3))
        assert a == b and hash(a) == hash(b)

    def test_kind(self):
        p = ConvProblem(1, 3, 32, 32, 8, (3, 3))
        assert p.kind is PrimitiveKind.CONVOLUTION


class TestPoolProblem:
    def test_out_spatial_and_flops(self):
        p = PoolProblem(1, 64, 112, 112, (2, 2), (2, 2))
        assert p.out_spatial == (56, 56)
        assert p.flops == pytest.approx(64 * 56 * 56 * 4)

    def test_global_flag(self):
        p = PoolProblem(1, 512, 7, 7, (7, 7), (1, 1), mode="avg")
        assert p.is_global

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PoolProblem(1, 8, 8, 8, (2, 2), (2, 2), mode="median")

    def test_with_batch(self):
        p = PoolProblem(1, 8, 8, 8, (2, 2), (2, 2))
        assert p.with_batch(16).batch == 16


class TestActivationProblem:
    def test_flops_scale_by_kind(self):
        relu = ActivationProblem(1000, "relu")
        gelu = ActivationProblem(1000, "gelu")
        assert gelu.flops > relu.flops

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationProblem(0, "relu")
        with pytest.raises(ValueError):
            ActivationProblem(10, "")

    def test_with_batch_scales_extent(self):
        p = ActivationProblem(100, "relu")
        assert p.with_batch(8).numel == 800


class TestGemmProblem:
    def test_flops(self):
        p = GemmProblem(128, 256, 512)
        assert p.flops == pytest.approx(2 * 128 * 256 * 512)

    def test_batched_flops(self):
        p = GemmProblem(64, 64, 64, batch=12)
        assert p.flops == pytest.approx(12 * 2 * 64 ** 3)

    def test_bytes_moved(self):
        p = GemmProblem(2, 3, 4, dtype=DataType.FP32)
        assert p.bytes_moved == (2 * 4 + 4 * 3 + 2 * 3) * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmProblem(0, 1, 1)
