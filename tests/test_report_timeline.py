"""Tests for the ASCII timeline renderer."""

import pytest

from repro.core.schemes import Scheme
from repro.report import render_timeline
from repro.serving.experiments import ExperimentSuite
from repro.sim import Phase, TraceRecorder


class TestRenderTimeline:
    def test_empty_trace(self):
        assert render_timeline(TraceRecorder()) == "(empty trace)"

    def test_width_validation(self):
        t = TraceRecorder()
        t.record(0, 1, "gpu", Phase.EXEC)
        with pytest.raises(ValueError):
            render_timeline(t, width=5)

    def test_rows_per_actor(self):
        t = TraceRecorder()
        t.record(0, 1, "parser", Phase.PARSE)
        t.record(0, 2, "loader", Phase.LOAD)
        t.record(1, 2, "gpu", Phase.EXEC)
        text = render_timeline(t, width=20)
        lines = text.splitlines()
        assert lines[0].strip().startswith("parser")
        assert lines[1].strip().startswith("loader")
        assert lines[2].strip().startswith("gpu")
        assert "legend" in lines[-1]

    def test_phase_characters(self):
        t = TraceRecorder()
        t.record(0, 10, "loader", Phase.LOAD)
        text = render_timeline(t, width=10)
        loader_row = text.splitlines()[0]
        assert loader_row.count("L") == 10

    def test_idle_renders_blank(self):
        t = TraceRecorder()
        t.record(0, 1, "gpu", Phase.EXEC)
        t.record(9, 10, "gpu", Phase.EXEC)
        text = render_timeline(t, width=10)
        gpu_row = text.splitlines()[0]
        cells = gpu_row.split("|")[1]
        assert cells[0] == "X" and cells[-1] == "X"
        assert " " in cells

    def test_dominant_phase_wins_bucket(self):
        t = TraceRecorder()
        t.record(0.0, 0.9, "loader", Phase.LOAD)
        t.record(0.9, 1.0, "loader", Phase.CHECK)
        text = render_timeline(t, width=10)
        cells = text.splitlines()[0].split("|")[1]
        assert cells.count("L") == 9
        assert cells.count("c") == 1

    def test_real_pask_trace_shows_interleaving(self):
        suite = ExperimentSuite("MI100")
        result = suite.cold("vgg", Scheme.PASK)
        text = render_timeline(result.trace, total_time=result.total_time)
        lines = {line.split("|")[0].strip(): line for line in
                 text.splitlines() if "|" in line}
        assert "parser" in lines and "loader" in lines and "gpu" in lines
        parser_cells = lines["parser"].split("|")[1]
        loader_cells = lines["loader"].split("|")[1]
        # The parser finishes well before the loader does.
        assert parser_cells.rstrip().count("p") < len(
            loader_cells.rstrip())

    def test_scale_line_shows_duration(self):
        t = TraceRecorder()
        t.record(0, 0.010, "gpu", Phase.EXEC)
        text = render_timeline(t, width=20)
        assert "10.0 ms" in text
