"""Property tests for the fleet layer.

Three invariants, each pinned under hypothesis-generated configs:

- **Conservation** — every offered request is exactly one of completed,
  failed, or shed, for arbitrary region counts, policies, fault plans
  and shed bounds.
- **Determinism** — a fleet replay is a pure function of (config,
  trace): rerunning it reproduces every latency and counter.
- **No starvation** — the router never dispatches to an unroutable
  (drained) region while a routable one exists, and full drains shed
  with a well-defined error rather than hanging or crashing.
"""

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.fleet import (AutoscalePolicy, FleetConfig, FleetSimulator,
                         RegionConfig, RouterState, RoutingPolicy,
                         merge_traces)
from repro.runner import fleet_stats_from_payload, fleet_stats_to_payload
from repro.serving.requests import poisson_trace
from repro.sim.faults import FaultPlan

_DEVICES = ("MI100", "A100", "6900XT")
_SCHEMES = (Scheme.BASELINE, Scheme.PASK, Scheme.NNV12)


def _autoscale_strategy():
    return st.one_of(
        st.none(),
        st.just(AutoscalePolicy()),
        st.floats(0.05, 2.0).map(
            lambda t: AutoscalePolicy(kind="scale-to-zero",
                                      idle_timeout_s=t)),
        st.booleans().map(
            lambda r: AutoscalePolicy(kind="scale-to-zero",
                                      idle_timeout_s=0.25,
                                      checkpoint_restore=r)),
        st.just(AutoscalePolicy(kind="reactive", min_instances=1,
                                scale_up_wait_s=0.01)),
        st.just(AutoscalePolicy(kind="predictive", prewarm_headroom=1.5)),
    )


@st.composite
def _fleet_configs(draw):
    n_regions = draw(st.integers(1, 3))
    regions = []
    for index in range(n_regions):
        faults = None
        if draw(st.booleans()):
            faults = FaultPlan(seed=draw(st.integers(0, 99)),
                               crash_rate=draw(st.floats(0.0, 0.1)))
        drains = ()
        if draw(st.booleans()):
            start = draw(st.floats(0.0, 4.0))
            length = draw(st.floats(0.1, 3.0))
            drains = ((start, start + length),)
        regions.append(RegionConfig(
            name=f"r{index}",
            device=draw(st.sampled_from(_DEVICES)),
            scheme=draw(st.sampled_from(_SCHEMES)),
            max_instances=draw(st.integers(1, 3)),
            keep_alive_s=draw(st.floats(0.0, 2.0)),
            faults=faults, drain_windows=drains))
    return FleetConfig(
        regions=tuple(regions),
        routing=RoutingPolicy(draw(st.sampled_from(
            ("single", "round-robin", "least-queue", "warm-first")))),
        autoscale=draw(_autoscale_strategy()),
        shed_wait_s=draw(st.one_of(st.none(), st.floats(0.0, 0.5))))


@st.composite
def _fleet_traces(draw):
    tenants = draw(st.integers(1, 3))
    named = [(f"t{i}",
              poisson_trace("res", draw(st.floats(0.5, 6.0)),
                            draw(st.floats(1.0, 6.0)),
                            seed=draw(st.integers(0, 999))))
             for i in range(tenants)]
    return merge_traces(named)


class TestConservation:
    @given(config=_fleet_configs(), trace=_fleet_traces())
    @settings(max_examples=40, deadline=None)
    def test_offered_equals_completed_failed_shed(self, config, trace):
        stats = FleetSimulator(config).run(trace)
        assert stats.offered == len(trace)
        assert stats.conserved
        # Tenant accounting conserves independently of region accounting.
        assert stats.offered == sum(t.offered
                                    for t in stats.tenants.values())
        for tenant in stats.tenants.values():
            assert tenant.offered == (tenant.completed + tenant.failed
                                      + tenant.shed)

    @given(config=_fleet_configs(), trace=_fleet_traces())
    @settings(max_examples=20, deadline=None)
    def test_latency_accounting_is_positive(self, config, trace):
        stats = FleetSimulator(config).run(trace)
        assert all(lat > 0 for lat in stats.latencies)
        assert 0.0 <= stats.availability <= 1.0


class TestDeterminism:
    @given(config=_fleet_configs(), trace=_fleet_traces())
    @settings(max_examples=25, deadline=None)
    def test_rerun_is_identical(self, config, trace):
        first = FleetSimulator(config).run(trace)
        second = FleetSimulator(config).run(trace)
        assert first.offered == second.offered
        assert first.shed_unroutable == second.shed_unroutable
        for name, region in first.regions.items():
            other = second.regions[name]
            assert other.latencies == region.latencies
            assert other.queue_waits == region.queue_waits
            assert other.cold_starts == region.cold_starts
            assert other.warm_hits == region.warm_hits
            assert other.restores == region.restores
            assert other.prewarm_spawns == region.prewarm_spawns
            assert other.scale_ups == region.scale_ups
            assert other.scale_downs == region.scale_downs
            assert other.faults.as_dict() == region.faults.as_dict()
        for name, tenant in first.tenants.items():
            assert second.tenants[name].latencies == tenant.latencies

    @given(config=_fleet_configs(), trace=_fleet_traces())
    @settings(max_examples=15, deadline=None)
    def test_payload_round_trip_preserves_everything(self, config, trace):
        stats = FleetSimulator(config).run(trace)
        restored = fleet_stats_from_payload(fleet_stats_to_payload(stats))
        assert restored.offered == stats.offered
        assert restored.conserved == stats.conserved
        assert restored.latencies == stats.latencies
        assert restored.cold_starts == stats.cold_starts
        assert restored.restores == stats.restores


def _fake_region(drained, warm, wait):
    return SimpleNamespace(
        routable=lambda now, _d=drained: not _d,
        has_warm_idle=lambda now, _w=warm: _w,
        predicted_wait=lambda now, _p=wait: _p)


class TestNoStarvation:
    @given(kind=st.sampled_from(("single", "round-robin", "least-queue",
                                 "warm-first")),
           states=st.lists(st.tuples(st.booleans(), st.booleans(),
                                     st.floats(0.0, 5.0)),
                           min_size=1, max_size=6),
           steps=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_router_never_picks_unroutable_region(self, kind, states,
                                                  steps):
        regions = [_fake_region(*state) for state in states]
        router = RouterState(RoutingPolicy(kind))
        any_routable = any(not drained for drained, _, _ in states)
        for _ in range(steps):
            choice = router.choose(regions, now=0.0)
            if not any_routable:
                assert choice is None
            else:
                assert choice is not None
                assert regions[choice].routable(0.0)

    @given(seed=st.integers(0, 200),
           kind=st.sampled_from(("round-robin", "least-queue",
                                 "warm-first")))
    @settings(max_examples=20, deadline=None)
    def test_drained_region_serves_nothing(self, seed, kind):
        horizon = 1e9
        config = FleetConfig(
            regions=(RegionConfig("drained", scheme=Scheme.PASK,
                                  drain_windows=((0.0, horizon),)),
                     RegionConfig("open", scheme=Scheme.PASK,
                                  faults=FaultPlan(seed=seed,
                                                   crash_rate=0.05))),
            routing=RoutingPolicy(kind))
        trace = poisson_trace("res", 4.0, 5.0, seed=seed)
        stats = FleetSimulator(config).run(trace)
        assert stats.regions["drained"].requests == 0
        assert stats.regions["open"].requests == len(trace)
        assert stats.shed_unroutable == 0
        assert stats.conserved

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_full_drain_sheds_with_defined_error(self, seed):
        config = FleetConfig(
            regions=(RegionConfig("a", drain_windows=((1.0, 2.0),)),
                     RegionConfig("b", drain_windows=((1.0, 2.0),))),
            routing=RoutingPolicy("round-robin"))
        trace = poisson_trace("res", 6.0, 3.0, seed=seed)
        stats = FleetSimulator(config).run(trace)
        inside = sum(1 for t in trace.arrivals if 1.0 <= t < 2.0)
        assert stats.shed_unroutable == inside
        assert stats.conserved
