"""Tests for the SLO-guarded resilience layer (repro.serving.resilience).

Covers the four mechanisms (checkpoint/restore, restart supervision,
admission control, graceful drain) at the unit level against fake
instances, plus the cluster-level guarantees the issue pins: an inert
policy is byte-identical to no policy at all (fast-forward included),
checkpoint/restore measurably reduces post-crash cold serves, and
admission control bounds p99 under overload while every request stays
accounted for.
"""

import pytest

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator, _Instance
from repro.serving.requests import poisson_trace
from repro.serving.resilience import ResiliencePolicy, ResilienceState
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultPlan
from repro.sim.trace import Phase

SERVER = InferenceServer("MI100")


def make_state(policy, recorder=None, warm=1e-3, cold_extra=1e-2,
               degraded_cold=5e-2, restart_delay=0.05):
    return ResilienceState(policy, FaultCounters(), recorder,
                           warm, cold_extra, degraded_cold, restart_delay)


# ----------------------------------------------------------------------
# Policy validation and inertness
# ----------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(checkpoint_interval_s=0.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(checkpoint_retention=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(restore_speedup=0.5)
    with pytest.raises(ValueError):
        ResiliencePolicy(restart_backoff=0.9)
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_threshold=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_queue_depth=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(shed_wait_s=-0.1)
    with pytest.raises(ValueError):
        ResiliencePolicy(recycle_after_requests=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(drain_restart_s=-1.0)


def test_disabled_policy_is_inert_and_default_is_not():
    assert ResiliencePolicy.disabled().is_inert
    assert not ResiliencePolicy().is_inert
    assert not ResiliencePolicy(checkpoint_interval_s=None,
                                breaker_threshold=None,
                                restart_backoff=1.0,
                                max_queue_depth=4).is_inert


# ----------------------------------------------------------------------
# Restart supervision: backoff and circuit breaker (unit level)
# ----------------------------------------------------------------------

def test_crash_loop_backoff_escalates_and_caps():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None,
                              restart_backoff=2.0, max_restart_delay_s=0.2)
    state = make_state(policy, restart_delay=0.05)
    inst = _Instance()
    expected = [0.05, 0.1, 0.2, 0.2]  # 0.05 * 2^k capped at 0.2
    for crash_time, delay in zip((1.0, 2.0, 3.0, 4.0), expected):
        state.on_crash(inst, crash_time, None)
        assert inst.busy_until == pytest.approx(crash_time + delay)
        assert not inst.warm
    # A completed request resets the crash-loop exponent.
    state.on_complete(inst, 5.0)
    state.on_crash(inst, 6.0, None)
    assert inst.busy_until == pytest.approx(6.0 + 0.05)


def test_breaker_opens_after_threshold_in_window():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=3, breaker_window_s=5.0,
                              breaker_cooldown_s=0.5)
    state = make_state(policy)
    inst = _Instance()
    state.on_crash(inst, 1.0, None)
    state.on_crash(inst, 1.2, None)
    assert not inst.breaker_open
    state.on_crash(inst, 1.4, None)
    assert inst.breaker_open
    assert inst.breaker_until == pytest.approx(1.9)
    assert state.counters.breaker_opens == 1
    # Open excludes the instance until the cooldown, then half-open.
    assert not ResilienceState.routable(inst, 1.5)
    assert ResilienceState.routable(inst, 2.0)
    assert ResilienceState.ready_at(inst) >= inst.breaker_until


def test_breaker_window_forgets_old_crashes():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=3, breaker_window_s=2.0)
    state = make_state(policy)
    inst = _Instance()
    state.on_crash(inst, 0.0, None)
    state.on_crash(inst, 0.5, None)
    state.on_crash(inst, 7.0, None)  # the first two fell out of the window
    assert not inst.breaker_open
    assert inst.crash_times == [7.0]


def test_half_open_probe_closes_or_reopens_with_escalation():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=2, breaker_window_s=10.0,
                              breaker_cooldown_s=0.5, breaker_backoff=2.0,
                              breaker_max_cooldown_s=4.0)
    state = make_state(policy)
    inst = _Instance()
    state.on_crash(inst, 1.0, None)
    state.on_crash(inst, 1.1, None)
    assert inst.breaker_open and inst.open_streak == 1
    # Probe counting: a request scheduled at/after the cooldown end.
    state.on_scheduled(inst, inst.breaker_until + 0.1, 1e-3, True)
    assert state.counters.breaker_probes == 1
    # Failed probe: re-open with an escalated (2x) cooldown.
    state.on_crash(inst, 2.0, None)
    assert inst.breaker_open and inst.open_streak == 2
    assert inst.breaker_until == pytest.approx(3.0)  # 2.0 + 0.5 * 2
    assert state.counters.breaker_opens == 2
    # Successful probe: breaker closes and history is forgotten.
    state.on_complete(inst, 4.0)
    assert not inst.breaker_open
    assert inst.open_streak == 0
    assert inst.crash_times == []


# ----------------------------------------------------------------------
# Checkpoint/restore model (unit level)
# ----------------------------------------------------------------------

def test_fraction_interpolates_along_loading_ramp():
    inst = _Instance(life_start=0.0, ramp_start=0.0, ramp_end=2.0,
                     frac_base=0.0)
    assert ResilienceState._fraction_at(inst, -1.0) == 0.0
    assert ResilienceState._fraction_at(inst, 1.0) == pytest.approx(0.5)
    assert ResilienceState._fraction_at(inst, 2.0) == 1.0
    assert ResilienceState._fraction_at(inst, 99.0) == 1.0
    # A restored life starts from its restored base fraction.
    partial = _Instance(ramp_start=0.0, ramp_end=2.0, frac_base=0.5)
    assert ResilienceState._fraction_at(partial, 1.0) == pytest.approx(0.75)


def test_restore_uses_freshest_finished_checkpoint():
    policy = ResiliencePolicy(checkpoint_interval_s=0.5,
                              checkpoint_write_s=0.002)
    state = make_state(policy)
    inst = _Instance(life_start=0.0, ramp_start=0.0, ramp_end=2.0)
    # Crash at 1.6: checkpoints exist at 0.5, 1.0, 1.5; the freshest
    # finished one (1.5) captured 75% of the ramp.
    assert state._restore_fraction(inst, 1.6, None) == pytest.approx(0.75)
    # Crash before the first checkpoint finished: nothing to restore.
    assert state._restore_fraction(inst, 0.4, None) == 0.0
    # A checkpoint whose write has not finished is unusable: at
    # t=1.5005 the 1.5 checkpoint is still being written, so the 1.0
    # checkpoint (50%) is the freshest usable one.
    assert state._restore_fraction(inst, 1.5005, None) == pytest.approx(0.5)


def test_corrupted_checkpoints_step_back_and_restore_faults_abort():
    policy = ResiliencePolicy(checkpoint_interval_s=0.5,
                              checkpoint_retention=3)
    inst = _Instance(life_start=0.0, ramp_start=0.0, ramp_end=2.0)
    # Every checkpoint write corrupted: all retained candidates are
    # skipped and the restart is cold.
    state = make_state(policy)
    injector = FaultPlan(seed=0, checkpoint_corruption_rate=1.0).injector()
    assert state._restore_fraction(inst, 1.6, injector) == 0.0
    assert state.counters.checkpoint_corruptions == policy.checkpoint_retention
    # Clean checkpoint but the restore itself fails.
    state = make_state(policy)
    injector = FaultPlan(seed=0, restore_failure_rate=1.0).injector()
    assert state._restore_fraction(inst, 1.6, injector) == 0.0
    assert state.counters.restore_failures == 1


def test_on_crash_restores_and_charges_delta():
    policy = ResiliencePolicy(checkpoint_interval_s=0.5,
                              breaker_threshold=None,
                              restore_overhead_s=0.002, restore_speedup=8.0)
    state = make_state(policy, cold_extra=0.08, restart_delay=0.05)
    inst = _Instance(life_start=0.0, ramp_start=0.0, ramp_end=2.0)
    state.on_crash(inst, 1.6, None)
    fraction = 0.75
    restore_cost = 0.002 + fraction * 0.08 / 8.0
    assert inst.busy_until == pytest.approx(1.6 + 0.05 + restore_cost)
    assert inst.frac_base == pytest.approx(fraction)
    assert not inst.warm  # partially warm: next serve finishes the ramp
    assert state.counters.warm_restores == 1
    # The partial-warm serve costs warm + the un-restored remainder.
    service = state.cold_service(inst.frac_base, default_cold=0.1)
    assert service == pytest.approx(state.warm + 0.25 * state.cold_extra)


# ----------------------------------------------------------------------
# Admission control (unit level)
# ----------------------------------------------------------------------

def test_admission_sheds_on_deadline_and_depth():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None,
                              max_queue_depth=1, shed_wait_s=0.01)
    state = make_state(policy)
    assert state.admit(0.0, 0.0)          # immediate start: no queueing
    assert state.admit(0.0, 0.005)        # queued (one slot)
    assert not state.admit(0.0, 0.006)    # bounded queue full
    assert not state.admit(0.01, 0.05)    # wait beyond the deadline
    assert state.counters.shed_requests == 2
    # Started requests free their slot.
    assert state.admit(0.006, 0.008)


def test_degraded_mode_hysteresis_and_reactive_cold_serves():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None, degrade_wait_s=0.01)
    state = make_state(policy, degraded_cold=0.05)
    assert state.admit(0.0, 0.02)  # overload: wait above the threshold
    assert state.degraded
    assert state.cold_service(0.0, default_cold=0.1) == 0.05
    assert state.counters.degraded_requests == 1
    # Stays degraded until the wait falls below half the threshold.
    assert state.admit(1.0, 1.008)
    assert state.degraded
    assert state.admit(2.0, 2.004)
    assert not state.degraded
    assert state.cold_service(0.0, default_cold=0.1) == 0.1


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------

def test_recycle_drains_and_reenters_warm():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None,
                              recycle_after_requests=2,
                              drain_restart_s=0.01)
    state = make_state(policy, cold_extra=0.08)
    inst = _Instance(warm=True)
    state.on_complete(inst, 1.0)
    assert state.counters.drains == 0
    state.on_complete(inst, 2.0)
    assert state.counters.drains == 1
    downtime = (policy.checkpoint_write_s + policy.drain_restart_s
                + policy.restore_overhead_s
                + state.cold_extra / policy.restore_speedup)
    assert inst.busy_until == pytest.approx(2.0 + downtime)
    assert inst.warm and inst.frac_base == 1.0 and inst.served == 0


def test_cluster_drain_adds_no_cold_starts():
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None,
                              recycle_after_requests=25)
    trace = poisson_trace("res", 100.0, 2.0, seed=5)
    base_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2)
    drain_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                              resilience=policy)
    base = ClusterSimulator(SERVER, base_cfg).run(trace)
    drained = ClusterSimulator(SERVER, drain_cfg).run(trace)
    assert drained.faults.drains > 0
    # Recycled instances re-enter warm: never an extra cold start.
    assert drained.cold_starts == base.cold_starts
    assert drained.completed == len(trace)


# ----------------------------------------------------------------------
# Cluster-level: inert-policy byte identity (golden regression)
# ----------------------------------------------------------------------

def test_inert_policy_is_byte_identical_including_fast_forward():
    trace = poisson_trace("res", 50.0, 4.0, seed=1)
    base_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                             keep_alive_s=0.5)
    inert_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                              keep_alive_s=0.5,
                              resilience=ResiliencePolicy.disabled())
    base = ClusterSimulator(SERVER, base_cfg).run(trace)
    inert = ClusterSimulator(SERVER, inert_cfg).run(trace)
    assert base.latencies == inert.latencies
    assert base.queue_waits == inert.queue_waits
    assert base.cold_starts == inert.cold_starts
    assert base.shed == inert.shed == 0
    # The steady-state fast path stays on under an inert policy.
    assert base.fast_forwarded == inert.fast_forwarded > 0


def test_inert_policy_trace_records_identical():
    trace = poisson_trace("res", 30.0, 2.0, seed=2)
    base_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                             keep_alive_s=0.5, trace_retention="full")
    inert_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                              keep_alive_s=0.5, trace_retention="full",
                              resilience=ResiliencePolicy.disabled())
    base = ClusterSimulator(SERVER, base_cfg).run(trace)
    inert = ClusterSimulator(SERVER, inert_cfg).run(trace)
    assert base.trace.records == inert.trace.records


# ----------------------------------------------------------------------
# Cluster-level: the two headline comparisons
# ----------------------------------------------------------------------

def test_checkpoint_restore_reduces_post_crash_cold_starts():
    plan = FaultPlan(seed=3, crash_rate=0.08)
    trace = poisson_trace("res", 40.0, 10.0, seed=0)
    policy = ResiliencePolicy(checkpoint_interval_s=0.25,
                              breaker_threshold=None)
    base_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                             keep_alive_s=0.5, faults=plan)
    res_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                            keep_alive_s=0.5, faults=plan,
                            resilience=policy)
    base = ClusterSimulator(SERVER, base_cfg).run(trace)
    resilient = ClusterSimulator(SERVER, res_cfg).run(trace)
    assert resilient.faults.crashes == base.faults.crashes > 0
    assert resilient.faults.warm_restores > 0
    assert resilient.cold_starts < base.cold_starts
    assert resilient.percentile(0.99) <= base.percentile(0.99)
    assert resilient.mean_latency < base.mean_latency
    assert resilient.completed + resilient.failed + resilient.shed \
        == len(trace)
    assert resilient.availability >= base.availability


def test_admission_control_bounds_p99_under_overload():
    warm = SERVER.serve_hot("res").total_time
    rate = 2.0 * (2.0 / warm)  # 2x the two-instance warm capacity
    trace = poisson_trace("res", rate, 1.0, seed=1)
    policy = ResiliencePolicy(checkpoint_interval_s=None,
                              breaker_threshold=None,
                              max_queue_depth=64, shed_wait_s=0.02,
                              degrade_wait_s=0.01)
    base_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2)
    shed_cfg = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                             resilience=policy)
    base = ClusterSimulator(SERVER, base_cfg).run(trace)
    shed = ClusterSimulator(SERVER, shed_cfg).run(trace)
    assert shed.shed > 0
    assert shed.shed == shed.faults.shed_requests
    assert shed.percentile(0.99) < base.percentile(0.99)
    assert max(shed.queue_waits) <= policy.shed_wait_s + warm
    assert shed.completed + shed.failed + shed.shed == len(trace)
    assert shed.availability == 1.0  # shed-adjusted: nothing lost


def test_resilient_replay_records_new_trace_phases():
    plan = FaultPlan(seed=3, crash_rate=0.2)
    trace = poisson_trace("res", 40.0, 4.0, seed=0)
    policy = ResiliencePolicy(checkpoint_interval_s=0.25)
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan,
                           resilience=policy, trace_retention="full")
    stats = ClusterSimulator(SERVER, config).run(trace)
    phases = {record.phase for record in stats.trace.records}
    assert Phase.FAULT in phases
    assert Phase.RESTORE in phases
    labels = {record.label for record in stats.trace.records}
    assert "crash" in labels and "restore" in labels


def test_resilience_metrics_surface_in_registry():
    from repro.obs.metrics import MetricsRegistry
    plan = FaultPlan(seed=3, crash_rate=0.15)
    trace = poisson_trace("res", 40.0, 4.0, seed=0)
    policy = ResiliencePolicy(checkpoint_interval_s=0.25)
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan, resilience=policy)
    registry = MetricsRegistry()
    stats = ClusterSimulator(SERVER, config, metrics=registry).run(trace)
    dump = registry.to_json()
    assert "cluster_resilience_total" in dump
    kinds = {row["labels"].get("kind")
             for row in dump["cluster_resilience_total"]["series"]}
    assert "warm_restore" in kinds
    assert stats.faults.warm_restores > 0
