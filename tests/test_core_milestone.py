"""Unit tests for the milestone tracker."""

import pytest

from repro.core.milestone import MilestoneTracker


def test_initial_state():
    t = MilestoneTracker(10)
    assert not t.parse_done
    assert not t.reached
    assert t.milestone is None


def test_rejects_empty_program():
    with pytest.raises(ValueError):
        MilestoneTracker(0)


def test_parse_done_after_all_layers():
    t = MilestoneTracker(3)
    for _ in range(3):
        t.record_parsed()
    assert t.parse_done


def test_over_parsing_rejected():
    t = MilestoneTracker(1)
    t.record_parsed()
    with pytest.raises(ValueError):
        t.record_parsed()


def test_not_reached_before_parse_done():
    t = MilestoneTracker(5)
    t.record_parsed()
    t.record_executed(3)
    assert not t.check(next_index=4, gpu_idle=True)


def test_not_reached_while_gpu_busy():
    t = MilestoneTracker(3)
    for _ in range(3):
        t.record_parsed()
    t.record_executed(1)
    assert not t.check(next_index=2, gpu_idle=False)


def test_reached_when_pipeline_drained():
    t = MilestoneTracker(5)
    for _ in range(5):
        t.record_parsed()
    t.record_executed(1)
    # Layer 2 is in flight at the same instant; layer 3 is next.
    assert t.check(next_index=3, gpu_idle=True)
    assert t.reached
    assert t.milestone == 2


def test_latches_once():
    t = MilestoneTracker(5)
    for _ in range(5):
        t.record_parsed()
    t.record_executed(2)
    assert t.check(next_index=4, gpu_idle=True)
    first = t.milestone
    # Later checks keep the original milestone even with new progress.
    t.record_executed(4)
    assert t.check(next_index=5, gpu_idle=True)
    assert t.milestone == first


def test_executed_through_is_monotonic():
    t = MilestoneTracker(5)
    t.record_executed(3)
    t.record_executed(1)
    assert t.executed_through == 3


def test_milestone_zero_for_immediate_drain():
    t = MilestoneTracker(2)
    t.record_parsed()
    t.record_parsed()
    assert t.check(next_index=0, gpu_idle=True)
    assert t.milestone == 0
