"""Property tests (hypothesis) for the kernel-pack fetch hierarchy.

The two invariants the PR's robustness claims rest on:

* **Byte conservation** — under any seeded fault plan (arbitrary fetch
  failure rates, corruption, outage and churn windows), every byte the
  hierarchy fetched is exactly one of verified, discarded-corrupt, or
  abandoned-on-timeout; and the replay's request accounting still
  conserves (offered == completed + failed + shed).
* **Seed determinism** — the full fetch/fallback sequence is a pure
  function of the plan seed: identical plans produce byte-identical
  replay payloads and identical transfer ledgers, which is what makes
  pack chaos runs reproducible and bisectable.
"""

from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.packs import KernelPack, PackPolicy, PackStoreState
from repro.runner import cluster_stats_to_payload
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

_SERVER = InferenceServer()
_TRACE = poisson_trace("res", rate_hz=25.0, duration_s=2.0, seed=11)


def _windows(max_end):
    bounds = st.tuples(st.floats(0.0, max_end / 2),
                       st.floats(0.1, max_end / 2))
    return st.lists(bounds.map(lambda b: (b[0], b[0] + b[1])),
                    max_size=2).map(tuple)


pack_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**32 - 1),
    pack_local_failure_rate=st.floats(0.0, 1.0),
    pack_peer_failure_rate=st.floats(0.0, 1.0),
    pack_origin_failure_rate=st.floats(0.0, 1.0),
    pack_corruption_rate=st.floats(0.0, 0.8),
    registry_outage_windows=_windows(2.0),
    peer_churn_windows=_windows(2.0),
)


def _run(plan):
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                           keep_alive_s=0.05, faults=plan,
                           packs=PackPolicy())
    return ClusterSimulator(_SERVER, config).run(_TRACE)


@settings(max_examples=20, deadline=None)
@given(pack_plans)
def test_bytes_conserve_under_any_plan(plan):
    stats = _run(plan)
    counters = stats.packs
    assert counters is not None
    assert counters.conserved, counters.as_dict()
    assert counters.bytes_fetched == (counters.bytes_verified
                                      + counters.bytes_discarded
                                      + counters.bytes_abandoned)


@settings(max_examples=20, deadline=None)
@given(pack_plans)
def test_no_lost_requests_under_any_plan(plan):
    stats = _run(plan)
    assert stats.requests == len(_TRACE)
    assert stats.completed + stats.failed + stats.shed == stats.requests
    # Degradation is lossless: a dead ladder means cold load, never a
    # failed request.
    assert stats.failed == 0 and stats.shed == 0
    assert (stats.cold_starts + stats.pack_restores + stats.warm_hits
            >= stats.completed - stats.fast_forwarded)


@settings(max_examples=10, deadline=None)
@given(pack_plans)
def test_seed_determinism_of_fetch_sequence(plan):
    first, second = _run(plan), _run(plan)
    assert first.packs.as_dict() == second.packs.as_dict()
    assert (cluster_stats_to_payload(first)
            == cluster_stats_to_payload(second))


@settings(max_examples=25, deadline=None)
@given(pack_plans,
       st.lists(st.tuples(st.floats(0.0, 2.0), st.booleans()),
                min_size=1, max_size=8))
def test_store_ladder_is_a_pure_function_of_the_plan(plan, visits):
    pack = KernelPack(digest="d" * 32, size_bytes=1_000_000,
                      modules=(("m.hsaco", 1_000_000, 4),), constants=())

    def walk():
        store = PackStoreState(PackPolicy(), pack, plan.injector())
        results = [store.fetch(now, peer) for now, peer in visits]
        return results, store.counters
    first_results, first_counters = walk()
    second_results, second_counters = walk()
    assert first_results == second_results
    assert first_counters == second_counters
    assert first_counters.conserved
