#!/usr/bin/env python3
"""Regenerate ``tests/data/golden_trace.json``.

The golden Perfetto export of an instrumented tiny-ResNet cold start
(see ``tests/test_obs_perfetto.py``).  Rerun after an intentional
change to the exporter, the span model or the simulator's calibrated
timings::

    PYTHONPATH=src python tests/make_golden_trace.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from test_obs_perfetto import GOLDEN_PATH, _export_tiny  # noqa: E402


def main():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = _export_tiny(GOLDEN_PATH)
    print(f"wrote {GOLDEN_PATH}: {len(payload['traceEvents'])} events")


if __name__ == "__main__":
    sys.exit(main())
