"""Unit tests for the categorical and naive solution caches."""

import pytest

from repro.core.cache import (
    CacheStats,
    CategoricalSolutionCache,
    LoadedInstance,
    NaiveSolutionCache,
)
from repro.primitive import ConvProblem
from repro.primitive.solvers import all_miopen_solutions

_SOLUTIONS = {s.name: s for s in all_miopen_solutions()}

WINO33 = _SOLUTIONS["ConvBinWinogradFwd<3,3>"]
WINO55 = _SOLUTIONS["ConvBinWinogradFwd<5,5>"]
RXS = _SOLUTIONS["ConvBinWinogradRxSFwd"]
NAIVE_WINO = _SOLUTIONS["ConvWinogradNaiveFwd"]
DIRECT_NAIVE = _SOLUTIONS["ConvDirectNaiveFwd"]

P_3X3_A = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1))
P_3X3_B = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
P_5X5 = ConvProblem(1, 48, 28, 28, 64, (5, 5), pad=(2, 2))


def inst(solution, problem):
    return LoadedInstance(solution, problem)


class TestLoadedInstance:
    def test_key_is_code_object_name(self):
        instance = inst(WINO33, P_3X3_A)
        assert instance.key == WINO33.code_object_for(P_3X3_A).name

    def test_can_serve_same_bucket(self):
        assert inst(WINO33, P_3X3_A).can_serve(P_3X3_B)

    def test_cannot_serve_other_bucket(self):
        assert not inst(WINO33, P_3X3_A).can_serve(P_5X5)

    def test_bucket_solution_serves_across_buckets(self):
        assert inst(RXS, P_3X3_A).can_serve(P_5X5)


class TestCategoricalCache:
    def test_insert_and_len(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(WINO55, P_5X5))
        assert len(cache) == 2
        assert cache.stats.insertions == 2

    def test_duplicate_insert_ignored(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(WINO33, P_3X3_A))
        assert len(cache) == 1
        assert cache.stats.insertions == 1

    def test_contains(self):
        cache = CategoricalSolutionCache()
        entry = inst(WINO33, P_3X3_A)
        assert entry not in cache
        cache.insert(entry)
        assert entry in cache

    def test_hit_returns_applicable_same_pattern(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        result = cache.get_sub_solution(WINO33, P_3X3_B)
        assert result.hit
        assert result.instance.solution is WINO33
        assert result.lookups == 1

    def test_miss_returns_null_without_probing_other_patterns(self):
        """A failed same-pattern query must not inspect other lists."""
        cache = CategoricalSolutionCache()
        cache.insert(inst(DIRECT_NAIVE, P_3X3_A))   # DIRECT pattern
        cache.insert(inst(WINO33, P_3X3_A))         # WINOGRAD pattern
        result = cache.get_sub_solution(WINO55, P_5X5)  # WINOGRAD desired
        assert not result.hit
        assert result.lookups == 1  # only the winograd list was walked

    def test_empty_pattern_list_costs_zero_lookups(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(DIRECT_NAIVE, P_3X3_A))
        result = cache.get_sub_solution(WINO33, P_3X3_B)
        assert not result.hit
        assert result.lookups == 0
        assert result.check_cost_s == 0.0

    def test_mru_order_search(self):
        """The most recently inserted/used entry is checked first."""
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(RXS, P_3X3_B))   # now at list head
        result = cache.get_sub_solution(WINO33, P_3X3_B)
        assert result.instance.solution is RXS
        assert result.lookups == 1

    def test_hit_moves_entry_to_head(self):
        cache = CategoricalSolutionCache()
        first = inst(WINO33, P_3X3_A)
        second = inst(RXS, P_3X3_B)
        cache.insert(first)
        cache.insert(second)   # head: second, first
        # A 5x5 query can only be served by RxS... make wino hit instead:
        # query for 3x3: RxS at head hits; then query again and ensure the
        # reused entry stays at head (1 lookup again).
        cache.get_sub_solution(WINO33, P_3X3_B)
        result = cache.get_sub_solution(WINO33, P_3X3_B)
        assert result.lookups == 1
        assert cache.entries()[0].key == second.key

    def test_check_cost_accumulates_per_lookup(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO55, P_5X5))
        cache.insert(inst(WINO33, P_3X3_A))
        result = cache.get_sub_solution(WINO55, P_5X5)
        assert result.lookups >= 1
        assert result.check_cost_s >= result.lookups * 5e-6

    def test_extra_filter_rejects(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        result = cache.get_sub_solution(WINO33, P_3X3_B,
                                        extra_filter=lambda e: False)
        assert not result.hit
        assert result.lookups == 1

    def test_entries_by_pattern(self):
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(DIRECT_NAIVE, P_3X3_A))
        assert len(cache.entries(WINO33.pattern)) == 1
        assert len(cache.entries()) == 2


class TestNaiveCache:
    def test_walks_all_patterns_in_insertion_order(self):
        cache = NaiveSolutionCache()
        cache.insert(inst(DIRECT_NAIVE, P_3X3_A))
        cache.insert(inst(WINO33, P_3X3_A))
        result = cache.get_sub_solution(WINO33, P_3X3_B)
        assert result.hit
        # Checked the (inapplicable-for-winograd-desired?) direct entry
        # first: the naive cache has no categorical short cut.
        assert result.lookups == 1  # direct naive IS applicable to 3x3
        # For a 5x5 problem the direct entry hits first even though the
        # desired pattern was winograd -- naive ignores patterns entirely.
        result5 = cache.get_sub_solution(WINO55, P_5X5)
        assert result5.instance.solution is DIRECT_NAIVE

    def test_more_lookups_than_categorical_on_mixed_cache(self):
        categorical = CategoricalSolutionCache()
        naive = NaiveSolutionCache()
        entries = [inst(WINO55, P_5X5), inst(DIRECT_NAIVE, P_3X3_A),
                   inst(WINO33, P_3X3_A)]
        for e in entries:
            categorical.insert(e)
            naive.insert(e)
        # Desired winograd 3x3: categorical walks the winograd MRU list
        # (wino33 at head -> 1 lookup); naive walks insertion order.
        c = categorical.get_sub_solution(WINO33, P_3X3_B)
        n = naive.get_sub_solution(WINO33, P_3X3_B)
        assert c.hit and n.hit
        assert c.lookups < n.lookups

    def test_duplicate_insert_ignored(self):
        cache = NaiveSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(WINO33, P_3X3_A))
        assert len(cache) == 1

    def test_miss_scans_everything(self):
        cache = NaiveSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.insert(inst(WINO55, P_5X5))
        dilated = ConvProblem(1, 64, 28, 28, 64, (3, 3), pad=(2, 2),
                              dilation=(2, 2))
        result = cache.get_sub_solution(WINO33, dilated)
        assert not result.hit
        assert result.lookups == 2


class TestCacheStats:
    def test_hit_rate_and_lookups(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.lookups_per_query == 0.0
        cache = CategoricalSolutionCache()
        cache.insert(inst(WINO33, P_3X3_A))
        cache.get_sub_solution(WINO33, P_3X3_B)   # hit
        cache.get_sub_solution(WINO55, P_5X5)     # miss (1 lookup)
        assert cache.stats.queries == 2
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups_per_query == pytest.approx(1.0)
