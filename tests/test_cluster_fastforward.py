"""Analytic fast-forward: byte-identity with event-by-event stepping.

The fast path must be invisible in every result: latencies, queue
waits, cold/warm counters, fault dictionaries and trace records all
equal the slow path's bit-for-bit, on real serving traces and on
adversarial arrival sequences.  That now covers the full fault-free
dynamics — partial-warm pools (cold spawns fold into the heap as a
warm-up frontier), keep-alive reclaims, queueing at capacity — and
fault plans, where the replay fast-forwards *between* pre-sampled
``cluster.request`` fault sites and consumes the surviving draws in
bulk, so the fault sequence is identical draw-for-draw.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import (RequestTrace, burst_trace,
                                    periodic_trace, poisson_trace)
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

_SERVER = InferenceServer("MI100")


def _both(trace, **config_kwargs):
    slow = ClusterSimulator(_SERVER, ClusterConfig(
        fast_forward=False, **config_kwargs)).run(trace)
    fast = ClusterSimulator(_SERVER, ClusterConfig(
        fast_forward=True, **config_kwargs)).run(trace)
    return slow, fast


def _assert_identical(slow, fast):
    assert fast.latencies == slow.latencies
    assert fast.queue_waits == slow.queue_waits
    assert fast.cold_starts == slow.cold_starts
    assert fast.warm_hits == slow.warm_hits
    assert fast.failed == slow.failed
    assert fast.faults.as_dict() == slow.faults.as_dict()
    if slow.trace is not None:
        assert list(fast.trace.records) == list(slow.trace.records)


@pytest.mark.parametrize("crash", (None, 0.05),
                         ids=("no-faults", "crash0.05"))
@pytest.mark.parametrize("rate", (4.0, 40.0), ids=("partial-warm", "dense"))
@pytest.mark.parametrize("scheme", (Scheme.BASELINE, Scheme.PASK),
                         ids=lambda s: s.value)
@pytest.mark.parametrize("keep_alive", (0.05, 0.5))
@pytest.mark.parametrize("instances", (1, 2, 4))
def test_fast_forward_bit_identical_poisson(scheme, keep_alive, instances,
                                            rate, crash):
    plan = FaultPlan(seed=9, crash_rate=crash) if crash else None
    trace = poisson_trace("res", rate, 120.0 / rate, seed=7)
    slow, fast = _both(trace, scheme=scheme, max_instances=instances,
                       keep_alive_s=keep_alive, faults=plan,
                       trace_retention="full")
    _assert_identical(slow, fast)
    assert slow.fast_forwarded == 0
    assert fast.fast_forwarded > 0


def test_fast_forward_bit_identical_burst_and_periodic():
    for trace in (burst_trace("res", 60, 0.0005),
                  periodic_trace("res", 0.01, 80)):
        slow, fast = _both(trace, scheme=Scheme.PASK, max_instances=2,
                           keep_alive_s=0.2, trace_retention="full")
        _assert_identical(slow, fast)


def test_dense_traffic_mostly_fast_forwards():
    trace = poisson_trace("res", 200.0, 5.0, seed=1)
    _, fast = _both(trace, scheme=Scheme.PASK, max_instances=4,
                    keep_alive_s=0.5)
    assert fast.fast_forwarded > 0.9 * fast.requests


def test_sparse_traffic_fast_forwards_reclaims_and_spawns():
    # Mean gap (2 s) far beyond keep-alive: every request re-triggers a
    # reclaim + cold spawn.  Those transitions are analytic now, so the
    # whole trace rides the fast path — and still matches the slow path
    # exactly, cold starts included.
    trace = poisson_trace("res", 0.5, 40.0, seed=11)
    slow, fast = _both(trace, scheme=Scheme.BASELINE, max_instances=2,
                       keep_alive_s=0.1, trace_retention="full")
    _assert_identical(slow, fast)
    assert fast.cold_starts > 1
    assert fast.fast_forwarded == fast.requests


def test_fault_plan_fast_forwards_between_crash_sites():
    # Even at a heavy 20% crash rate the replay fast-forwards between
    # the pre-sampled fault sites; only the crashes themselves (and the
    # not-yet-rewarmed pool right after) step event-by-event.
    plan = FaultPlan(seed=5, crash_rate=0.2, restart_delay_s=0.05)
    trace = poisson_trace("res", 100.0, 2.0, seed=3)
    slow, fast = _both(trace, scheme=Scheme.PASK, max_instances=4,
                       keep_alive_s=0.5, faults=plan,
                       trace_retention="full")
    _assert_identical(slow, fast)
    assert fast.faults.crashes > 0
    assert 0 < fast.fast_forwarded < fast.requests


# ----------------------------------------------------------------------
# Transition boundaries: exact window edges, exact fault sites
# ----------------------------------------------------------------------

def _stub_both(arrivals, cold, warm, **config_kwargs):
    server = _StubServer(cold=cold, warm=warm)
    trace = RequestTrace("m", tuple(arrivals))
    slow = ClusterSimulator(server, ClusterConfig(
        fast_forward=False, trace_retention="full", **config_kwargs)
    ).run(trace)
    fast = ClusterSimulator(server, ClusterConfig(
        fast_forward=True, trace_retention="full", **config_kwargs)
    ).run(trace)
    return slow, fast


def test_reclaim_exactly_at_window_edge():
    # Exact binary floats: a1 idles the instance for *exactly*
    # keep_alive (kept, warm hit), a2 for keep_alive + 0.5 (reclaimed,
    # cold spawn).  The boundary comparison is `>` in both paths.
    slow, fast = _stub_both([0.0, 2.0, 4.0], cold=1.0, warm=0.5,
                            max_instances=2, keep_alive_s=1.0)
    _assert_identical(slow, fast)
    assert fast.cold_starts == 2
    assert fast.warm_hits == 1
    assert fast.fast_forwarded == 3


def _first_crash_index(seed, rate, horizon=10_000):
    injector = FaultPlan(seed=seed, crash_rate=rate).injector()
    return injector.preview_failures("cluster.request", rate, horizon)


def test_fault_site_on_first_arrival_of_window():
    # A seed whose very first cluster.request draw fails: the preview
    # window is empty and the first arrival steps (and crashes).
    rate = 0.3
    seed = next(s for s in range(1000)
                if _first_crash_index(s, rate) == 0)
    plan = FaultPlan(seed=seed, crash_rate=rate)
    trace = poisson_trace("res", 50.0, 2.0, seed=2)
    slow, fast = _both(trace, scheme=Scheme.PASK, max_instances=3,
                       keep_alive_s=0.5, faults=plan,
                       trace_retention="full")
    _assert_identical(slow, fast)
    assert fast.faults.crashes > 0


def test_fault_site_on_last_arrival_of_window():
    # A seed whose first failing draw is exactly the trace's last
    # arrival: the analytic window covers n-1 requests and the final
    # one steps through the crash path.
    rate = 0.05
    trace = poisson_trace("res", 50.0, 2.0, seed=4)
    n = len(trace)
    seed = next(s for s in range(5000)
                if _first_crash_index(s, rate) == n - 1)
    plan = FaultPlan(seed=seed, crash_rate=rate)
    slow, fast = _both(trace, scheme=Scheme.PASK, max_instances=3,
                       keep_alive_s=0.5, faults=plan,
                       trace_retention="full")
    _assert_identical(slow, fast)
    assert fast.faults.crashes > 0
    assert fast.fast_forwarded >= n - 1


def test_zero_rate_plan_with_injector_fast_forwards_everything():
    # A zero-rate plan still attaches an injector (and bills
    # completed_requests); it must consume no draws and leave the whole
    # trace on the fast path.
    plan = FaultPlan(seed=17, crash_rate=0.0)
    trace = poisson_trace("res", 30.0, 3.0, seed=6)
    slow, fast = _both(trace, scheme=Scheme.PASK, max_instances=2,
                       keep_alive_s=0.5, faults=plan,
                       trace_retention="full")
    _assert_identical(slow, fast)
    assert fast.fast_forwarded == fast.requests
    assert fast.faults.completed_requests == fast.requests
    assert fast.faults.crashes == 0


def test_trace_retention_none_by_default():
    trace = poisson_trace("res", 50.0, 1.0, seed=0)
    stats = ClusterSimulator(_SERVER, ClusterConfig(
        scheme=Scheme.PASK)).run(trace)
    assert stats.trace is None


def test_config_validates_knobs():
    with pytest.raises(ValueError):
        ClusterConfig(trace_retention="bogus")
    with pytest.raises(ValueError):
        ClusterConfig(trace_retention="aggregate", trace_ring=0)


# ----------------------------------------------------------------------
# Property: equivalence on adversarial arrival sequences
# ----------------------------------------------------------------------

class _StubServer:
    """Constant service times; lets hypothesis vary the cold/warm gap."""

    def __init__(self, cold, warm):
        self._cold = cold
        self._warm = warm

    def serve_cold(self, model, scheme, batch):
        return SimpleNamespace(total_time=self._cold)

    def serve_hot(self, model, batch):
        return SimpleNamespace(total_time=self._warm)


arrival_lists = st.lists(
    st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60).map(sorted)


@settings(max_examples=60, deadline=None)
@given(arrivals=arrival_lists,
       warm=st.floats(0.001, 0.5, allow_nan=False),
       cold_factor=st.floats(1.0, 20.0, allow_nan=False),
       keep_alive=st.floats(0.0, 2.0, allow_nan=False),
       instances=st.integers(1, 5))
def test_fast_forward_equivalence_property(arrivals, warm, cold_factor,
                                           keep_alive, instances):
    trace = RequestTrace("m", tuple(arrivals))
    server = _StubServer(cold=warm * cold_factor, warm=warm)
    slow = ClusterSimulator(server, ClusterConfig(
        fast_forward=False, max_instances=instances,
        keep_alive_s=keep_alive, trace_retention="full")).run(trace)
    fast = ClusterSimulator(server, ClusterConfig(
        fast_forward=True, max_instances=instances,
        keep_alive_s=keep_alive, trace_retention="full")).run(trace)
    _assert_identical(slow, fast)
    assert fast.requests == len(trace)
    # The generalized fast path covers the entire fault-free dynamics.
    assert fast.fast_forwarded == len(trace)


@settings(max_examples=60, deadline=None)
@given(arrivals=arrival_lists,
       warm=st.floats(0.001, 0.5, allow_nan=False),
       cold_factor=st.floats(1.0, 20.0, allow_nan=False),
       keep_alive=st.floats(0.0, 2.0, allow_nan=False),
       instances=st.integers(1, 5),
       seed=st.integers(0, 99),
       crash=st.floats(0.0, 0.6, allow_nan=False))
def test_fast_forward_fault_equivalence_property(arrivals, warm,
                                                 cold_factor, keep_alive,
                                                 instances, seed, crash):
    plan = FaultPlan(seed=seed, crash_rate=crash)
    trace = RequestTrace("m", tuple(arrivals))
    server = _StubServer(cold=warm * cold_factor, warm=warm)
    slow = ClusterSimulator(server, ClusterConfig(
        fast_forward=False, max_instances=instances,
        keep_alive_s=keep_alive, faults=plan,
        trace_retention="full")).run(trace)
    fast = ClusterSimulator(server, ClusterConfig(
        fast_forward=True, max_instances=instances,
        keep_alive_s=keep_alive, faults=plan,
        trace_retention="full")).run(trace)
    _assert_identical(slow, fast)
    assert fast.requests == len(trace)
