"""Unit tests for lowering, programs, serialization and the registry."""

import pytest

from repro.engine import (
    InstrKind,
    LoweringOptions,
    ModelRegistry,
    deserialize_program,
    lower,
    serialize_program,
)
from repro.gpu import MI100
from repro.graph import GraphBuilder
from repro.primitive import ConvProblem, MIOpenLibrary


@pytest.fixture(scope="module")
def library():
    return MIOpenLibrary(MI100)


def small_cnn():
    b = GraphBuilder("small_cnn")
    x = b.input("x", (1, 3, 32, 32))
    y = b.conv(x, 16, 3, pad=1, name="c1")
    y = b.relu(y, name="r1")
    y = b.maxpool(y, 2, name="p1")
    y = b.conv(y, 32, 3, pad=1, name="c2")
    y = b.batchnorm(y, name="bn2")
    y = b.relu(y, name="r2")
    y = b.global_avgpool(y, name="gap")
    y = b.flatten(y, name="fl")
    y = b.gemm(y, out_features=10, name="fc")
    y = b.softmax(y, name="sm")
    b.output(y)
    return b.finish()


def transformer_block():
    b = GraphBuilder("tiny_vit")
    x = b.input("x", (1, 3, 224, 224))
    y = b.conv(x, 192, 16, stride=16, name="patch_embed")
    y = b.reshape(y, (1, 192, 196), name="rs1")
    y = b.transpose(y, (0, 2, 1), name="tp1")
    y = b.layernorm(y, name="ln1")
    qk = b.matmul(y, b.transpose(y, (0, 2, 1), name="tp2"), name="attn_qk")
    attn = b.softmax(qk, name="attn_sm")
    y = b.matmul(attn, y, name="attn_v")
    y = b.gelu(y, name="mlp_gelu")
    b.output(y)
    return b.finish()


class TestLowering:
    def test_convs_become_miopen_instructions(self, library):
        program = lower(small_cnn(), library)
        prims = program.primitive_instructions
        assert all(i.solution_name for i in prims)
        conv_instrs = [i for i in prims
                       if isinstance(i.problem, ConvProblem)]
        assert len(conv_instrs) == 2

    def test_fusion_removes_standalone_relus(self, library):
        program = lower(small_cnn(), library)
        names = [i.name for i in program.instructions]
        assert "r1" not in names   # fused into c1
        assert "r2" not in names   # fused into c2 (with bn2)
        assert "bn2" not in names

    def test_gemm_becomes_blas(self, library):
        program = lower(small_cnn(), library)
        blas = program.of_kind(InstrKind.BLAS_GEMM)
        assert [i.name for i in blas] == ["fc"]
        assert blas[0].problem.n == 10

    def test_softmax_becomes_engine_kernel(self, library):
        program = lower(small_cnn(), library)
        engine = program.of_kind(InstrKind.ENGINE_KERNEL)
        assert any(i.engine_kernel.op == "Softmax" for i in engine)

    def test_flatten_is_noop(self, library):
        program = lower(small_cnn(), library)
        noops = program.of_kind(InstrKind.NOOP)
        assert any(i.name == "fl" for i in noops)

    def test_batch_scales_problems(self, library):
        p1 = lower(small_cnn(), library, LoweringOptions(batch=1))
        p8 = lower(small_cnn(), library, LoweringOptions(batch=8))
        conv1 = p1.primitive_instructions[0].problem
        conv8 = p8.primitive_instructions[0].problem
        assert conv8.batch == 8 * conv1.batch
        gemm1 = p1.of_kind(InstrKind.BLAS_GEMM)[0].problem
        gemm8 = p8.of_kind(InstrKind.BLAS_GEMM)[0].problem
        assert gemm8.m == 8 * gemm1.m

    def test_native_layout_only_changes_solutions(self, library):
        default = lower(small_cnn(), library)
        native = lower(small_cnn(), library,
                       LoweringOptions(native_layout_only=True))
        for instr in native.primitive_instructions:
            solution = library.solution_by_name(instr.solution_name)
            assert not solution.needs_layout_transform(instr.problem)
        # The default policy picks at least one cast-needing solution here.
        assert any(
            library.solution_by_name(i.solution_name)
            .needs_layout_transform(i.problem)
            for i in default.primitive_instructions)

    def test_transformer_lowering(self, library):
        program = lower(transformer_block(), library)
        stats = program.stats()
        assert stats["per_kind"]["miopen"] == 1          # patch embed conv
        assert stats["per_kind"]["blas"] == 2            # two matmuls
        assert stats["distinct_conv_problems"] == 1
        gelu = [i for i in program.of_kind(InstrKind.ENGINE_KERNEL)
                if i.engine_kernel.op == "Gelu"]
        assert gelu, "Gelu must lower to an engine kernel, not MIOpen"

    def test_matmul_batch_dims(self, library):
        program = lower(transformer_block(), library)
        matmuls = [i.problem for i in program.of_kind(InstrKind.BLAS_GEMM)]
        assert all(p.batch == 1 for p in matmuls)
        assert {p.m for p in matmuls} == {196}

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            LoweringOptions(batch=0)


class TestProgram:
    def test_index_consistency_enforced(self, library):
        program = lower(small_cnn(), library)
        from repro.engine import Program
        with pytest.raises(ValueError):
            Program("bad", tuple(reversed(program.instructions)))

    def test_stats(self, library):
        program = lower(small_cnn(), library)
        stats = program.stats()
        assert stats["instructions"] == len(program)
        assert sum(stats["per_kind"].values()) == len(program)

    def test_total_parse_cost_positive(self, library):
        program = lower(small_cnn(), library)
        assert program.total_parse_cost_s > 0


class TestSerialization:
    def test_round_trip_identity(self, library):
        program = lower(small_cnn(), library)
        restored = deserialize_program(serialize_program(program))
        assert restored.name == program.name
        assert len(restored) == len(program)
        for a, b in zip(program, restored):
            assert a == b

    def test_round_trip_transformer(self, library):
        program = lower(transformer_block(), library, LoweringOptions(batch=4))
        restored = deserialize_program(serialize_program(program))
        assert restored.batch == 4
        assert restored.instructions == program.instructions

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            deserialize_program('{"format": "mystery"}')


class TestRegistry:
    def test_compile_register_load(self, library):
        registry = ModelRegistry(library)
        key = registry.compile_and_register(small_cnn())
        assert key == "small_cnn"
        assert key in registry
        program = registry.load(key)
        assert program.name == "small_cnn"

    def test_load_unknown_raises_with_known_keys(self, library):
        registry = ModelRegistry(library)
        registry.compile_and_register(small_cnn())
        with pytest.raises(KeyError, match="small_cnn"):
            registry.load("missing")

    def test_register_prelowered(self, library):
        registry = ModelRegistry(library)
        program = lower(small_cnn(), library, LoweringOptions(batch=16))
        registry.register(program, key="small_cnn@16")
        assert registry.load("small_cnn@16").batch == 16
        assert registry.keys() == ["small_cnn@16"]
