"""Property-based tests on the optimization passes.

Invariants: passes preserve graph validity and output shapes, and the
whole pipeline is idempotent (a second application changes nothing).
"""

from hypothesis import given, settings, strategies as st

from repro.engine.passes import run_passes
from repro.graph import GraphBuilder

_ACTIVATIONS = ["Relu", "Sigmoid", "Silu", "Gelu"]


@st.composite
def random_cnn(draw):
    """A random small CNN with optional BN/activation/identity noise and
    occasionally dead branches."""
    b = GraphBuilder("rand")
    x = b.input("x", (1, 4, 16, 16))
    depth = draw(st.integers(1, 5))
    for i in range(depth):
        channels = draw(st.sampled_from([4, 8, 16]))
        x = b.conv(x, channels, 3, pad=1, name=f"conv{i}")
        if draw(st.booleans()):
            x = b.batchnorm(x, name=f"bn{i}")
        if draw(st.booleans()):
            kind = draw(st.sampled_from(_ACTIVATIONS))
            x = b.activation(x, kind, name=f"act{i}")
        if draw(st.booleans()):
            x = b.identity(x, name=f"id{i}")
        if draw(st.booleans()):
            # Dead branch: computed but never used.
            b.relu(b.conv(x, 4, 1, name=f"dead{i}"), name=f"deadr{i}")
    b.output(x)
    return b.finish()


@given(random_cnn())
@settings(max_examples=40, deadline=None)
def test_passes_preserve_validity_and_output_shape(graph):
    before = graph.desc(graph.outputs[0])
    optimized = run_passes(graph)
    optimized.validate()
    assert optimized.outputs == graph.outputs
    assert optimized.desc(optimized.outputs[0]) == before


@given(random_cnn())
@settings(max_examples=40, deadline=None)
def test_pipeline_idempotent(graph):
    once = run_passes(graph)
    twice = run_passes(once)
    assert [n.name for n in twice] == [n.name for n in once]
    assert [n.op for n in twice] == [n.op for n in once]
    for a, b in zip(once, twice):
        assert a.attrs == b.attrs
        assert a.inputs == b.inputs


@given(random_cnn())
@settings(max_examples=40, deadline=None)
def test_passes_never_grow_the_graph(graph):
    optimized = run_passes(graph)
    assert len(optimized) <= len(graph)


@given(random_cnn())
@settings(max_examples=40, deadline=None)
def test_dead_branches_removed(graph):
    optimized = run_passes(graph)
    for node in optimized:
        # Every node must reach an output.
        reaches = any(out in optimized.outputs for out in node.outputs) or \
            any(node.outputs[0] in consumer.inputs
                for consumer in optimized.nodes)
        assert reaches, node
