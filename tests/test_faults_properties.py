"""Property tests (hypothesis) for the fault-injection subsystem.

The two paper-shape invariants locked in here:

* **No lost requests** -- under any seeded :class:`FaultPlan`, every
  request either completes or is explicitly failed; nothing is silently
  dropped and no simulation process is left parked.
* **Seed determinism** -- two runs from equal plans produce identical
  traces and identical counters, which is what makes chaos runs
  reproducible and bisectable.
"""

from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.resilience import ResiliencePolicy
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

_SERVER = InferenceServer()
_TRACE = poisson_trace("alex", rate_hz=25.0, duration_s=2.0, seed=11)


fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**32 - 1),
    load_failure_rate=st.floats(0.0, 0.5),
    max_load_attempts=st.integers(1, 4),
    launch_failure_rate=st.floats(0.0, 0.3),
    max_launch_attempts=st.integers(1, 3),
    exec_stall_rate=st.floats(0.0, 0.5),
    exec_stall_s=st.floats(0.0, 2e-3),
    loader_stall_rate=st.floats(0.0, 0.5),
    loader_stall_s=st.floats(0.0, 3e-3),
    load_timeout_s=st.one_of(st.none(), st.floats(1e-4, 2e-3)),
    crash_rate=st.floats(0.0, 0.6),
    restart_delay_s=st.floats(0.0, 0.1),
    max_reroutes=st.integers(0, 3),
    checkpoint_corruption_rate=st.floats(0.0, 0.5),
    restore_failure_rate=st.floats(0.0, 0.5),
)

resilience_policies = st.builds(
    ResiliencePolicy,
    checkpoint_interval_s=st.one_of(st.none(), st.floats(0.05, 1.0)),
    checkpoint_write_s=st.floats(0.0, 5e-3),
    checkpoint_retention=st.integers(1, 4),
    restore_overhead_s=st.floats(0.0, 5e-3),
    restore_speedup=st.floats(1.0, 16.0),
    restart_backoff=st.floats(1.0, 3.0),
    max_restart_delay_s=st.floats(0.0, 0.5),
    breaker_threshold=st.one_of(st.none(), st.integers(1, 5)),
    breaker_window_s=st.floats(0.1, 5.0),
    breaker_cooldown_s=st.floats(0.0, 1.0),
    breaker_backoff=st.floats(1.0, 3.0),
    breaker_max_cooldown_s=st.floats(0.0, 2.0),
    max_queue_depth=st.one_of(st.none(), st.integers(0, 8)),
    shed_wait_s=st.one_of(st.none(), st.floats(0.0, 0.05)),
    degrade_wait_s=st.one_of(st.none(), st.floats(0.0, 0.05)),
    recycle_after_requests=st.one_of(st.none(), st.integers(1, 50)),
    drain_restart_s=st.floats(0.0, 0.05),
)


def _counter_dict(counters):
    return counters.as_dict()


@settings(max_examples=20, deadline=None)
@given(fault_plans)
def test_cluster_never_loses_a_request(plan):
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan)
    stats = ClusterSimulator(_SERVER, config).run(_TRACE)
    assert stats.completed + stats.failed == len(_TRACE)
    assert 0.0 <= stats.availability <= 1.0
    assert all(v >= 0 for v in _counter_dict(stats.faults).values())
    assert all(latency >= 0 for latency in stats.latencies)


@settings(max_examples=10, deadline=None)
@given(fault_plans)
def test_cluster_same_seed_identical_replay(plan):
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan)
    first = ClusterSimulator(_SERVER, config).run(_TRACE)
    second = ClusterSimulator(_SERVER, config).run(_TRACE)
    assert first.latencies == second.latencies
    assert first.queue_waits == second.queue_waits
    assert first.failed == second.failed
    assert first.cold_starts == second.cold_starts
    assert _counter_dict(first.faults) == _counter_dict(second.faults)


@settings(max_examples=10, deadline=None)
@given(fault_plans)
def test_serve_cold_always_returns_explicit_outcome(plan):
    # serve_cold never raises a fault out of the simulator: it returns a
    # completed result or one with failed=True and an error recorded.
    result = _SERVER.serve_cold("alex", Scheme.PASK, faults=plan)
    if result.failed:
        assert "error" in result.metadata
        assert result.faults.failed_requests == 1
        assert result.faults.completed_requests == 0
    else:
        assert result.total_time > 0
        assert result.faults.completed_requests == 1
        assert result.faults.failed_requests == 0
    counters = _counter_dict(result.faults)
    assert all(v >= 0 for v in counters.values())
    # Retries never exceed faults: every retry answers a recorded fault.
    assert result.faults.load_retries <= result.faults.load_faults
    assert result.faults.launch_retries <= result.faults.launch_faults


@settings(max_examples=10, deadline=None)
@given(fault_plans)
def test_serve_cold_same_seed_identical_trace(plan):
    first = _SERVER.serve_cold("alex", Scheme.PASK, faults=plan)
    second = _SERVER.serve_cold("alex", Scheme.PASK, faults=plan)
    assert first.failed == second.failed
    assert first.total_time == second.total_time
    assert first.trace.records == second.trace.records
    assert _counter_dict(first.faults) == _counter_dict(second.faults)


@settings(max_examples=15, deadline=None)
@given(fault_plans, resilience_policies)
def test_resilient_cluster_accounts_for_every_request(plan, policy):
    # Resilience extends the outcome set with "shed", and the invariant
    # extends with it: completed + failed + shed == offered, under ANY
    # plan/policy combination hypothesis can construct.
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan, resilience=policy)
    stats = ClusterSimulator(_SERVER, config).run(_TRACE)
    assert stats.completed + stats.failed + stats.shed == len(_TRACE)
    assert stats.shed == stats.faults.shed_requests
    assert 0.0 <= stats.availability <= 1.0
    assert all(v >= 0 for v in _counter_dict(stats.faults).values())
    assert all(latency >= 0 for latency in stats.latencies)
    # Restores only happen in response to crashes or drains.
    counters = stats.faults
    assert counters.warm_restores <= counters.crashes + counters.drains


@settings(max_examples=10, deadline=None)
@given(fault_plans, resilience_policies)
def test_resilient_cluster_same_seed_identical_replay(plan, policy):
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=3,
                           keep_alive_s=0.5, faults=plan, resilience=policy)
    first = ClusterSimulator(_SERVER, config).run(_TRACE)
    second = ClusterSimulator(_SERVER, config).run(_TRACE)
    assert first.latencies == second.latencies
    assert first.queue_waits == second.queue_waits
    assert first.failed == second.failed
    assert first.shed == second.shed
    assert first.cold_starts == second.cold_starts
    assert _counter_dict(first.faults) == _counter_dict(second.faults)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_zero_rates_ignore_seed(seed):
    # An all-zero plan is inert no matter the seed: byte-identical to
    # serving with no plan at all.
    clean = _SERVER.serve_cold("alex", Scheme.PASK)
    zero = _SERVER.serve_cold("alex", Scheme.PASK, faults=FaultPlan(seed=seed))
    assert zero.total_time == clean.total_time
    assert zero.trace.records == clean.trace.records
    assert zero.faults.retries == 0
    assert zero.faults.fallbacks == 0
