"""Unit tests for the kernel-pack subsystem (:mod:`repro.packs`).

Covers the content address (deterministic, content-sensitive), the
fetch-hierarchy ladder (tier order, timeout/corrupt/backoff paths,
registry-outage failover), the byte-accounting ledger, and the wiring
into the cluster replay.
"""

import pytest

from repro.core.schemes import Scheme
from repro.packs import (KernelPack, PackFetchResult, PackPolicy,
                         PackStoreState, PackTransferCounters,
                         RegistryFabric, TierPolicy, pack_digest, pack_for)
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

MODULES = (("a.hsaco", 1000, 3), ("b.hsaco", 2000, 5))
CONSTANTS = (("code_load_base_s", 0.001), ("mem_protect_s", 0.0002))


def make_pack(size=1_000_000):
    return KernelPack(digest="d" * 32, size_bytes=size,
                      modules=MODULES, constants=CONSTANTS)


def make_store(policy=None, plan=None, **kwargs):
    injector = plan.injector() if plan is not None else None
    return PackStoreState(policy or PackPolicy(), make_pack(), injector,
                          **kwargs)


class TestContentAddress:
    def test_digest_deterministic(self):
        assert (pack_digest(MODULES, CONSTANTS)
                == pack_digest(MODULES, CONSTANTS))

    def test_digest_sensitive_to_module_content(self):
        base = pack_digest(MODULES, CONSTANTS)
        renamed = ((("c.hsaco", 1000, 3),) + MODULES[1:])
        resized = (((MODULES[0][0], 1001, 3),) + MODULES[1:])
        assert pack_digest(renamed, CONSTANTS) != base
        assert pack_digest(resized, CONSTANTS) != base

    def test_digest_sensitive_to_calibration(self):
        base = pack_digest(MODULES, CONSTANTS)
        recal = ((CONSTANTS[0][0], 0.0011),) + CONSTANTS[1:]
        assert pack_digest(MODULES, recal) != base

    def test_pack_for_is_memoized_and_content_addressed(self):
        server = InferenceServer()
        first = pack_for(server, "res", Scheme.PASK)
        again = pack_for(server, "res", Scheme.PASK)
        assert first is again
        other = pack_for(InferenceServer(), "res", Scheme.PASK)
        assert other.digest == first.digest
        baseline = pack_for(server, "res", Scheme.BASELINE)
        assert baseline.digest != first.digest

    def test_pask_pack_is_smaller_than_baseline(self):
        # Selective loading is the point of the paper: the PASK pack
        # carries fewer modules and fewer bytes than the baseline one.
        server = InferenceServer()
        pask = pack_for(server, "res", Scheme.PASK)
        baseline = pack_for(server, "res", Scheme.BASELINE)
        assert len(pask) < len(baseline)
        assert pask.size_bytes < baseline.size_bytes

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            KernelPack(digest="", size_bytes=1, modules=(), constants=())
        with pytest.raises(ValueError):
            KernelPack(digest="d", size_bytes=-1, modules=(),
                       constants=())


class TestPolicies:
    def test_tier_policy_validation(self):
        with pytest.raises(ValueError):
            TierPolicy(bandwidth_bps=0, latency_s=0, timeout_s=1)
        with pytest.raises(ValueError):
            TierPolicy(bandwidth_bps=1e9, latency_s=-1, timeout_s=1)
        with pytest.raises(ValueError):
            TierPolicy(bandwidth_bps=1e9, latency_s=0, timeout_s=1,
                       max_attempts=0)

    def test_pack_policy_tier_lookup(self):
        policy = PackPolicy()
        assert policy.tier("local") is policy.local
        with pytest.raises(ValueError):
            policy.tier("cdn")

    def test_failover_origin_is_penalized_single_attempt(self):
        policy = PackPolicy()
        failover = policy.failover_origin()
        penalty = policy.cross_region_penalty
        assert failover.bandwidth_bps == policy.origin.bandwidth_bps / penalty
        assert failover.latency_s == policy.origin.latency_s * penalty
        assert failover.max_attempts == 1


class TestLadder:
    def test_first_fetch_goes_to_origin_and_populates_local(self):
        store = make_store()
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "origin" and result.hit
        assert store.local_cached
        policy = PackPolicy()
        size = store.pack.size_bytes
        expected = (policy.origin.latency_s
                    + size / policy.origin.bandwidth_bps
                    + size / policy.verify_bps)
        assert result.elapsed_s == pytest.approx(expected)
        again = store.fetch(1.0, peer_available=False)
        assert again.tier == "local"
        assert store.counters.origin_hits == 1
        assert store.counters.local_hits == 1
        assert store.counters.conserved

    def test_peer_preferred_over_origin(self):
        store = make_store()
        result = store.fetch(0.0, peer_available=True)
        assert result.tier == "peer"
        assert store.local_cached

    def test_timeout_abandons_partial_bytes_once(self):
        # A 1 MB pack over 1 MB/s with a 0.1 s ceiling can never finish:
        # the timeout is deterministic, so the tier is skipped after one
        # attempt and only the partial window's bytes are abandoned.
        slow = TierPolicy(bandwidth_bps=1e6, latency_s=0.0,
                          timeout_s=0.1, max_attempts=3)
        policy = PackPolicy(local=slow, peer=slow, origin=slow)
        store = make_store(policy=policy)
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "cold"
        counters = store.counters
        assert counters.origin_timeouts == 1
        assert counters.retries == 0
        assert counters.bytes_abandoned == int(1e6 * 0.1)
        assert counters.conserved

    def test_corruption_discards_and_retries(self):
        plan = FaultPlan(seed=0, pack_corruption_rate=1.0)
        store = make_store(plan=plan)
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "cold"
        counters = store.counters
        assert counters.origin_corrupt == PackPolicy().origin.max_attempts
        assert counters.retries == PackPolicy().origin.max_attempts - 1
        assert counters.bytes_discarded == counters.bytes_fetched
        assert counters.degraded_cold == 1
        assert counters.conserved

    def test_registry_outage_forces_origin_faults_without_draws(self):
        plan = FaultPlan(seed=0, registry_outage_windows=((0.0, 10.0),))
        store = make_store(plan=plan)
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "cold"
        assert store.counters.origin_faults == PackPolicy().origin.max_attempts
        assert store.counters.origin_bytes == 0
        # Forced window failures consume no seeded draws: a fresh
        # injector replays the identical sequence.
        assert not store.injector._draws

    def test_peer_churn_window_darkens_peer_tier(self):
        plan = FaultPlan(seed=0, peer_churn_windows=((0.0, 10.0),))
        store = make_store(plan=plan)
        result = store.fetch(0.0, peer_available=True)
        assert result.tier == "origin"
        assert store.counters.peer_faults == PackPolicy().peer.max_attempts

    def test_failover_reaches_lit_remote_registry(self):
        plan = FaultPlan(seed=0, registry_outage_windows=((0.0, 10.0),))
        fabric = RegistryFabric([((0.0, 10.0),), ()])
        store = make_store(plan=plan, region_index=0, fabric=fabric)
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "failover"
        assert store.counters.failover_hits == 1
        assert store.local_cached
        assert store.counters.conserved

    def test_no_failover_when_every_registry_dark(self):
        plan = FaultPlan(seed=0, registry_outage_windows=((0.0, 10.0),))
        fabric = RegistryFabric([((0.0, 10.0),), ((0.0, 10.0),)])
        store = make_store(plan=plan, region_index=0, fabric=fabric)
        result = store.fetch(0.0, peer_available=False)
        assert result.tier == "cold"
        assert store.counters.failover_hits == 0
        assert store.counters.degraded_cold == 1

    def test_counters_merge_and_round_trip(self):
        a = PackTransferCounters(local_hits=1, local_bytes=10,
                                 bytes_verified=10)
        b = PackTransferCounters(origin_hits=2, origin_bytes=20,
                                 bytes_verified=20)
        a.merge(b)
        assert a.pack_restores == 3
        assert a.bytes_fetched == 30
        assert a.conserved
        assert PackTransferCounters(**a.as_dict()) == a

    def test_fetch_result_hit_property(self):
        assert PackFetchResult("origin", 0.1).hit
        assert not PackFetchResult("cold", 0.1).hit


class TestClusterWiring:
    def test_packs_rejects_active_resilience(self):
        with pytest.raises(ValueError):
            ClusterConfig(scheme=Scheme.PASK, packs=PackPolicy(),
                          resilience=ResiliencePolicy(
                              checkpoint_interval_s=0.25))

    def test_pack_restores_replace_cold_starts(self):
        server = InferenceServer()
        trace = poisson_trace("res", 25.0, 4.0, seed=3)
        config = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                               keep_alive_s=0.05)
        baseline = ClusterSimulator(server, config).run(trace)
        packed = ClusterSimulator(
            server, ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                                  keep_alive_s=0.05,
                                  packs=PackPolicy())).run(trace)
        assert baseline.cold_starts > 0
        assert packed.cold_starts == 0
        assert packed.pack_restores > 0
        assert packed.packs is not None
        assert packed.packs.conserved
        assert packed.requests == baseline.requests
        # Every tier is cheaper than the cold load it replaces.
        assert packed.percentile(0.99) < baseline.percentile(0.99)
