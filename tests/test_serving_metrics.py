"""Shared statistics helpers and trace-recorder edge-case pins.

Covers the satellite work of the telemetry PR: the deterministic
nearest-rank ``percentile`` / ``histogram_summary`` now shared by the
cluster stats and the metrics registry, and the zero-total-time
guards on ``TraceRecorder``.
"""

import pytest

from repro.serving.cluster import ClusterStats
from repro.serving.metrics import histogram_summary, percentile
from repro.sim.trace import Phase, TraceRecorder


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_single_sample_returns_it_for_every_q(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert percentile([7.25], q) == 7.25

    def test_nearest_rank_no_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # ceil(0.5 * 4) = 2 -> second element, never 2.5.
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.51) == 3.0

    def test_result_is_always_an_input_element(self):
        values = [0.125, 0.375, 0.625]
        for q in (0.1, 0.33, 0.66, 0.9):
            assert percentile(values, q) in values

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ValueError, match="out of range"):
            percentile([1.0], q)


class TestHistogramSummary:
    def test_summary_keys_and_values(self):
        summary = histogram_summary([4.0, 1.0, 3.0, 2.0])
        assert summary["count"] == 4.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.0
        assert summary["p90"] == 4.0
        assert summary["p99"] == 4.0

    def test_custom_quantiles(self):
        summary = histogram_summary([1.0, 2.0], quantiles=(0.25,))
        assert summary["p25"] == 1.0
        assert "p50" not in summary

    def test_single_sample(self):
        summary = histogram_summary([2.5])
        assert summary["min"] == summary["max"] == summary["p50"] == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            histogram_summary([])

    def test_matches_percentile_helper(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        summary = histogram_summary(values)
        for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
            assert summary[key] == percentile(values, q)


class TestClusterStatsPercentileDelegation:
    def stats(self, latencies):
        return ClusterStats(latencies=latencies)

    def test_delegates_to_nearest_rank(self):
        stats = self.stats([3.0, 1.0, 2.0])
        assert stats.percentile(0.5) == percentile([1.0, 2.0, 3.0], 0.5)

    def test_empty_latencies_return_zero(self):
        # Legacy contract: cluster stats report 0.0 with no samples
        # instead of raising like the bare helper.
        assert self.stats([]).percentile(0.99) == 0.0

    def test_out_of_range_q_still_raises_on_empty(self):
        with pytest.raises(ValueError):
            self.stats([]).percentile(1.5)


class TestTraceRecorderZeroTotalTime:
    def empty_recorder(self):
        return TraceRecorder()

    def point_recorder(self):
        # One zero-duration record: span exists but total_time == 0.
        trace = TraceRecorder()
        trace.record(1.0, 1.0, "gpu", Phase.EXEC, "instant")
        return trace

    @pytest.fixture(params=["empty", "point"])
    def recorder(self, request):
        return (self.empty_recorder() if request.param == "empty"
                else self.point_recorder())

    def test_utilization_returns_zero(self, recorder):
        assert recorder.utilization() == 0.0

    def test_breakdown_returns_zeros(self, recorder):
        out = recorder.breakdown((Phase.EXEC, Phase.LOAD))
        assert out == {Phase.EXEC: 0.0, Phase.LOAD: 0.0}

    def test_exclusive_fractions_return_zeros(self, recorder):
        out = recorder.exclusive_fractions((Phase.EXEC, Phase.LOAD))
        assert out == {Phase.EXEC: 0.0, Phase.LOAD: 0.0}

    def test_explicit_zero_total_time(self):
        trace = TraceRecorder()
        trace.record(0.0, 2.0, "gpu", Phase.EXEC, "k")
        assert trace.utilization(total_time=0.0) == 0.0
        assert trace.breakdown((Phase.EXEC,), total_time=0.0) == {
            Phase.EXEC: 0.0}
