"""Unit tests for the graph container and builder."""

import pytest

from repro.graph import Graph, GraphBuilder, GraphError, Node
from repro.tensors import DataType, TensorDesc


def simple_graph():
    b = GraphBuilder("toy")
    x = b.input("x", (1, 3, 32, 32))
    y = b.conv(x, out_channels=8, kernel=3, pad=1, name="c1")
    y = b.relu(y, name="r1")
    b.output(y)
    return b.finish()


class TestGraph:
    def test_build_and_validate(self):
        g = simple_graph()
        assert len(g) == 2
        assert g.inputs == ["x"]
        assert len(g.outputs) == 1
        g.validate()

    def test_shapes_inferred_on_insert(self):
        g = simple_graph()
        assert g.desc("c1_out").dims == (1, 8, 32, 32)
        assert g.desc("r1_out").dims == (1, 8, 32, 32)

    def test_conv_declares_weight_initializer(self):
        g = simple_graph()
        assert "c1_w" in g.initializers
        assert g.desc("c1_w").dims == (8, 3, 3, 3)

    def test_producer_and_consumers(self):
        g = simple_graph()
        assert g.producer("c1_out").name == "c1"
        assert g.producer("x") is None
        assert [n.name for n in g.consumers("c1_out")] == ["r1"]

    def test_node_lookup(self):
        g = simple_graph()
        assert g.node("c1").op == "Conv"
        with pytest.raises(KeyError):
            g.node("missing")

    def test_undefined_input_rejected(self):
        g = Graph()
        with pytest.raises(GraphError, match="undefined tensors"):
            g.add_node(Node("n", "Relu", ("ghost",), ("out",)))

    def test_duplicate_node_name_rejected(self):
        g = Graph()
        g.add_input("x", TensorDesc((1, 2)))
        g.add_node(Node("n", "Relu", ("x",), ("a",)))
        with pytest.raises(GraphError, match="duplicate node"):
            g.add_node(Node("n", "Relu", ("a",), ("b",)))

    def test_duplicate_tensor_rejected(self):
        g = Graph()
        g.add_input("x", TensorDesc((1, 2)))
        with pytest.raises(GraphError, match="declared twice"):
            g.add_input("x", TensorDesc((1, 2)))

    def test_mark_unknown_output_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.mark_output("nope")

    def test_validate_requires_outputs(self):
        g = Graph()
        g.add_input("x", TensorDesc((1,)))
        with pytest.raises(GraphError, match="no outputs"):
            g.validate()

    def test_rebuild_preserves_structure(self):
        g = simple_graph()
        g2 = g.rebuild(g.nodes)
        assert len(g2) == len(g)
        assert g2.outputs == g.outputs
        assert g2.desc("c1_out") == g.desc("c1_out")

    def test_rebuild_rejects_broken_nodes(self):
        g = simple_graph()
        with pytest.raises(GraphError):
            g.rebuild(g.nodes[1:])  # drops the conv producing r1's input

    def test_stats(self):
        g = simple_graph()
        stats = g.stats()
        assert stats["nodes"] == 2
        assert stats["per_op"] == {"Conv": 1, "Relu": 1}


class TestBuilder:
    def test_residual_block(self):
        b = GraphBuilder()
        x = b.input("x", (1, 64, 56, 56))
        y = b.conv(x, 64, 3, pad=1)
        y = b.batchnorm(y)
        y = b.relu(y)
        y = b.conv(y, 64, 3, pad=1)
        y = b.add(y, x)
        y = b.relu(y)
        b.output(y)
        g = b.finish()
        assert g.desc(g.outputs[0]).dims == (1, 64, 56, 56)

    def test_classifier_head(self):
        b = GraphBuilder()
        x = b.input("x", (2, 512, 7, 7))
        y = b.global_avgpool(x)
        y = b.flatten(y)
        y = b.gemm(y, out_features=1000)
        y = b.softmax(y)
        b.output(y)
        g = b.finish()
        assert g.desc(g.outputs[0]).dims == (2, 1000)

    def test_gemm_weight_shape(self):
        b = GraphBuilder()
        x = b.input("x", (1, 128))
        b.output(b.gemm(x, out_features=64, name="fc"))
        g = b.finish()
        assert g.desc("fc_w").dims == (128, 64)

    def test_auto_names_unique(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 8, 8))
        for _ in range(5):
            x = b.relu(x)
        b.output(x)
        g = b.finish()
        assert len({node.name for node in g}) == 5

    def test_dtype_propagates(self):
        b = GraphBuilder(dtype=DataType.FP16)
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv(x, 4, 3, pad=1)
        b.output(y)
        g = b.finish()
        assert g.desc(y).dtype is DataType.FP16

    def test_concat_and_resize_unet_style(self):
        b = GraphBuilder()
        x = b.input("x", (1, 64, 32, 32))
        down = b.maxpool(x, 2)
        down = b.conv(down, 128, 3, pad=1)
        up = b.resize(down, 2.0)
        merged = b.concat([up, x], axis=1)
        b.output(b.conv(merged, 64, 3, pad=1))
        g = b.finish()
        assert g.desc("concat_1_out" if "concat_1_out" in g.tensors
                      else g.nodes[-2].outputs[0]).dims[1] == 192
