"""Golden inertness pins for the kernel-pack layer.

``packs=None`` (the default) must be byte-inert: a fault plan that
merely *mentions* the pack sites — non-zero ``pack_*`` rates, registry
outage and peer churn windows — changes nothing about a replay that has
no pack hierarchy attached, because the pack sites are only ever
visited when a :class:`~repro.packs.PackPolicy` is set and a zero-rate
site never draws.  Pinned for the cluster replay, the serial fleet
simulator and the sharded fleet runner, at the payload level (the form
that lands in caches and ``BENCH_*.json`` reports).
"""

import pytest

from repro.core.schemes import Scheme
from repro.fleet import (FleetConfig, FleetSimulator, FleetTrace,
                         RegionConfig, RoutingPolicy, run_fleet_sharded)
from repro.runner import cluster_stats_to_payload, fleet_stats_to_payload
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

PLAIN_PLAN = FaultPlan(seed=7, crash_rate=0.05)
# The same plan with every pack knob lit: rates at each fetch site,
# corruption, and both forced-failure window kinds.
PACKY_PLAN = FaultPlan(seed=7, crash_rate=0.05,
                       pack_local_failure_rate=0.5,
                       pack_peer_failure_rate=0.5,
                       pack_origin_failure_rate=0.5,
                       pack_corruption_rate=0.5,
                       registry_outage_windows=((0.0, 2.0),),
                       peer_churn_windows=((1.0, 3.0),))


def _cluster_payload(plan):
    server = InferenceServer()
    trace = poisson_trace("res", 25.0, 4.0, seed=3)
    config = ClusterConfig(scheme=Scheme.PASK, max_instances=2,
                           keep_alive_s=0.05, faults=plan)
    return cluster_stats_to_payload(ClusterSimulator(server, config)
                                    .run(trace))


def _fleet_config(plan):
    return FleetConfig(
        regions=(RegionConfig(name="iad", device="MI100",
                              scheme=Scheme.PASK, max_instances=2,
                              keep_alive_s=0.05, faults=plan),
                 RegionConfig(name="fra", device="A100",
                              scheme=Scheme.PASK, max_instances=2,
                              keep_alive_s=0.05, faults=plan)),
        routing=RoutingPolicy("round-robin"))


def _fleet_trace():
    return FleetTrace.from_request_trace(
        poisson_trace("res", 12.0, 4.0, seed=3))


class TestPacksNoneIsByteInert:
    def test_cluster_replay(self):
        plain = _cluster_payload(PLAIN_PLAN)
        packy = _cluster_payload(PACKY_PLAN)
        assert plain == packy
        # Absent-rather-than-null: no pack keys without a pack policy.
        assert "packs" not in plain and "pack_restores" not in plain

    def test_fleet_serial_replay(self):
        plain = fleet_stats_to_payload(
            FleetSimulator(_fleet_config(PLAIN_PLAN)).run(_fleet_trace()))
        packy = fleet_stats_to_payload(
            FleetSimulator(_fleet_config(PACKY_PLAN)).run(_fleet_trace()))
        assert plain == packy
        for region in plain["regions"]:
            assert "packs" not in region
            assert "pack_restores" not in region

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fleet_sharded_replay(self, jobs):
        serial = fleet_stats_to_payload(
            FleetSimulator(_fleet_config(PACKY_PLAN)).run(_fleet_trace()))
        stats, report = run_fleet_sharded(_fleet_config(PACKY_PLAN),
                                          _fleet_trace(), jobs=jobs)
        assert fleet_stats_to_payload(stats) == serial

    def test_sharded_packs_run_falls_back_to_serial_exactly(self):
        # With a pack policy attached the sharded entry point must
        # produce the serial result (mode "serial": packs share one
        # fetch ledger per region, which shards can't split).
        from repro.packs import PackPolicy
        config_dict = dict(
            regions=_fleet_config(None).regions,
            routing=RoutingPolicy("round-robin"),
            packs=PackPolicy())
        config = FleetConfig(**config_dict)
        serial = FleetSimulator(config).run(_fleet_trace())
        sharded, report = run_fleet_sharded(config, _fleet_trace(), jobs=2)
        assert report.mode == "serial"
        assert (fleet_stats_to_payload(sharded)
                == fleet_stats_to_payload(serial))
        assert sharded.pack_restores > 0
