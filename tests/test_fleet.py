"""Unit tests for the fleet layer: configs, traces, stats, payloads."""

import pytest

from repro.core.schemes import Scheme
from repro.fleet import (AUTOSCALE_KINDS, AutoscalePolicy, FleetConfig,
                         FleetSimulator, FleetTrace, ROUTING_POLICIES,
                         RegionConfig, RoutingPolicy, merge_traces)
from repro.runner import (ExperimentTask, execute_task,
                          fleet_stats_from_payload, fleet_stats_to_payload)
from repro.serving.requests import poisson_trace
from repro.sim.faults import FaultPlan


class TestRegionConfig:
    def test_defaults(self):
        region = RegionConfig("r0")
        assert region.device == "MI100"
        assert region.scheme is Scheme.BASELINE
        assert region.drain_windows == ()

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            RegionConfig("")

    def test_rejects_nonpositive_instances(self):
        with pytest.raises(ValueError, match="instance"):
            RegionConfig("r0", max_instances=0)

    def test_rejects_negative_keep_alive(self):
        with pytest.raises(ValueError, match="keep-alive"):
            RegionConfig("r0", keep_alive_s=-1.0)

    @pytest.mark.parametrize("window", [(1.0, 1.0), (2.0, 1.0),
                                        (-1.0, 2.0), (0.0,)])
    def test_rejects_bad_drain_window(self, window):
        with pytest.raises(ValueError, match="drain window"):
            RegionConfig("r0", drain_windows=(window,))


class TestFleetConfig:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one region"):
            FleetConfig(regions=())

    def test_rejects_duplicate_region_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetConfig(regions=(RegionConfig("r0"), RegionConfig("r0")))

    def test_rejects_negative_shed_wait(self):
        with pytest.raises(ValueError, match="shed_wait_s"):
            FleetConfig(regions=(RegionConfig("r0"),), shed_wait_s=-0.1)

    def test_rejects_unknown_retention(self):
        with pytest.raises(ValueError, match="retention"):
            FleetConfig(regions=(RegionConfig("r0"),),
                        trace_retention="everything")

    def test_single_cluster_detection(self):
        base = FleetConfig(regions=(RegionConfig("r0"),))
        assert base.is_single_cluster
        assert not FleetConfig(
            regions=(RegionConfig("r0"), RegionConfig("r1"))
        ).is_single_cluster
        assert not FleetConfig(
            regions=(RegionConfig("r0"),),
            routing=RoutingPolicy("round-robin")).is_single_cluster
        assert not FleetConfig(
            regions=(RegionConfig("r0"),),
            autoscale=AutoscalePolicy(kind="scale-to-zero",
                                      idle_timeout_s=1.0)
        ).is_single_cluster
        assert not FleetConfig(regions=(RegionConfig("r0"),),
                               shed_wait_s=1.0).is_single_cluster
        assert not FleetConfig(
            regions=(RegionConfig("r0", drain_windows=((0.0, 1.0),)),)
        ).is_single_cluster

    def test_inert_autoscale_stays_single_cluster(self):
        config = FleetConfig(regions=(RegionConfig("r0"),),
                             autoscale=AutoscalePolicy())
        assert config.is_single_cluster


class TestRoutingPolicy:
    def test_known_kinds(self):
        assert set(ROUTING_POLICIES) == {"single", "round-robin",
                                         "least-queue", "warm-first"}
        for kind in ROUTING_POLICIES:
            assert RoutingPolicy(kind).is_inert == (kind == "single")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown routing"):
            RoutingPolicy("random")


class TestAutoscalePolicy:
    def test_known_kinds(self):
        assert set(AUTOSCALE_KINDS) == {"fixed", "scale-to-zero",
                                        "reactive", "predictive"}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="autoscale"):
            AutoscalePolicy(kind="ml-driven")

    def test_scale_to_zero_needs_idle_timeout(self):
        with pytest.raises(ValueError, match="idle_timeout_s"):
            AutoscalePolicy(kind="scale-to-zero")

    def test_rejects_bad_ewma_alpha(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="ewma_alpha"):
                AutoscalePolicy(kind="predictive", ewma_alpha=alpha)

    def test_rejects_sublinear_restore_speedup(self):
        with pytest.raises(ValueError, match="restore_speedup"):
            AutoscalePolicy(restore_speedup=0.5)

    def test_inertness(self):
        assert AutoscalePolicy().is_inert
        assert not AutoscalePolicy(min_instances=1).is_inert
        assert not AutoscalePolicy(idle_timeout_s=1.0).is_inert
        assert not AutoscalePolicy(checkpoint_restore=True).is_inert


class TestFleetTrace:
    def test_from_request_trace_round_trip(self):
        trace = poisson_trace("res", 5.0, 4.0, seed=3)
        fleet = FleetTrace.from_request_trace(trace, tenant="acme")
        assert len(fleet) == len(trace)
        assert fleet.tenant_names == ("acme",)
        assert set(fleet.tenants) == {0}
        assert fleet.to_request_trace().arrivals == trace.arrivals

    def test_rejects_unsorted_arrivals(self):
        with pytest.raises(ValueError, match="sorted"):
            FleetTrace("res", (1.0, 0.5), (0, 0))

    def test_rejects_mismatched_tenant_tags(self):
        with pytest.raises(ValueError, match="tag every arrival"):
            FleetTrace("res", (0.0, 1.0), (0,))

    def test_rejects_out_of_range_tenant(self):
        with pytest.raises(ValueError, match="out of range"):
            FleetTrace("res", (0.0,), (1,), ("default",))

    def test_rejects_duplicate_tenant_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetTrace("res", (0.0, 1.0), (0, 1), ("a", "a"))


class TestMergeTraces:
    def test_stable_deterministic_order(self):
        a = poisson_trace("res", 4.0, 5.0, seed=1)
        b = poisson_trace("res", 4.0, 5.0, seed=2)
        merged = merge_traces([("a", a), ("b", b)])
        assert len(merged) == len(a) + len(b)
        assert list(merged.arrivals) == sorted(merged.arrivals)
        assert merged.tenant_names == ("a", "b")
        # Per-tenant subsequences survive the merge intact.
        for index, trace in ((0, a), (1, b)):
            sub = tuple(t for t, tenant in zip(merged.arrivals,
                                              merged.tenants)
                        if tenant == index)
            assert sub == trace.arrivals

    def test_rejects_model_mismatch(self):
        a = poisson_trace("res", 4.0, 2.0, seed=1)
        b = poisson_trace("vgg", 4.0, 2.0, seed=1)
        with pytest.raises(ValueError, match="share model"):
            merge_traces([("a", a), ("b", b)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_traces([])


def _general_stats(seed=0, **fleet_kwargs):
    config = FleetConfig(
        regions=(RegionConfig("east", device="MI100", scheme=Scheme.PASK,
                              max_instances=2, keep_alive_s=0.5,
                              faults=FaultPlan(seed=7, crash_rate=0.05)),
                 RegionConfig("west", device="A100", scheme=Scheme.PASK,
                              max_instances=2, keep_alive_s=0.5)),
        routing=RoutingPolicy("least-queue"),
        autoscale=AutoscalePolicy(kind="scale-to-zero",
                                  idle_timeout_s=0.25,
                                  checkpoint_restore=True),
        **fleet_kwargs)
    trace = merge_traces([("a", poisson_trace("res", 3.0, 8.0, seed=seed)),
                          ("b", poisson_trace("res", 3.0, 8.0,
                                              seed=seed + 1))])
    return FleetSimulator(config).run(trace)


class TestFleetStats:
    def test_aggregates_sum_regions(self):
        stats = _general_stats()
        assert stats.completed == sum(r.completed
                                      for r in stats.regions.values())
        assert stats.cold_starts == sum(r.cold_starts
                                        for r in stats.regions.values())
        assert stats.offered == len(stats.tenants["a"].latencies) \
            + len(stats.tenants["b"].latencies) \
            + stats.failed + stats.shed
        assert stats.conserved

    def test_percentile_bounds(self):
        stats = _general_stats()
        assert stats.percentile(0.0) <= stats.percentile(0.99)
        with pytest.raises(ValueError):
            stats.percentile(1.5)

    def test_payload_round_trip_exact(self):
        stats = _general_stats()
        restored = fleet_stats_from_payload(fleet_stats_to_payload(stats))
        assert restored.offered == stats.offered
        assert restored.delegated == stats.delegated
        assert restored.shed_unroutable == stats.shed_unroutable
        assert list(restored.regions) == list(stats.regions)
        for name, region in stats.regions.items():
            other = restored.regions[name]
            assert other.latencies == region.latencies
            assert other.queue_waits == region.queue_waits
            assert other.cold_starts == region.cold_starts
            assert other.restores == region.restores
            assert other.restore_s == region.restore_s
            assert other.scale_ups == region.scale_ups
            assert other.scale_downs == region.scale_downs
            assert other.faults.as_dict() == region.faults.as_dict()
        for name, tenant in stats.tenants.items():
            other = restored.tenants[name]
            assert other.offered == tenant.offered
            assert other.latencies == tenant.latencies
        assert restored.conserved

    def test_payload_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="not a fleet payload"):
            fleet_stats_from_payload({"type": "cluster"})


class TestFleetTask:
    def test_cell_id_encodes_fleet_knobs(self):
        task = ExperimentTask(
            kind="fleet", device="MI100", model="res", scheme="PaSK",
            arrival="bursty", rate_hz=4.0, duration_s=8.0, seed=1,
            instances=2, keep_alive_s=0.5,
            fleet_devices=("MI100", "A100"), routing="warm-first",
            autoscale=AutoscalePolicy(kind="scale-to-zero",
                                      idle_timeout_s=0.25,
                                      checkpoint_restore=True))
        cell = task.cell_id
        assert cell.startswith("fleet/MI100,A100/res/PaSK/")
        assert "/bursty/" in cell
        assert "warm-first" in cell
        assert "ascale-to-zero-t0.25-cr" in cell

    def test_sweep_points_get_distinct_ids(self):
        ids = set()
        for idle in (0.1, 0.25):
            for restore in (False, True):
                ids.add(ExperimentTask(
                    kind="fleet", device="MI100", model="res",
                    scheme="PaSK", rate_hz=2.0, duration_s=4.0,
                    autoscale=AutoscalePolicy(
                        kind="scale-to-zero", idle_timeout_s=idle,
                        checkpoint_restore=restore)).cell_id)
        assert len(ids) == 4

    def test_rejects_fleet_resilience(self):
        from repro.serving.resilience import ResiliencePolicy
        with pytest.raises(ValueError, match="resilience"):
            ExperimentTask(kind="fleet", device="MI100", model="res",
                           scheme="PaSK", resilience=ResiliencePolicy())

    def test_rejects_unknown_arrival(self):
        with pytest.raises(ValueError, match="arrival"):
            ExperimentTask(kind="fleet", device="MI100", model="res",
                           scheme="PaSK", arrival="flash-crowd")

    def test_describe_is_stable_for_non_fleet_kinds(self):
        cold = ExperimentTask(kind="cold", device="MI100", model="res",
                              scheme="PaSK")
        description = cold.describe()
        for knob in ("arrival", "routing", "autoscale", "fleet_devices",
                     "shed_wait_s"):
            assert knob not in description

    def test_execute_round_trips_through_payload(self):
        task = ExperimentTask(
            kind="fleet", device="MI100", model="res", scheme="PaSK",
            arrival="diurnal", rate_hz=2.0, duration_s=6.0, seed=2,
            instances=2, keep_alive_s=0.5,
            fleet_devices=("MI100", "A100"), routing="round-robin")
        payload = execute_task(task)
        stats = fleet_stats_from_payload(payload)
        assert stats.offered > 0
        assert stats.conserved
        assert not stats.delegated
