"""Unit tests for the find-db, library run path and BLAS library."""

import pytest

from repro.gpu import HipRuntime, MI100
from repro.primitive import (
    BlasLibrary,
    ConvProblem,
    FindDb,
    GemmProblem,
    MIOpenLibrary,
    NoSolutionError,
    PoolProblem,
    kernel_time,
    solution_time,
)
from repro.primitive.solvers import all_miopen_solutions
from repro.sim import Environment, Phase

CONV_3X3 = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1))
CONV_DW = ConvProblem(1, 96, 28, 28, 96, (3, 3), pad=(1, 1), group=96)
CONV_ODD = ConvProblem(1, 7, 30, 30, 11, (4, 2), (3, 1), (0, 1))


@pytest.fixture
def library():
    return MIOpenLibrary(MI100)


class TestPerfModel:
    def test_kernel_time_positive(self):
        assert kernel_time(1e9, 1e6, 0.5, MI100) > 0

    def test_higher_efficiency_is_faster(self):
        slow = kernel_time(1e9, 1e6, 0.2, MI100)
        fast = kernel_time(1e9, 1e6, 0.8, MI100)
        assert fast < slow

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            kernel_time(-1, 0, 0.5, MI100)
        with pytest.raises(ValueError):
            kernel_time(1, 1, 0.0, MI100)

    def test_off_tune_solution_time_slower(self, library):
        tip = library.solution_by_name("ConvBinWinogradFwd<3,3>")
        other = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        on_tune = solution_time(other, tip, MI100)
        off_tune = solution_time(other, tip, MI100, tuned_for=CONV_3X3)
        assert off_tune > on_tune


class TestFindDb:
    def test_ranking_sorted_by_jittered_time(self, library):
        ranked = library.find_db.query(CONV_3X3)
        times = [solution_time(CONV_3X3, s, MI100) * s.ranking_jitter(CONV_3X3)
                 for s in ranked]
        assert times == sorted(times)

    def test_best_is_a_specialized_solution(self, library):
        # The find-db jitters rankings per shape (measured-perf scatter),
        # but for a well-supported 3x3 problem the winner is always one of
        # the specialized compute-bound tips, never the naive fallbacks.
        best = library.find_best(CONV_3X3)
        assert best.specialization >= 1
        assert best.is_applicable(CONV_3X3)

    def test_best_falls_back_for_odd_problems(self, library):
        best = library.find_best(CONV_ODD)
        assert best.specialization == 0

    def test_depthwise_candidates_include_direct_depthwise(self, library):
        # Depthwise convolutions at batch 1 are memory-bound, so the
        # jittered ranking may prefer the im2col fallback; the dedicated
        # depthwise solver must at least be applicable and highly ranked.
        ranked = library.find_db.query(CONV_DW)
        names = [s.name for s in ranked]
        assert "ConvDirectFwdDepthwise" in names[:2]

    def test_native_layout_only_filter(self, library):
        best = library.find_best(CONV_3X3, native_layout_only=True)
        assert not best.needs_layout_transform(CONV_3X3)

    def test_transform_cost_penalizes_cast_needing_solutions(self, library):
        # Under the transform-aware metric, a cast-needing solution can
        # only win if it beats natives even after paying two casts; for a
        # problem where xdlops wins raw, the adjusted pick goes native.
        strided = ConvProblem(1, 64, 56, 56, 128, (3, 3), (2, 2), (1, 1))
        adjusted = library.find_best(strided, include_transform_cost=True)
        assert not adjusted.needs_layout_transform(strided)

    def test_query_is_memoized(self, library):
        first = library.find_db.query(CONV_3X3)
        second = library.find_db.query(CONV_3X3)
        assert first == second
        assert first is not second  # defensive copy

    def test_no_solution_error(self):
        db_library = MIOpenLibrary(MI100, solutions=[])
        with pytest.raises(NoSolutionError):
            db_library.find_best(CONV_3X3)

    def test_standalone_find_db(self):
        db = FindDb(all_miopen_solutions(), MI100)
        assert db.best(CONV_3X3) is not None
        assert db.solutions


class TestRunSolution:
    def test_run_loads_and_executes(self, library):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        solution = library.find_best(CONV_3X3, native_layout_only=True)

        def proc():
            completion = yield from library.run_solution(
                runtime, CONV_3X3, solution, actor="host", label="L0")
            yield completion

        env.process(proc())
        env.run()
        co = solution.code_object_for(CONV_3X3)
        assert runtime.is_loaded(co.name)
        assert runtime.trace.busy_time(Phase.EXEC, "gpu") > 0

    def test_run_with_transform_loads_cast_binaries(self, library):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        xdlops = library.solution_by_name("ConvImplicitGemmXdlopsFwd")

        def proc():
            completion = yield from library.run_solution(
                runtime, CONV_3X3, xdlops)
            yield completion

        env.process(proc())
        env.run()
        # main binary + 2 cast binaries
        assert runtime.load_count == 3

    def test_run_reused_binary_loads_nothing_new(self, library):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        tip = library.solution_by_name("ConvBinWinogradFwd<3,3>")
        other = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        runtime.preload([tip.code_object_for(CONV_3X3)])

        def proc():
            completion = yield from library.run_solution(
                runtime, other, tip, tuned_for=CONV_3X3, lazy=False)
            yield completion

        env.process(proc())
        env.run()
        assert runtime.load_count == 0

    def test_hot_run_faster_than_cold(self, library):
        solution = library.find_best(CONV_3X3, native_layout_only=True)

        def run_once(preloaded):
            env = Environment()
            runtime = HipRuntime(env, MI100)
            if preloaded:
                runtime.preload([solution.code_object_for(CONV_3X3)])

            def proc():
                completion = yield from library.run_solution(
                    runtime, CONV_3X3, solution)
                yield completion

            env.process(proc())
            env.run()
            return env.now

        assert run_once(preloaded=True) < run_once(preloaded=False) / 5


class TestBlasLibrary:
    def test_tensile_tip_for_aligned_gemm(self):
        blas = BlasLibrary(MI100)
        best = blas.find_best(GemmProblem(768, 768, 768))
        assert best.name == "BlasGemmTensile128x128"

    def test_generic_for_odd_gemm(self):
        blas = BlasLibrary(MI100)
        best = blas.find_best(GemmProblem(197, 197, 64, batch=12))
        assert best.name == "BlasGemmBatchedStrided"
        best2 = blas.find_best(GemmProblem(197, 197, 63))
        assert best2.name == "BlasGemmGeneric"

    def test_blas_binaries_are_larger_than_conv_tips(self):
        blas = BlasLibrary(MI100)
        p = GemmProblem(768, 768, 768)
        co = blas.find_best(p).code_object_for(p)
        assert co.size_bytes > 100_000

    def test_run_gemm_always_lazy_loads(self):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        blas = BlasLibrary(MI100)
        p = GemmProblem(768, 768, 768)

        def proc():
            completion = yield from blas.run_gemm(runtime, p)
            yield completion

        env.process(proc())
        env.run()
        assert runtime.load_count == 1

    def test_repeated_gemm_loads_once(self):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        blas = BlasLibrary(MI100)
        p = GemmProblem(768, 768, 768)

        def proc():
            for _ in range(3):
                completion = yield from blas.run_gemm(runtime, p)
                yield completion

        env.process(proc())
        env.run()
        assert runtime.load_count == 1
