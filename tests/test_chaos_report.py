"""Regression tests for the checked-in chaos resilience comparison.

The ``benchmarks/chaos_resilience_report.json`` artifact is the PR's
acceptance evidence: checkpoint/restore measurably reduces post-crash
cold serves under a crash-heavy plan, and admission control bounds p99
under 2x overload while availability holds.  These tests pin the
checked-in copy byte-for-byte against a fresh regeneration (the
simulator is deterministic, so any drift is a real behavior change that
must be reviewed and re-committed via ``scripts/make_chaos_report.py``)
and assert the mitigation claims hold in the numbers themselves.
"""

import json
import os

import pytest

from repro.runner import chaos_report, chaos_scenarios, validate_report

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "benchmarks", "chaos_resilience_report.json")


@pytest.fixture(scope="module")
def checked_in():
    with open(REPORT_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_checked_in_report_validates(checked_in):
    assert validate_report(checked_in) == []


def test_checked_in_report_matches_regeneration(checked_in):
    fresh = chaos_report(created_unix=0.0)
    assert fresh == checked_in


def test_all_scenarios_pass_their_gates(checked_in):
    scenarios = checked_in["chaos"]["scenarios"]
    assert len(scenarios) == len(chaos_scenarios())
    for scenario in scenarios:
        assert scenario["pass"], scenario["name"]
        assert scenario["availability"] >= scenario["min_availability"]
        assert scenario["resilient_p99_s"] <= scenario["baseline_p99_s"]


def test_checkpoint_restore_reduces_cold_serves(checked_in):
    by_name = {s["name"]: s for s in checked_in["chaos"]["scenarios"]}
    crash = by_name["crash-heavy"]
    assert crash["resilient_cold_starts"] < crash["baseline_cold_starts"]
    assert crash["resilient_faults"]["warm_restores"] > 0


def test_admission_control_bounds_overload_p99(checked_in):
    by_name = {s["name"]: s for s in checked_in["chaos"]["scenarios"]}
    overload = by_name["overload"]
    # Shedding is doing real work and the survivors meet a much tighter
    # tail than the unbounded queue allows.
    assert overload["shed"] > 0
    assert overload["p99_speedup"] > 2.0
    assert overload["availability"] == 1.0


def test_report_carries_resilience_metrics(checked_in):
    metrics = checked_in["metrics"]
    assert "cluster_resilience_total" in metrics
    kinds = {series["labels"]["kind"]
             for series in metrics["cluster_resilience_total"]["series"]}
    assert "warm_restore" in kinds and "shed" in kinds
