"""Tests for the content-addressed on-disk result cache.

The cache must self-invalidate when anything that can change a
simulation's outcome changes — the task description, the fault plan, the
device calibration constants, the code version — and must treat corrupt
objects as misses, never as errors.
"""

import dataclasses
import json
import os

import pytest

import repro.runner.cache as cache_mod
from repro.core.schemes import Scheme
from repro.gpu.device import get_device
from repro.runner import (CacheCounters, ExperimentTask, ResultCache,
                          execute_task, run_tasks, task_key)
from repro.sim.faults import FaultPlan


def _task(**overrides):
    base = dict(kind="cold", device="MI100", model="alex",
                scheme=Scheme.PASK.value, batch=1)
    base.update(overrides)
    return ExperimentTask(**base)


class TestTaskKey:
    def test_stable_for_equal_tasks(self):
        assert task_key(_task()) == task_key(_task())

    def test_changes_with_every_grid_axis(self):
        base = task_key(_task())
        assert task_key(_task(model="vgg")) != base
        assert task_key(_task(scheme=Scheme.BASELINE.value)) != base
        assert task_key(_task(batch=16)) != base
        assert task_key(_task(device="A100")) != base
        assert task_key(_task(kind="hot")) != base

    def test_changes_with_fault_plan(self):
        base = task_key(_task())
        faulty = task_key(_task(faults=FaultPlan(seed=1,
                                                 load_failure_rate=0.1)))
        assert faulty != base
        # ... and with the plan's own knobs, including the seed.
        reseeded = task_key(_task(faults=FaultPlan(seed=2,
                                                   load_failure_rate=0.1)))
        assert reseeded != faulty

    def test_changes_with_calibration_constants(self, monkeypatch):
        base = task_key(_task())
        spec = get_device("MI100")
        recalibrated = dataclasses.replace(
            spec, code_io_bandwidth_mbps=spec.code_io_bandwidth_mbps * 1.5)
        monkeypatch.setattr(cache_mod, "get_device",
                            lambda name: recalibrated)
        assert task_key(_task()) != base

    def test_changes_with_code_version(self, monkeypatch):
        base = task_key(_task())
        monkeypatch.setattr(cache_mod, "__version__", "999.0.0")
        assert task_key(_task()) != base

    def test_changes_with_cache_format(self, monkeypatch):
        base = task_key(_task())
        monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION", 9999)
        assert task_key(_task()) != base

    def test_cluster_knobs_only_affect_cluster_tasks(self):
        # Serve tasks drop the replay knobs from their description ...
        assert task_key(_task(seed=0)) == task_key(_task(seed=7))
        # ... cluster tasks keep them.
        cluster = _task(kind="cluster")
        assert task_key(cluster) != task_key(
            dataclasses.replace(cluster, seed=7))


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        task = _task()
        key = task_key(task)
        assert cache.lookup(key) is None            # cold → miss
        payload = execute_task(task)
        cache.store(key, task, payload)
        assert cache.lookup(key) == payload          # warm → hit
        assert cache.counters.as_dict() == \
            {"hits": 1, "misses": 1, "writes": 1}

    def test_corrupt_object_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        task = _task()
        key = task_key(task)
        cache.store(key, task, execute_task(task))
        path = os.path.join(cache.objects_dir, f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ this is not json")
        assert cache.lookup(key) is None

    def test_truncated_object_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        task = _task()
        key = task_key(task)
        cache.store(key, task, execute_task(task))
        path = os.path.join(cache.objects_dir, f"{key}.json")
        blob = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(blob[:len(blob) // 2])
        assert cache.lookup(key) is None

    def test_wrong_key_object_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        task = _task()
        key = task_key(task)
        path = os.path.join(cache.objects_dir, f"{key}.json")
        os.makedirs(cache.objects_dir, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"key": "somebody-else", "payload": {}}, handle)
        assert cache.lookup(key) is None

    def test_read_false_bypasses_lookups_but_still_writes(self, tmp_path):
        root = str(tmp_path / "cache")
        task = _task()
        key = task_key(task)
        payload = execute_task(task)
        ResultCache(root).store(key, task, payload)

        no_read = ResultCache(root, read=False)
        assert no_read.lookup(key) is None           # bypassed
        assert no_read.counters.misses == 1
        fresh = execute_task(task)
        no_read.store(key, task, fresh)              # still writes
        assert no_read.counters.writes == 1
        assert ResultCache(root).lookup(key) == fresh

    def test_write_false_never_touches_disk(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = ResultCache(root, write=False)
        task = _task()
        cache.store(task_key(task), task, execute_task(task))
        assert not os.path.exists(cache.objects_dir)

    def test_no_stray_temp_files_after_store(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        task = _task()
        cache.store(task_key(task), task, execute_task(task))
        leftovers = [name for name in os.listdir(cache.objects_dir)
                     if name.endswith(".tmp")]
        assert leftovers == []


class TestEngineCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path):
        root = str(tmp_path / "cache")
        tasks = [_task(), _task(model="vgg"), _task(kind="hot")]
        _, first = run_tasks(tasks, cache=ResultCache(root))
        assert (first.executed, first.hits) == (3, 0)
        outcomes, second = run_tasks(tasks, cache=ResultCache(root))
        assert (second.executed, second.hits) == (0, 3)
        assert all(outcome.cached for outcome in outcomes.values())

    def test_cached_payloads_equal_fresh_ones(self, tmp_path):
        root = str(tmp_path / "cache")
        tasks = [_task(), _task(scheme=Scheme.BASELINE.value)]
        fresh, _ = run_tasks(tasks, cache=ResultCache(root))
        warm, _ = run_tasks(tasks, cache=ResultCache(root))
        for task in tasks:
            assert warm[task].payload == fresh[task].payload

    def test_no_cache_runs_everything(self):
        tasks = [_task()]
        outcomes, stats = run_tasks(tasks)
        assert stats.executed == 1
        assert stats.cache == CacheCounters()
        assert not outcomes[tasks[0]].cached

    def test_duplicate_tasks_execute_once(self):
        tasks = [_task(), _task(), _task(model="vgg")]
        _, stats = run_tasks(tasks)
        assert stats.tasks == 2
        assert stats.executed == 2
