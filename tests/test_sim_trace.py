"""Unit tests for the trace recorder and interval math."""

import pytest

from repro.sim import Phase, TraceRecorder, merge_intervals
from repro.sim.trace import subtract_intervals


def test_merge_disjoint_intervals():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_overlapping_intervals():
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]


def test_merge_adjacent_intervals():
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


def test_merge_keeps_zero_length_intervals():
    # Instantaneous activities (e.g. a CHECK answered in zero simulated
    # time) stay visible as points instead of being silently dropped.
    assert merge_intervals([(1, 1), (2, 2)]) == [(1, 1), (2, 2)]


def test_merge_zero_length_absorbed_by_touching_interval():
    assert merge_intervals([(0, 2), (1, 1)]) == [(0, 2)]
    assert merge_intervals([(0, 1), (1, 1)]) == [(0, 1)]
    assert merge_intervals([(1, 1), (1, 1)]) == [(1, 1)]


def test_merge_drops_reversed_intervals():
    assert merge_intervals([(3, 1), (0, 2)]) == [(0, 2)]


def test_merge_unsorted_input():
    assert merge_intervals([(5, 6), (0, 2), (1, 4)]) == [(0, 4), (5, 6)]


def test_subtract_touching_intervals():
    # A remove interval that only touches an endpoint removes nothing.
    assert subtract_intervals([(1, 3)], [(0, 1)]) == [(1, 3)]
    assert subtract_intervals([(1, 3)], [(3, 5)]) == [(1, 3)]
    # Touching on both sides simultaneously also removes nothing.
    assert subtract_intervals([(1, 3)], [(0, 1), (3, 5)]) == [(1, 3)]
    # Exactly covering the base consumes it entirely.
    assert subtract_intervals([(1, 3)], [(1, 3)]) == []


def test_subtract_nested_intervals():
    # A remove interval strictly inside the base splits it in two.
    assert subtract_intervals([(0, 10)], [(3, 7)]) == [(0, 3), (7, 10)]
    # Several nested removes carve several holes.
    assert subtract_intervals([(0, 10)], [(1, 2), (4, 5), (8, 9)]) == [
        (0, 1), (2, 4), (5, 8), (9, 10)]
    # A base nested inside a remove disappears.
    assert subtract_intervals([(3, 7)], [(0, 10)]) == []


def test_subtract_ignores_zero_length_removes():
    # Points carry no measure: subtracting one must not split the base.
    assert subtract_intervals([(0, 10)], [(5, 5)]) == [(0, 10)]


def test_subtract_zero_length_base_survives_unless_covered():
    assert subtract_intervals([(5, 5)], [(0, 2)]) == [(5, 5)]
    assert subtract_intervals([(5, 5)], [(0, 10)]) == []


def test_record_and_total():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC, "k1")
    recorder.record(2.0, 2.5, "gpu", Phase.EXEC, "k2")
    recorder.record(0.0, 3.0, "loader", Phase.LOAD, "obj")
    assert recorder.total(Phase.EXEC) == pytest.approx(1.5)
    assert recorder.total(Phase.LOAD) == pytest.approx(3.0)
    assert recorder.total() == pytest.approx(4.5)


def test_record_rejects_reversed_interval():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        recorder.record(2.0, 1.0, "gpu", Phase.EXEC)


def test_busy_time_merges_overlap():
    recorder = TraceRecorder()
    recorder.record(0.0, 2.0, "gpu", Phase.EXEC)
    recorder.record(1.0, 3.0, "gpu", Phase.EXEC)
    assert recorder.total(Phase.EXEC) == pytest.approx(4.0)
    assert recorder.busy_time(Phase.EXEC) == pytest.approx(3.0)


def test_filtered_by_actor_and_phase():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    recorder.record(0.0, 1.0, "loader", Phase.LOAD)
    recorder.record(1.0, 2.0, "gpu", Phase.EXEC)
    assert len(recorder.filtered(phase=Phase.EXEC)) == 2
    assert len(recorder.filtered(actor="loader")) == 1
    assert len(recorder.filtered(phase=Phase.EXEC, actor="loader")) == 0


def test_span_over_records():
    recorder = TraceRecorder()
    assert recorder.span() == (0.0, 0.0)
    recorder.record(1.0, 2.0, "a", Phase.PARSE)
    recorder.record(0.5, 4.0, "b", Phase.LOAD)
    assert recorder.span() == (0.5, 4.0)


def test_breakdown_fractions():
    recorder = TraceRecorder()
    recorder.record(0.0, 6.0, "loader", Phase.LOAD)
    recorder.record(6.0, 8.0, "gpu", Phase.EXEC)
    recorder.record(8.0, 10.0, "host", Phase.OTHER)
    fractions = recorder.breakdown([Phase.LOAD, Phase.EXEC, Phase.OTHER])
    assert fractions[Phase.LOAD] == pytest.approx(0.6)
    assert fractions[Phase.EXEC] == pytest.approx(0.2)
    assert fractions[Phase.OTHER] == pytest.approx(0.2)


def test_breakdown_with_explicit_total():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    fractions = recorder.breakdown([Phase.EXEC], total_time=4.0)
    assert fractions[Phase.EXEC] == pytest.approx(0.25)


def test_breakdown_zero_total_is_all_zero():
    recorder = TraceRecorder()
    fractions = recorder.breakdown([Phase.EXEC, Phase.LOAD])
    assert fractions == {Phase.EXEC: 0.0, Phase.LOAD: 0.0}


def test_utilization():
    recorder = TraceRecorder()
    recorder.record(0.0, 2.0, "gpu", Phase.EXEC)
    recorder.record(0.0, 10.0, "loader", Phase.LOAD)
    assert recorder.utilization("gpu") == pytest.approx(0.2)


def test_utilization_ignores_other_actors_exec():
    recorder = TraceRecorder()
    recorder.record(0.0, 10.0, "host", Phase.OTHER)
    recorder.record(0.0, 5.0, "cpu-sim", Phase.EXEC)
    assert recorder.utilization("gpu") == 0.0


def test_clear():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    recorder.clear()
    assert recorder.records == []


def test_meta_is_preserved_and_hashable():
    recorder = TraceRecorder()
    rec = recorder.record(0.0, 1.0, "gpu", Phase.EXEC, "k", layer=3, kind="conv")
    assert dict(rec.meta) == {"layer": 3, "kind": "conv"}
    hash(rec)  # frozen dataclass must stay hashable
