"""Sharded fleet replay: byte-identity with the serial simulator.

The time-warp engine must be invisible in every result — region
counters, latencies, queue waits, fault dictionaries, trace records and
tenant accounting all equal the serial ``FleetSimulator.run`` output
bit for bit, across every execution mode (delegated, static, time-warp),
at ``jobs=1`` (in-process shards) and across a real process pool, on a
golden grid of configs and on hypothesis-generated fleets.
"""

import dataclasses

import pytest
from hypothesis import given, settings

from repro.core.schemes import Scheme
from repro.fleet import (AutoscalePolicy, FleetConfig, FleetSimulator,
                         FleetTrace, RegionConfig, RoutingPolicy, TraceSpec,
                         equivalence_problems, merge_traces,
                         run_fleet_sharded)
from repro.runner.engine import run_shards
from repro.serving.requests import poisson_trace
from repro.sim.faults import FaultPlan
from tests.test_fleet_properties import _fleet_configs, _fleet_traces


def _trace(rate=6.0, duration=8.0, seed=3):
    return FleetTrace.from_request_trace(
        poisson_trace("res", rate, duration, seed=seed))


def _check(config, trace, jobs=1, **kwargs):
    serial = FleetSimulator(config).run(trace)
    sharded, report = run_fleet_sharded(config, trace, jobs=jobs, **kwargs)
    problems = equivalence_problems(serial, sharded)
    assert not problems, "\n".join(problems)
    assert sharded.conserved
    return sharded, report


def _regions(n=2, **overrides):
    devices = ("MI100", "A100", "6900XT")
    return tuple(
        RegionConfig(name=f"r{i}", device=devices[i % len(devices)],
                     scheme=Scheme.PASK, max_instances=2, **overrides)
        for i in range(n))


# ----------------------------------------------------------------------
# Golden grid: one config per interesting mode/policy combination
# ----------------------------------------------------------------------

_GRID = {
    "round-robin-full": FleetConfig(
        regions=_regions(2), routing=RoutingPolicy("round-robin"),
        trace_retention="full"),
    "round-robin-analytic": FleetConfig(
        regions=_regions(2), routing=RoutingPolicy("round-robin")),
    "single-drains": FleetConfig(
        regions=(RegionConfig(name="a", device="MI100", scheme=Scheme.PASK,
                              max_instances=2,
                              drain_windows=((2.0, 4.0),)),
                 RegionConfig(name="b", device="A100", scheme=Scheme.PASK,
                              max_instances=2)),
        routing=RoutingPolicy("round-robin"), trace_retention="full"),
    "warm-first-reactive-shed": FleetConfig(
        regions=(RegionConfig(name="a", device="MI100", scheme=Scheme.PASK,
                              max_instances=2),
                 RegionConfig(name="b", device="A100",
                              scheme=Scheme.BASELINE, max_instances=3),
                 RegionConfig(name="c", device="6900XT", scheme=Scheme.PASK,
                              max_instances=1)),
        routing=RoutingPolicy("warm-first"),
        autoscale=AutoscalePolicy(kind="reactive", min_instances=1,
                                  scale_up_wait_s=0.01),
        shed_wait_s=0.3, trace_retention="full"),
    "least-queue-faults-restore": FleetConfig(
        regions=(RegionConfig(name="a", device="MI100", scheme=Scheme.PASK,
                              max_instances=2,
                              faults=FaultPlan(seed=11, crash_rate=0.05),
                              drain_windows=((2.0, 4.0),)),
                 RegionConfig(name="b", device="A100", scheme=Scheme.PASK,
                              max_instances=2)),
        routing=RoutingPolicy("least-queue"),
        autoscale=AutoscalePolicy(kind="scale-to-zero", idle_timeout_s=0.25,
                                  checkpoint_restore=True),
        trace_retention="full"),
    "predictive-prewarm": FleetConfig(
        regions=_regions(2), routing=RoutingPolicy("warm-first"),
        autoscale=AutoscalePolicy(kind="predictive", prewarm_headroom=1.5),
        trace_retention="full"),
    "scale-to-zero-analytic": FleetConfig(
        regions=_regions(3), routing=RoutingPolicy("round-robin"),
        autoscale=AutoscalePolicy(kind="scale-to-zero",
                                  idle_timeout_s=0.1)),
}


@pytest.mark.parametrize("name", sorted(_GRID))
def test_sharded_matches_serial_golden_grid(name):
    _check(_GRID[name], _trace(), checkpoint_every=16)


@pytest.mark.parametrize("name", ("round-robin-full",
                                  "warm-first-reactive-shed",
                                  "least-queue-faults-restore"))
def test_sharded_matches_serial_process_pool(name):
    # The same grid rows across a real ProcessPoolExecutor: pickling
    # jobs out and stats/recorder state back must not perturb a bit.
    _check(_GRID[name], _trace(), jobs=2, checkpoint_every=16)


def test_delegated_single_cluster_passthrough():
    config = FleetConfig(regions=_regions(1))
    _, report = _check(config, _trace())
    assert report.mode == "delegated"
    assert report.shards == 0


def test_static_mode_round_robin_no_rollbacks():
    _, report = _check(_GRID["round-robin-full"], _trace())
    assert report.mode == "static"
    assert report.rounds == 0
    assert report.rollbacks == 0


def test_analytic_fast_path_serves_everything():
    # No retention, no faults, inert/scale-to-zero autoscaling: every
    # shard rides the heap-analytic fast path.
    stats, report = _check(_GRID["round-robin-analytic"], _trace())
    assert report.mode == "static"
    assert report.analytic_total == stats.offered
    stats, report = _check(_GRID["scale-to-zero-analytic"], _trace())
    assert report.analytic_total == stats.offered


def test_analytic_fast_path_with_shedding():
    # A 1-instance region at high load sheds on the analytic path too.
    config = FleetConfig(
        regions=tuple(
            RegionConfig(name=f"r{i}", device="MI100", scheme=Scheme.PASK,
                         max_instances=1) for i in range(2)),
        routing=RoutingPolicy("round-robin"), shed_wait_s=0.001)
    stats, report = _check(config, _trace(rate=400.0, duration=2.0))
    assert report.analytic_total > 0
    assert sum(r.shed for r in stats.regions.values()) > 0


def test_time_warp_converges_with_rollbacks():
    _, report = _check(_GRID["warm-first-reactive-shed"], _trace(),
                       checkpoint_every=16)
    assert report.mode == "time-warp"
    assert report.rounds >= 1


def test_multi_tenant_merge_order():
    trace = merge_traces([("t0", poisson_trace("res", 3.0, 6.0, seed=1)),
                          ("t1", poisson_trace("res", 4.0, 6.0, seed=2))])
    _check(_GRID["predictive-prewarm"], trace, checkpoint_every=32)


def test_trace_spec_regenerates_identically():
    spec = TraceSpec(model="res", rate_hz=6.0, duration_s=8.0, seed=3)
    serial = FleetSimulator(_GRID["warm-first-reactive-shed"]).run(
        spec.materialize())
    sharded, report = run_fleet_sharded(
        _GRID["warm-first-reactive-shed"], jobs=2, trace_spec=spec,
        checkpoint_every=64)
    assert not equivalence_problems(serial, sharded)
    assert report.mode == "time-warp"


def test_trace_spec_validates():
    with pytest.raises(ValueError):
        TraceSpec(rate_hz=0.0)
    with pytest.raises(ValueError):
        TraceSpec(duration_s=-1.0)
    with pytest.raises(ValueError):
        run_fleet_sharded(_GRID["round-robin-full"])  # no trace, no spec
    with pytest.raises(ValueError):
        run_fleet_sharded(_GRID["round-robin-full"], _trace(),
                          checkpoint_every=-1)


def _square(x):
    return x * x


def test_run_shards_preserves_order():
    items = list(range(7))
    assert run_shards(_square, items) == [x * x for x in items]
    assert run_shards(_square, items, jobs=3) == [x * x for x in items]
    assert run_shards(_square, []) == []


# ----------------------------------------------------------------------
# Property: sharded == serial for arbitrary fleets
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(config=_fleet_configs(), trace=_fleet_traces())
def test_sharded_equivalence_property(config, trace):
    # Small checkpoint interval forces real rollback/restore cycles
    # whenever the generated fleet lands in time-warp mode.
    serial = FleetSimulator(config).run(trace)
    sharded, _ = run_fleet_sharded(config, trace, checkpoint_every=7)
    problems = equivalence_problems(serial, sharded)
    assert not problems, "\n".join(problems)
    assert sharded.conserved


@settings(max_examples=25, deadline=None)
@given(config=_fleet_configs(), trace=_fleet_traces())
def test_sharded_equivalence_property_full_retention(config, trace):
    config = dataclasses.replace(config, trace_retention="full")
    serial = FleetSimulator(config).run(trace)
    sharded, _ = run_fleet_sharded(config, trace, checkpoint_every=16)
    problems = equivalence_problems(serial, sharded)
    assert not problems, "\n".join(problems)
