"""Unit tests for operator shape inference and cost estimation."""

import pytest

from repro.graph import Node, OpCategory, infer_shapes, node_flops, \
    node_memory_bytes, op_category, supported_ops
from repro.tensors import DataType, TensorDesc


def n(op, attrs=None, inputs=("x",), outputs=("y",)):
    return Node("test", op, tuple(inputs), tuple(outputs), attrs or {})


def t(*dims, dtype=DataType.FP32):
    return TensorDesc(tuple(dims), dtype)


class TestConv:
    def test_basic_shape(self):
        node = n("Conv", {"out_channels": 64, "kernel_shape": 3, "strides": 1,
                          "pads": 1})
        [out] = infer_shapes(node, [t(1, 3, 224, 224), t(64, 3, 3, 3)])
        assert out.dims == (1, 64, 224, 224)

    def test_strided_shape(self):
        node = n("Conv", {"out_channels": 64, "kernel_shape": 7, "strides": 2,
                          "pads": 3})
        [out] = infer_shapes(node, [t(1, 3, 224, 224), t(64, 3, 7, 7)])
        assert out.dims == (1, 64, 112, 112)

    def test_dilated_shape(self):
        node = n("Conv", {"out_channels": 8, "kernel_shape": 3, "strides": 1,
                          "pads": 2, "dilations": 2})
        [out] = infer_shapes(node, [t(1, 4, 32, 32), t(8, 4, 3, 3)])
        assert out.dims == (1, 8, 32, 32)

    def test_grouped_conv(self):
        node = n("Conv", {"out_channels": 32, "kernel_shape": 3, "strides": 1,
                          "pads": 1, "group": 32})
        [out] = infer_shapes(node, [t(1, 32, 56, 56), t(32, 1, 3, 3)])
        assert out.dims == (1, 32, 56, 56)

    def test_group_divisibility_enforced(self):
        node = n("Conv", {"out_channels": 30, "kernel_shape": 3, "group": 4})
        with pytest.raises(ValueError):
            infer_shapes(node, [t(1, 32, 8, 8), t(30, 8, 3, 3)])

    def test_collapsed_output_rejected(self):
        node = n("Conv", {"out_channels": 8, "kernel_shape": 9})
        with pytest.raises(ValueError):
            infer_shapes(node, [t(1, 3, 4, 4), t(8, 3, 9, 9)])

    def test_flops_formula(self):
        node = n("Conv", {"out_channels": 64, "kernel_shape": 3, "strides": 1,
                          "pads": 1})
        inputs = [t(1, 16, 32, 32), t(64, 16, 3, 3)]
        outputs = infer_shapes(node, inputs)
        expected = 2.0 * 64 * 32 * 32 * 16 * 3 * 3
        assert node_flops(node, inputs, outputs) == pytest.approx(expected)

    def test_grouped_flops_scaled(self):
        attrs = {"out_channels": 32, "kernel_shape": 3, "strides": 1, "pads": 1}
        dense = n("Conv", dict(attrs, group=1))
        grouped = n("Conv", dict(attrs, group=32))
        dense_in = [t(1, 32, 8, 8), t(32, 32, 3, 3)]
        grouped_in = [t(1, 32, 8, 8), t(32, 1, 3, 3)]
        f_dense = node_flops(dense, dense_in, infer_shapes(dense, dense_in))
        f_grouped = node_flops(grouped, grouped_in,
                               infer_shapes(grouped, grouped_in))
        assert f_dense == pytest.approx(32 * f_grouped)


class TestPooling:
    def test_maxpool_defaults_stride_to_kernel(self):
        node = n("MaxPool", {"kernel_shape": 2})
        [out] = infer_shapes(node, [t(1, 64, 112, 112)])
        assert out.dims == (1, 64, 56, 56)

    def test_global_avgpool(self):
        node = n("GlobalAveragePool")
        [out] = infer_shapes(node, [t(2, 512, 7, 7)])
        assert out.dims == (2, 512, 1, 1)

    def test_pool_requires_rank4(self):
        with pytest.raises(ValueError):
            infer_shapes(n("MaxPool", {"kernel_shape": 2}), [t(3, 4)])


class TestActivationsAndNorms:
    @pytest.mark.parametrize("op", ["Relu", "Sigmoid", "Silu", "Gelu", "Tanh",
                                    "BatchNormalization", "Softmax",
                                    "LayerNormalization"])
    def test_shape_preserving(self, op):
        [out] = infer_shapes(n(op), [t(2, 8, 4, 4)])
        assert out.dims == (2, 8, 4, 4)

    def test_gelu_costlier_than_relu(self):
        x = [t(1, 100)]
        relu = n("Relu")
        gelu = n("Gelu")
        assert node_flops(gelu, x, x) > node_flops(relu, x, x)


class TestGemmMatmul:
    def test_gemm_shape_and_flops(self):
        node = n("Gemm", {"out_features": 1000})
        inputs = [t(4, 512), t(512, 1000)]
        [out] = infer_shapes(node, inputs)
        assert out.dims == (4, 1000)
        assert node_flops(node, inputs, [out]) == pytest.approx(
            2.0 * 4 * 1000 * 512)

    def test_matmul_batched(self):
        node = n("MatMul", inputs=("a", "b"))
        inputs = [t(8, 12, 197, 64), t(8, 12, 64, 197)]
        [out] = infer_shapes(node, inputs)
        assert out.dims == (8, 12, 197, 197)

    def test_matmul_mismatch_rejected(self):
        node = n("MatMul", inputs=("a", "b"))
        with pytest.raises(ValueError):
            infer_shapes(node, [t(2, 3), t(4, 5)])


class TestShapeOps:
    def test_flatten(self):
        [out] = infer_shapes(n("Flatten", {"axis": 1}), [t(2, 512, 7, 7)])
        assert out.dims == (2, 512 * 49)

    def test_reshape_with_minus_one(self):
        [out] = infer_shapes(n("Reshape", {"shape": (2, -1)}), [t(2, 3, 4)])
        assert out.dims == (2, 12)

    def test_reshape_bad_count_rejected(self):
        with pytest.raises(ValueError):
            infer_shapes(n("Reshape", {"shape": (5, 5)}), [t(2, 3, 4)])

    def test_transpose_default_reverses(self):
        [out] = infer_shapes(n("Transpose"), [t(2, 3, 4)])
        assert out.dims == (4, 3, 2)

    def test_transpose_perm(self):
        [out] = infer_shapes(n("Transpose", {"perm": (0, 2, 1)}), [t(2, 3, 4)])
        assert out.dims == (2, 4, 3)

    def test_concat(self):
        node = n("Concat", {"axis": 1}, inputs=("a", "b"))
        [out] = infer_shapes(node, [t(1, 3, 8, 8), t(1, 5, 8, 8)])
        assert out.dims == (1, 8, 8, 8)

    def test_concat_mismatch_rejected(self):
        node = n("Concat", {"axis": 1}, inputs=("a", "b"))
        with pytest.raises(ValueError):
            infer_shapes(node, [t(1, 3, 8, 8), t(1, 5, 9, 8)])

    def test_resize(self):
        [out] = infer_shapes(n("Resize", {"scale": 2.0}), [t(1, 8, 14, 14)])
        assert out.dims == (1, 8, 28, 28)

    def test_slice(self):
        [out] = infer_shapes(n("Slice", {"axis": 1, "size": 2}), [t(1, 8, 4, 4)])
        assert out.dims == (1, 2, 4, 4)


class TestBroadcast:
    def test_add_same_shape(self):
        node = n("Add", inputs=("a", "b"))
        [out] = infer_shapes(node, [t(2, 3), t(2, 3)])
        assert out.dims == (2, 3)

    def test_add_broadcast(self):
        node = n("Add", inputs=("a", "b"))
        [out] = infer_shapes(node, [t(2, 8, 4, 4), t(8, 1, 1)])
        assert out.dims == (2, 8, 4, 4)

    def test_add_incompatible_rejected(self):
        node = n("Add", inputs=("a", "b"))
        with pytest.raises(ValueError):
            infer_shapes(node, [t(2, 3), t(2, 4)])


class TestRegistry:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="unsupported operator"):
            infer_shapes(n("FancyOp"), [t(1)])

    def test_categories(self):
        assert op_category("Conv") is OpCategory.CONV
        assert op_category("MaxPool") is OpCategory.POOL
        assert op_category("Relu") is OpCategory.ACTIVATION
        assert op_category("Gemm") is OpCategory.GEMM
        assert op_category("MatMul") is OpCategory.GEMM
        assert op_category("Flatten") is OpCategory.SHAPE

    def test_supported_ops_nonempty_sorted(self):
        ops = supported_ops()
        assert "Conv" in ops
        assert ops == sorted(ops)

    def test_memory_bytes(self):
        node = n("Relu")
        x = [t(1, 10)]
        assert node_memory_bytes(node, x, x) == 2 * 40
