"""Unit tests for the telemetry metrics registry."""

import json

import pytest

from repro.obs.metrics import (DEFAULT_SIZE_BUCKETS, DEFAULT_TIME_BUCKETS,
                               MetricsRegistry, exponential_buckets,
                               merge_dumps, validate_dump)


class TestExponentialBuckets:
    def test_geometric_ladder(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_default_ladders_are_fixed(self):
        assert len(DEFAULT_TIME_BUCKETS) == 16
        assert DEFAULT_TIME_BUCKETS[0] == 1e-4
        assert len(DEFAULT_SIZE_BUCKETS) == 11
        assert DEFAULT_SIZE_BUCKETS[0] == 1024.0

    @pytest.mark.parametrize("start,factor,count",
                             [(0.0, 2.0, 4), (-1.0, 2.0, 4),
                              (1.0, 1.0, 4), (1.0, 2.0, 0)])
    def test_invalid_parameters(self, start, factor, count):
        with pytest.raises(ValueError):
            exponential_buckets(start, factor, count)


class TestInstruments:
    def test_counter_increments_per_label_set(self):
        registry = MetricsRegistry()
        loads = registry.counter("loads_total", "Loads")
        loads.inc(mode="reactive")
        loads.inc(2.0, mode="reactive")
        loads.inc(mode="proactive")
        assert loads.value(mode="reactive") == 3.0
        assert loads.value(mode="proactive") == 1.0
        assert loads.value(mode="missing") == 0.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only increase"):
            registry.counter("c").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        depth.set(4.0)
        depth.inc()
        depth.dec(2.0)
        assert depth.value() == 3.0

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        series = hist.labels()
        assert series.counts == [1, 1, 1, 1]  # one lands in +Inf
        assert series.count == 4
        assert series.total == 105.0

    def test_histogram_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("empty", buckets=())

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        second = registry.counter("c")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")


class TestDumps:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("b_counter", "B").inc(2.0, scheme="PaSK")
        registry.gauge("a_gauge", "A").set(1.5)
        hist = registry.histogram("c_hist", "C", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(9.0)
        return registry

    def test_to_json_sorted_and_valid(self):
        dump = self.build().to_json()
        assert list(dump) == ["a_gauge", "b_counter", "c_hist"]
        assert dump["c_hist"]["bounds"] == [1.0, 2.0]
        assert dump["c_hist"]["series"][0]["buckets"] == [1, 0, 1]
        assert validate_dump(dump) == []
        json.dumps(dump)  # JSON-able

    def test_to_prometheus_format(self):
        text = self.build().to_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE a_gauge gauge" in lines
        assert "a_gauge 1.5" in lines
        assert 'b_counter{scheme="PaSK"} 2' in lines
        # Cumulative buckets with a +Inf terminator.
        assert 'c_hist_bucket{le="1"} 1' in lines
        assert 'c_hist_bucket{le="2"} 1' in lines
        assert 'c_hist_bucket{le="+Inf"} 2' in lines
        assert "c_hist_sum 9.5" in lines
        assert "c_hist_count 2" in lines

    def test_dump_is_deterministic(self):
        assert self.build().to_json() == self.build().to_json()
        assert self.build().to_prometheus() == self.build().to_prometheus()

    def test_empty_registry(self):
        registry = MetricsRegistry()
        assert registry.to_json() == {}
        assert registry.to_prometheus() == ""


class TestMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        def shard(gauge_value):
            registry = MetricsRegistry()
            registry.counter("hits").inc(3.0)
            registry.gauge("depth").set(gauge_value)
            registry.histogram("lat", buckets=(1.0,)).observe(0.5)
            return registry.to_json()

        merged = merge_dumps([shard(1.0), shard(7.0)])
        assert merged["hits"]["series"][0]["value"] == 6.0
        assert merged["depth"]["series"][0]["value"] == 7.0  # last write
        assert merged["lat"]["series"][0]["count"] == 2
        assert merged["lat"]["series"][0]["buckets"] == [2, 0]
        assert validate_dump(merged) == []

    def test_merge_is_associative(self):
        def shard(n):
            registry = MetricsRegistry()
            registry.counter("hits").inc(float(n))
            return registry.to_json()

        a, b, c = shard(1), shard(2), shard(4)
        left = merge_dumps([merge_dumps([a, b]), c])
        right = merge_dumps([a, merge_dumps([b, c])])
        assert left == right

    def test_merge_rejects_bound_mismatch(self):
        first = MetricsRegistry()
        first.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        second = MetricsRegistry()
        second.histogram("lat", buckets=(1.0, 3.0)).observe(0.5)
        registry = MetricsRegistry()
        registry.merge(first.to_json())
        with pytest.raises(ValueError):
            registry.merge(second.to_json())


class TestValidateDump:
    def test_rejects_non_object(self):
        assert validate_dump([]) == ["metrics dump must be an object"]

    def test_rejects_unknown_kind(self):
        problems = validate_dump({"m": {"kind": "summary", "series": []}})
        assert any("unknown kind" in p for p in problems)

    def test_rejects_negative_counter(self):
        dump = {"m": {"kind": "counter",
                      "series": [{"labels": {}, "value": -1.0}]}}
        assert any("negative counter" in p for p in validate_dump(dump))

    def test_rejects_bucket_arity_mismatch(self):
        dump = {"m": {"kind": "histogram", "bounds": [1.0, 2.0],
                      "series": [{"labels": {}, "count": 1, "sum": 0.5,
                                  "buckets": [1, 0]}]}}
        assert any("bucket counts" in p for p in validate_dump(dump))

    def test_rejects_count_sum_mismatch(self):
        dump = {"m": {"kind": "histogram", "bounds": [1.0],
                      "series": [{"labels": {}, "count": 5, "sum": 0.5,
                                  "buckets": [1, 0]}]}}
        assert any("count != sum" in p for p in validate_dump(dump))

    def test_accepts_real_registry_dump(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()
        assert validate_dump(registry.to_json()) == []
