"""Cross-shape GEMM kernel reuse under the managed-BLAS extension.

Under ``manage_blas=True`` PASK applies Algorithm 1 to the BLAS library:
a generic GEMM binary loaded for one odd shape can serve another odd
shape of the same (BLAS) pattern, skipping its load.
"""

import pytest

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.engine.instruction import Instruction, InstrKind
from repro.engine.program import Program
from repro.gpu import HipRuntime, MI100
from repro.primitive import BlasLibrary, GemmProblem, MIOpenLibrary
from repro.sim import Environment

LIBRARY = MIOpenLibrary(MI100)
BLAS = BlasLibrary(MI100)

# Odd shapes: nothing divisible, so the generic kernel is the only
# applicable BLAS solution for both.
GEMM_A = GemmProblem(197, 391, 53)
GEMM_B = GemmProblem(311, 203, 97)


def gemm_program(problems):
    instructions = tuple(
        Instruction(i, f"g{i}", InstrKind.BLAS_GEMM, problem=p)
        for i, p in enumerate(problems))
    return Program("gemms", instructions)


def run(config, problems):
    env = Environment()
    runtime = HipRuntime(env, MI100)
    middleware = PaskMiddleware(env, runtime, LIBRARY, BLAS, config)
    outcome = {}

    def driver():
        stats = yield from middleware.execute(gemm_program(problems))
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    outcome["loads"] = runtime.load_count
    return outcome


def test_both_shapes_pick_generic():
    assert BLAS.find_best(GEMM_A).name == "BlasGemmGeneric"
    assert BLAS.find_best(GEMM_B).name == "BlasGemmGeneric"
    # But their binaries differ: per-configuration Tensile-style images.
    assert (BLAS.find_best(GEMM_A).code_object_for(GEMM_A).name
            != BLAS.find_best(GEMM_B).code_object_for(GEMM_B).name)


def test_managed_blas_reuses_generic_across_shapes():
    # Repeat B enough times that the milestone passes before it arrives.
    outcome = run(PaskConfig(manage_blas=True),
                  [GEMM_A, GEMM_A, GEMM_A, GEMM_B, GEMM_B])
    assert outcome["reused_layers"] >= 1
    # One generic binary for A; B reuses it -- no second generic load.
    assert outcome["loads"] == 1


def test_stock_pask_loads_both():
    outcome = run(PaskConfig(manage_blas=False),
                  [GEMM_A, GEMM_A, GEMM_A, GEMM_B, GEMM_B])
    assert outcome["reused_layers"] == 0
    assert outcome["loads"] == 2
