"""Golden determinism tests for the parallel experiment engine.

The whole value of the runner rests on one invariant: **parallelism and
caching are invisible**.  A grid computed across N worker processes, or
replayed from the on-disk cache, must be *byte-identical* to the same
grid computed serially in-process by :class:`ExperimentSuite`.  These
tests pin that invariant at every level — raw payloads, reconstructed
``ExecutionResult`` objects (including full traces), figure/table
output, and the emitted ``BENCH_*.json`` reports.
"""

import pytest

from repro.core.schemes import Scheme
from repro.runner import (ExperimentTask, ResultCache, execute_task,
                          prewarm_suite, result_from_payload, run_bench,
                          run_tasks, validate_report)
from repro.serving.experiments import ExperimentSuite

_MODELS = ("res", "vit")
_SCHEMES = (Scheme.BASELINE, Scheme.PASK)


def _grid():
    tasks = []
    for model in _MODELS:
        for scheme in _SCHEMES:
            tasks.append(ExperimentTask(kind="cold", device="MI100",
                                        model=model, scheme=scheme.value,
                                        batch=1))
        tasks.append(ExperimentTask(kind="hot", device="MI100", model=model))
    return tasks


class TestParallelEqualsSerial:
    def test_payloads_identical_across_job_counts(self):
        tasks = _grid()
        serial, _ = run_tasks(tasks, jobs=1)
        parallel, _ = run_tasks(tasks, jobs=4)
        for task in tasks:
            assert parallel[task].payload == serial[task].payload

    def test_worker_results_equal_direct_suite_runs(self):
        """A payload round-tripped from a worker process reconstructs
        the exact result the serial suite computes — total time, trace
        records, cache stats, everything."""
        suite = ExperimentSuite("MI100", models=list(_MODELS))
        outcomes, _ = run_tasks(_grid(), jobs=2)
        for task, outcome in outcomes.items():
            reconstructed = result_from_payload(outcome.payload)
            if task.kind == "cold":
                direct = suite.cold(task.model, task.scheme_enum, task.batch)
            else:
                direct = suite.hot(task.model, task.batch)
            assert reconstructed.total_time == direct.total_time
            assert reconstructed.trace.records == direct.trace.records
            assert reconstructed.cache_stats == direct.cache_stats
            assert reconstructed.faults == direct.faults
            assert reconstructed.loads == direct.loads
            assert reconstructed.loaded_bytes == direct.loaded_bytes

    def test_prewarmed_suite_figures_match_serial_suite(self):
        serial = ExperimentSuite("MI100", models=list(_MODELS))
        warmed = ExperimentSuite("MI100", models=list(_MODELS))
        prewarm_suite(warmed, schemes=list(_SCHEMES), jobs=2)
        for model in _MODELS:
            assert warmed.speedup(model, Scheme.PASK) == \
                serial.speedup(model, Scheme.PASK)
        assert warmed.fig6b(schemes=(Scheme.PASK,)) == \
            serial.fig6b(schemes=(Scheme.PASK,))

    def test_cached_replay_identical_to_fresh_run(self, tmp_path):
        tasks = _grid()
        root = str(tmp_path / "cache")
        fresh, first = run_tasks(tasks, jobs=2, cache=ResultCache(root))
        warm, second = run_tasks(tasks, jobs=2, cache=ResultCache(root))
        assert first.executed == len(tasks) and second.executed == 0
        for task in tasks:
            assert warm[task].payload == fresh[task].payload

    def test_cluster_replay_deterministic_across_processes(self):
        task = ExperimentTask(kind="cluster", device="MI100", model="res",
                              scheme=Scheme.PASK.value, duration_s=2.0)
        serial = execute_task(task)
        parallel, _ = run_tasks([task], jobs=2)
        assert parallel[task].payload == serial


class TestBenchReportDeterminism:
    @pytest.fixture()
    def cache_dir(self, tmp_path):
        root = str(tmp_path / "cache")
        # Populate the cache once so the runs under test are fully warm.
        run_bench(grid="quick", jobs=2, cache_dir=root, write=False)
        return root

    def test_warm_runs_identical_modulo_run_section(self, cache_dir):
        one = run_bench(grid="quick", jobs=1, cache_dir=cache_dir,
                        write=False).payload
        two = run_bench(grid="quick", jobs=4, cache_dir=cache_dir,
                        write=False).payload
        # The ``run`` section (timestamps, wall clock, jobs) is declared
        # volatile; everything else must match byte for byte.
        one["run"] = two["run"] = None
        one["meta"]["jobs"] = two["meta"]["jobs"] = None
        assert one == two

    def test_warm_cache_means_zero_cold_executions(self, cache_dir):
        report = run_bench(grid="quick", jobs=2, cache_dir=cache_dir,
                           write=False)
        assert report.payload["totals"]["executed"] == 0
        assert report.payload["cache"]["misses"] == 0
        assert all(cell["cache_hit"] for cell in report.payload["cells"])

    def test_report_is_schema_valid(self, cache_dir):
        report = run_bench(grid="quick", jobs=1, cache_dir=cache_dir,
                           write=False)
        assert validate_report(report.payload) == []

    def test_warm_run_never_regresses_against_itself(self, tmp_path,
                                                     cache_dir):
        baseline = run_bench(grid="quick", jobs=1, cache_dir=cache_dir,
                             out_dir=str(tmp_path))
        again = run_bench(grid="quick", jobs=1, cache_dir=cache_dir,
                          baseline_path=baseline.path, write=False)
        assert again.regressions == []
        assert again.ok
