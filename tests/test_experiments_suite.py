"""Tests for the experiment suite plumbing and the validation module."""

import pytest

from repro.core.schemes import Scheme
from repro.serving.experiments import CONV_MODELS, DEFAULT_BATCHES, \
    ExperimentSuite, TRANSFORMER_MODELS
from repro.serving.validation import CRITERIA, validate


class TestSuitePlumbing:
    def test_model_partition(self):
        assert set(CONV_MODELS) & set(TRANSFORMER_MODELS) == set()
        assert len(CONV_MODELS) + len(TRANSFORMER_MODELS) == 12

    def test_default_batches_match_table2(self):
        assert DEFAULT_BATCHES == (1, 4, 16, 64, 128)

    def test_cold_runs_are_memoized(self):
        suite = ExperimentSuite("MI100", models=["alex"])
        a = suite.cold("alex", Scheme.BASELINE)
        b = suite.cold("alex", Scheme.BASELINE)
        assert a is b

    def test_hot_runs_are_memoized(self):
        suite = ExperimentSuite("MI100", models=["alex"])
        assert suite.hot("alex") is suite.hot("alex")

    def test_distinct_keys_not_shared(self):
        suite = ExperimentSuite("MI100", models=["alex"])
        assert suite.cold("alex", Scheme.BASELINE) is not \
            suite.cold("alex", Scheme.IDEAL)
        assert suite.cold("alex", Scheme.BASELINE) is not \
            suite.cold("alex", Scheme.BASELINE, batch=4)

    def test_server_cached_per_device(self):
        suite = ExperimentSuite("MI100", models=["alex"])
        assert suite.server() is suite.server("MI100")
        assert suite.server("A100") is not suite.server("MI100")

    def test_speedup_positive(self):
        suite = ExperimentSuite("MI100", models=["alex"])
        assert suite.speedup("alex", Scheme.IDEAL) > 1.0

    def test_subset_suite_runs_experiments(self):
        suite = ExperimentSuite("MI100", models=["alex", "vgg"])
        fig6a = suite.fig6a(schemes=(Scheme.IDEAL,))
        assert set(fig6a["Ideal"]) == {"alex", "vgg", "average"}


class TestValidation:
    def test_criteria_have_unique_names(self):
        names = [c.name for c in CRITERIA]
        assert len(names) == len(set(names))

    def test_full_validation_passes(self):
        suite = ExperimentSuite("MI100")
        outcomes = validate(suite)
        failures = [c.name for c, ok in outcomes if not ok]
        assert not failures, f"acceptance criteria failed: {failures}"
