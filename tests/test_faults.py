"""Unit tests for the fault-injection layer (repro.sim.faults)."""

import pytest

from repro.core.schemes import Scheme
from repro.gpu import CodeObjectFile
from repro.gpu.device import get_device
from repro.gpu.runtime import HipRuntime
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim import Environment, Phase
from repro.sim.faults import (
    FaultCounters,
    FaultPlan,
    LaunchFault,
    LoadFault,
)


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector basics
# ----------------------------------------------------------------------

def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(load_failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(crash_rate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(max_load_attempts=0)
    with pytest.raises(ValueError):
        FaultPlan(loader_stall_s=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(load_timeout_s=-1.0)


def test_zero_plan_is_zero():
    assert FaultPlan().is_zero
    assert not FaultPlan(load_failure_rate=0.1).is_zero
    assert not FaultPlan(crash_rate=0.1).is_zero


def test_injector_rolls_deterministic_and_site_independent():
    a = FaultPlan(seed=42).injector()
    b = FaultPlan(seed=42).injector()
    assert [a.roll("x") for _ in range(5)] == [b.roll("x") for _ in range(5)]
    # Draws at one site do not perturb another site's sequence.
    c = FaultPlan(seed=42).injector()
    c.roll("y")
    c.roll("y")
    assert c.roll("x") == FaultPlan(seed=42).injector().roll("x")
    # Different seeds give different sequences.
    assert (FaultPlan(seed=1).injector().roll("x")
            != FaultPlan(seed=2).injector().roll("x"))


def test_zero_rate_consumes_no_randomness():
    injector = FaultPlan(seed=0).injector()
    assert not injector.should_fail("site", 0.0)
    assert injector._draws == {}


def test_counters_merge_and_availability():
    a = FaultCounters(load_faults=2, completed_requests=3, failed_requests=1)
    b = FaultCounters(load_faults=1, reroutes=4, completed_requests=1)
    a.merge(b)
    assert a.load_faults == 3
    assert a.reroutes == 4
    assert a.availability == pytest.approx(4 / 5)
    assert FaultCounters().availability == 1.0


# ----------------------------------------------------------------------
# Runtime: load retry with exponential backoff
# ----------------------------------------------------------------------

def _runtime(plan):
    env = Environment()
    return env, HipRuntime(env, get_device("MI100"), faults=plan)


def test_load_retries_then_gives_up():
    plan = FaultPlan(load_failure_rate=1.0, max_load_attempts=3)
    env, runtime = _runtime(plan)
    code_object = CodeObjectFile.single_kernel("victim", 100_000)
    failures = []

    def proc():
        try:
            yield from runtime.module_load(code_object)
        except LoadFault as error:
            failures.append(error)

    env.process(proc())
    env.run()
    assert len(failures) == 1
    assert runtime.faults.counters.load_faults == 3
    assert runtime.faults.counters.load_retries == 2
    assert not runtime.is_loaded("victim")
    assert not runtime.is_loading("victim")
    faults = runtime.trace.filtered(phase=Phase.FAULT)
    retries = runtime.trace.filtered(phase=Phase.RETRY)
    assert len(faults) == 3
    assert len(retries) == 2


def test_load_backoff_is_exponential():
    plan = FaultPlan(load_failure_rate=1.0, max_load_attempts=3,
                     load_backoff_base_s=1e-3)
    injector = plan.injector()
    assert injector.load_backoff(1) == pytest.approx(1e-3)
    assert injector.load_backoff(2) == pytest.approx(2e-3)
    assert injector.load_backoff(3) == pytest.approx(4e-3)


def test_coalesced_waiter_sees_load_failure():
    plan = FaultPlan(load_failure_rate=1.0, max_load_attempts=1)
    env, runtime = _runtime(plan)
    code_object = CodeObjectFile.single_kernel("shared", 100_000)
    outcomes = []

    def loader():
        try:
            yield from runtime.module_load(code_object)
            outcomes.append("loader-ok")
        except LoadFault:
            outcomes.append("loader-fault")

    def waiter():
        # Arrive while the load is in flight and coalesce onto it.
        yield env.timeout(1e-6)
        try:
            yield from runtime.module_load(code_object)
            outcomes.append("waiter-ok")
        except LoadFault:
            outcomes.append("waiter-fault")

    env.process(loader())
    env.process(waiter())
    env.run()
    assert "loader-fault" in outcomes
    # The waiter either coalesced onto the failing load or started a
    # fresh one (which also fails at rate 1.0): either way it faults.
    assert "waiter-fault" in outcomes


def test_successful_load_after_zero_faults_matches_no_plan():
    env1, faulty = _runtime(FaultPlan())
    env2, clean = _runtime(None)
    code_object = CodeObjectFile.single_kernel("same", 123_456)

    def load(runtime):
        yield from runtime.module_load(code_object)

    env1.process(load(faulty))
    env1.run()
    env2.process(load(clean))
    env2.run()
    assert env1.now == env2.now
    assert faulty.trace.records == clean.trace.records


# ----------------------------------------------------------------------
# Runtime: transient launch faults
# ----------------------------------------------------------------------

def test_launch_retries_then_gives_up():
    plan = FaultPlan(launch_failure_rate=1.0, max_launch_attempts=2)
    env, runtime = _runtime(plan)
    code_object = CodeObjectFile.single_kernel("k", 50_000)
    failures = []

    def proc():
        try:
            yield from runtime.launch_kernel(code_object, "k", 1e-4)
        except LaunchFault as error:
            failures.append(error)

    env.process(proc())
    env.run()
    assert len(failures) == 1
    assert runtime.faults.counters.launch_faults == 2
    assert runtime.faults.counters.launch_retries == 1
    assert runtime.stream.kernels_executed == 0


def test_exec_stall_delays_kernel_and_is_traced():
    plan = FaultPlan(exec_stall_rate=1.0, exec_stall_s=5e-3)
    env, runtime = _runtime(plan)
    code_object = CodeObjectFile.single_kernel("k", 50_000)

    def proc():
        completion = yield from runtime.launch_kernel(code_object, "k", 1e-4)
        yield completion

    env.process(proc())
    env.run()
    stalls = runtime.trace.filtered(phase=Phase.FAULT, actor="gpu")
    assert len(stalls) == 1
    assert stalls[0].duration == pytest.approx(5e-3)
    assert runtime.faults.counters.exec_stalls == 1
    execs = runtime.trace.filtered(phase=Phase.EXEC)
    assert execs[0].start == pytest.approx(stalls[0].end)


# ----------------------------------------------------------------------
# Middleware: proactive-to-reactive fallback
# ----------------------------------------------------------------------

def test_pask_falls_back_to_reactive_on_load_timeout():
    # Every layer's proactive load stalls beyond the timeout budget, so
    # every layer takes the reactive fallback -- and still completes.
    plan = FaultPlan(loader_stall_rate=1.0, loader_stall_s=2e-3,
                     load_timeout_s=1e-3)
    server = InferenceServer()
    result = server.serve_cold("alex", Scheme.PASK, faults=plan)
    assert not result.failed
    assert result.faults.fallbacks > 0
    assert result.faults.loader_stalls == 0  # all stalls hit the timeout
    timeouts = [r for r in result.trace.filtered(phase=Phase.FAULT)
                if r.label.endswith("/load-timeout")]
    assert timeouts
    # The reactive path re-loads what the loader abandoned, so the run
    # is slower than the fault-free one but not catastrophically so.
    clean = server.serve_cold("alex", Scheme.PASK)
    assert result.total_time > clean.total_time


def test_pask_waits_out_short_stalls():
    plan = FaultPlan(loader_stall_rate=1.0, loader_stall_s=5e-4,
                     load_timeout_s=1e-3)
    result = InferenceServer().serve_cold("alex", Scheme.PASK, faults=plan)
    assert not result.failed
    assert result.faults.loader_stalls > 0
    assert result.faults.fallbacks == 0


def test_total_fault_exhaustion_fails_explicitly():
    # Loads always fail with a single attempt: the proactive loader
    # falls back, the reactive path exhausts too, the request is
    # explicitly failed -- never silently lost, never raising out.
    plan = FaultPlan(load_failure_rate=1.0, max_load_attempts=1)
    result = InferenceServer().serve_cold("alex", Scheme.PASK, faults=plan)
    assert result.failed
    assert "error" in result.metadata
    assert result.faults.failed_requests == 1
    assert result.faults.completed_requests == 0


def test_session_records_explicit_failure():
    plan = FaultPlan(load_failure_rate=1.0, max_load_attempts=1)
    results = InferenceServer().serve_session("alex", Scheme.PASK,
                                              n_requests=3, faults=plan)
    assert len(results) == 1
    assert results[0].failed


# ----------------------------------------------------------------------
# Cluster: crash, reroute, restart-cold churn
# ----------------------------------------------------------------------

def test_cluster_crashes_reroute_and_rebuild_cold():
    server = InferenceServer()
    trace = poisson_trace("alex", rate_hz=20.0, duration_s=4.0, seed=3)
    plan = FaultPlan(seed=3, crash_rate=0.15)
    clean = ClusterSimulator(
        server, ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                              keep_alive_s=0.5)).run(trace)
    chaotic = ClusterSimulator(
        server, ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                              keep_alive_s=0.5, faults=plan)).run(trace)
    assert chaotic.faults.crashes > 0
    assert chaotic.faults.reroutes > 0
    # No lost requests: everything completed or explicitly failed.
    assert chaotic.completed + chaotic.failed == len(trace)
    # Restarted instances re-enter cold, so churn re-triggers cold
    # starts that the fault-free replay avoided.
    assert chaotic.cold_starts > clean.cold_starts
    assert 0.0 <= chaotic.availability <= 1.0


def test_cluster_certain_crash_fails_every_request():
    server = InferenceServer()
    trace = poisson_trace("alex", rate_hz=10.0, duration_s=1.0, seed=0)
    plan = FaultPlan(crash_rate=1.0, max_reroutes=2)
    stats = ClusterSimulator(
        server, ClusterConfig(scheme=Scheme.BASELINE, max_instances=2,
                              faults=plan)).run(trace)
    assert stats.completed == 0
    assert stats.failed == len(trace)
    assert stats.availability == 0.0
    # Each request burned its full reroute budget.
    assert stats.faults.crashes == len(trace) * 3
    assert stats.faults.reroutes == len(trace) * 2


def test_cluster_zero_plan_identical_to_no_plan():
    server = InferenceServer()
    trace = poisson_trace("alex", rate_hz=20.0, duration_s=2.0, seed=1)
    base = ClusterSimulator(
        server, ClusterConfig(scheme=Scheme.PASK, max_instances=4)).run(trace)
    zero = ClusterSimulator(
        server, ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                              faults=FaultPlan())).run(trace)
    assert base.latencies == zero.latencies
    assert base.cold_starts == zero.cold_starts
    assert base.queue_waits == zero.queue_waits
    assert zero.failed == 0


# ----------------------------------------------------------------------
# CLI: repro chaos
# ----------------------------------------------------------------------

def test_cli_chaos_reports_mitigation_counters(capsys):
    from repro.cli import main
    code = main(["chaos", "alex", "--seed", "0"])
    output = capsys.readouterr().out
    assert code == 0
    assert "retries:" in output
    assert "fallbacks to reactive path:" in output
    assert "reroutes:" in output
    assert "no lost requests" in output
    # The default seeded plan actually exercises the mitigation paths.
    import re
    retries = int(re.search(r"retries: (\d+)", output).group(1))
    fallbacks = int(re.search(r"fallbacks to reactive path: (\d+)",
                              output).group(1))
    reroutes = int(re.search(r"reroutes: (\d+)", output).group(1))
    assert retries > 0
    assert fallbacks > 0
    assert reroutes > 0


# ----------------------------------------------------------------------
# Crash-boundary semantics (pinned): crash_at in [0, service), zero-
# length requests never crash, draws are consumed regardless
# ----------------------------------------------------------------------

def test_crash_point_strictly_before_completion():
    injector = FaultPlan(seed=7, crash_rate=1.0).injector()
    service = 0.125
    points = [injector.crash_point(service) for _ in range(200)]
    assert all(p is not None for p in points)
    assert all(0.0 <= p < service for p in points)
    # The boundary itself is unreachable: a request whose service time
    # already elapsed has completed and cannot be crashed retroactively.
    assert max(points) < service


def test_crash_point_zero_length_request_never_crashes():
    injector = FaultPlan(seed=7, crash_rate=1.0).injector()
    assert injector.crash_point(0.0) is None
    assert injector.crash_point(-1.0) is None
    # The cluster.request draw is still consumed for each call, so the
    # fault sequence seen by later requests does not depend on service
    # times; the position draw is not (no crash happened).
    assert injector._draws.get("cluster.request") == 2
    assert "cluster.request.point" not in injector._draws


def test_crash_point_survival_consumes_one_draw_only():
    injector = FaultPlan(seed=7, crash_rate=0.0).injector()
    assert injector.crash_point(1.0) is None
    # Zero rate short-circuits without touching randomness at all.
    assert injector._draws == {}

    low = FaultPlan(seed=7, crash_rate=1e-9).injector()
    assert low.crash_point(1.0) is None
    assert low._draws.get("cluster.request") == 1
    assert "cluster.request.point" not in low._draws


def test_crash_point_sequence_independent_of_service_times():
    # Two replays drawing through the same plan see the same crash
    # decisions even when their service times differ (zero-length
    # requests included).
    a = FaultPlan(seed=11, crash_rate=0.5).injector()
    b = FaultPlan(seed=11, crash_rate=0.5).injector()
    decisions_a = [a.crash_point(s) is not None
                   for s in (1.0, 0.0, 2.0, 0.0, 3.0)]
    decisions_b = [b.crash_point(s) is not None
                   for s in (4.0, 5.0, 6.0, 7.0, 8.0)]
    # Zero-length requests can never crash, so mask them out of the
    # comparison; the underlying decision sequence still advances.
    expected = [d if s > 0 else False
                for d, s in zip(decisions_b, (1.0, 0.0, 2.0, 0.0, 3.0))]
    assert decisions_a == expected
