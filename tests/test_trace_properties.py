"""Property tests (hypothesis) for the trace interval algebra.

The paper's breakdowns (Fig. 1b, Fig. 7) and the timeline renderer all
rest on ``merge_intervals`` / ``subtract_intervals`` /
``exclusive_fractions`` being exact: no negative-length intervals, no
double counting, and attribution independent of bookkeeping order.  The
fault layer added two phases (FAULT, RETRY) that flow through the same
algebra, so the strategies here draw from every phase.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.trace import (
    Phase,
    TraceRecorder,
    merge_intervals,
    subtract_intervals,
)

intervals = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False),
              st.floats(0, 100, allow_nan=False)).map(
        lambda p: (min(p), max(p))),
    max_size=25)


def _measure(items):
    return sum(e - s for s, e in items)


# ----------------------------------------------------------------------
# merge_intervals
# ----------------------------------------------------------------------

@given(intervals)
def test_merge_is_idempotent(items):
    merged = merge_intervals(items)
    assert merge_intervals(merged) == merged


@given(intervals)
def test_merge_never_produces_negative_lengths(items):
    assert all(e >= s for s, e in merge_intervals(items))


@given(intervals, intervals)
def test_merge_is_order_insensitive(a, b):
    assert merge_intervals(a + b) == merge_intervals(b + a)


@given(intervals)
def test_merge_covers_every_input_point(items):
    merged = merge_intervals(items)
    for s, e in items:
        if e <= s:
            continue
        midpoint = (s + e) / 2
        assert any(ms <= midpoint <= me for ms, me in merged)


# ----------------------------------------------------------------------
# subtract_intervals
# ----------------------------------------------------------------------

@given(intervals, intervals)
def test_subtract_never_produces_negative_lengths(base, remove):
    difference = subtract_intervals(merge_intervals(base),
                                    merge_intervals(remove))
    assert all(e >= s for s, e in difference)


@given(intervals, intervals)
def test_subtract_is_idempotent(base, remove):
    merged_remove = merge_intervals(remove)
    difference = subtract_intervals(merge_intervals(base), merged_remove)
    assert subtract_intervals(difference, merged_remove) == difference


@given(intervals, intervals)
def test_subtract_conserves_coverage(base, remove):
    # Inclusion-exclusion: m(base \ remove) = m(base) - m(base ∩ remove)
    # with m(base ∩ remove) = m(base) + m(remove) - m(base ∪ remove).
    merged_base = merge_intervals(base)
    merged_remove = merge_intervals(remove)
    difference = subtract_intervals(merged_base, merged_remove)
    union = merge_intervals(merged_base + merged_remove)
    intersection = (_measure(merged_base) + _measure(merged_remove)
                    - _measure(union))
    assert abs(_measure(difference)
               - (_measure(merged_base) - intersection)) < 1e-6


@given(intervals)
def test_subtract_self_is_empty(items):
    merged = merge_intervals(items)
    assert _measure(subtract_intervals(merged, merged)) < 1e-9


# ----------------------------------------------------------------------
# exclusive_fractions (including the fault/retry phases)
# ----------------------------------------------------------------------

_ALL_PHASES = list(Phase)

trace_records = st.lists(
    st.tuples(st.floats(0, 1, allow_nan=False),
              st.floats(0, 1, allow_nan=False),
              st.sampled_from(_ALL_PHASES)).map(
        lambda t: (min(t[0], t[1]), max(t[0], t[1]), t[2])),
    min_size=1, max_size=30)


def _recorder(records):
    trace = TraceRecorder()
    for start, end, phase in records:
        trace.record(start, end, "actor", phase, "x")
    return trace


@settings(max_examples=50)
@given(trace_records)
def test_exclusive_fractions_are_a_partition(records):
    trace = _recorder(records)
    fractions = trace.exclusive_fractions(_ALL_PHASES, total_time=1.0)
    assert set(fractions) == set(_ALL_PHASES)
    assert all(v >= 0.0 for v in fractions.values())
    # Exclusive attribution can never exceed the wall clock.
    assert sum(fractions.values()) <= 1.0 + 1e-9
    # The union of all phases is what gets attributed, no matter which
    # phase wins each overlap -- so the total is priority-order invariant.
    reversed_total = sum(trace.exclusive_fractions(
        _ALL_PHASES[::-1], total_time=1.0).values())
    assert abs(sum(fractions.values()) - reversed_total) < 1e-9


@settings(max_examples=50)
@given(trace_records)
def test_exclusive_fractions_match_union_measure(records):
    trace = _recorder(records)
    fractions = trace.exclusive_fractions(_ALL_PHASES, total_time=1.0)
    union = merge_intervals((start, end) for start, end, _ in records)
    assert abs(sum(fractions.values()) - _measure(union)) < 1e-9


# ----------------------------------------------------------------------
# Retention equivalence: aggregate mode must be metric-invisible
# ----------------------------------------------------------------------

_ACTORS = ("gpu", "loader", "host")

streamed_records = st.lists(
    st.tuples(st.floats(0, 10, allow_nan=False),
              st.floats(0, 10, allow_nan=False),
              st.sampled_from(_ALL_PHASES),
              st.sampled_from(_ACTORS)).map(
        lambda t: (min(t[0], t[1]), max(t[0], t[1]), t[2], t[3])),
    max_size=40)


@settings(max_examples=80)
@given(streamed_records, st.integers(1, 8))
def test_aggregate_retention_metrics_equal_full(records, ring_size):
    full = TraceRecorder(retention="full")
    aggregate = TraceRecorder(retention="aggregate", ring_size=ring_size)
    for start, end, phase, actor in records:
        full.record(start, end, actor, phase, "x")
        aggregate.record(start, end, actor, phase, "x")
    for phase in _ALL_PHASES + [None]:
        assert aggregate.total(phase) == full.total(phase)
        assert aggregate.busy_time(phase) == full.busy_time(phase)
        for actor in _ACTORS:
            assert (aggregate.total(phase, actor)
                    == full.total(phase, actor))
            assert (aggregate.busy_time(phase, actor)
                    == full.busy_time(phase, actor))
    assert aggregate.span() == full.span()
    assert (aggregate.breakdown(_ALL_PHASES)
            == full.breakdown(_ALL_PHASES))
    assert (aggregate.exclusive_fractions(_ALL_PHASES)
            == full.exclusive_fractions(_ALL_PHASES))
    for actor in _ACTORS:
        assert aggregate.utilization(actor) == full.utilization(actor)
    assert aggregate.record_count == full.record_count
    assert aggregate.retained_records <= ring_size


@settings(max_examples=60)
@given(streamed_records)
def test_streaming_busy_time_matches_full_rescan(records):
    recorder = TraceRecorder(retention="aggregate", ring_size=1)
    for start, end, phase, actor in records:
        recorder.record(start, end, actor, phase)
    for phase in _ALL_PHASES + [None]:
        expected = merge_intervals(
            (s, e) for s, e, p, _ in records if phase is None or p is phase)
        assert recorder.busy_time(phase) == _measure(expected)


@given(trace_records)
def test_fault_phase_competes_like_any_other(records):
    # FAULT/RETRY records must not leak into other phases' exclusive
    # time: dropping them from the priority list can only shift their
    # share to lower-priority phases or to the unattributed remainder.
    trace = _recorder(records)
    with_faults = trace.exclusive_fractions(
        [Phase.FAULT, Phase.RETRY, Phase.EXEC, Phase.LOAD], total_time=1.0)
    without = trace.exclusive_fractions(
        [Phase.EXEC, Phase.LOAD], total_time=1.0)
    assert with_faults[Phase.EXEC] <= without[Phase.EXEC] + 1e-9
    assert with_faults[Phase.LOAD] <= without[Phase.LOAD] + 1e-9
