"""Paper-shape regression tests: every figure/table's qualitative claims.

These pin the *shape* of each reproduced result (orderings, trends,
rough magnitudes) per DESIGN.md's acceptance criteria -- not the paper's
absolute numbers, which came from real hardware.
"""

import pytest

from repro.core.schemes import Scheme
from repro.serving.experiments import CONV_MODELS, ExperimentSuite, \
    TRANSFORMER_MODELS
from repro.serving.metrics import mean

SUITE = ExperimentSuite("MI100")


@pytest.fixture(scope="module")
def fig1a():
    return SUITE.fig1a()


@pytest.fixture(scope="module")
def fig1b():
    return SUITE.fig1b()


@pytest.fixture(scope="module")
def fig6a():
    return SUITE.fig6a()


@pytest.fixture(scope="module")
def fig6b():
    return SUITE.fig6b()


@pytest.fixture(scope="module")
def table2():
    return SUITE.table2(batches=(1, 16, 128))


@pytest.fixture(scope="module")
def fig7():
    return SUITE.fig7()


@pytest.fixture(scope="module")
def fig8():
    return SUITE.fig8()


@pytest.fixture(scope="module")
def fig9():
    return SUITE.fig9()


class TestFig1a:
    def test_slowdowns_in_band(self, fig1a):
        """Average cold/hot slowdown per device within 15-40x."""
        for device, rows in fig1a.items():
            assert 15 <= rows["average"] <= 45, (device, rows["average"])

    def test_device_ordering(self, fig1a):
        """Consumer card worst, A100 best (paper: 31.3/23.7/19.5)."""
        assert (fig1a["6900XT"]["average"] > fig1a["MI100"]["average"]
                > fig1a["A100"]["average"])

    def test_every_model_slows_down_substantially(self, fig1a):
        for model, value in fig1a["MI100"].items():
            if model == "average":
                continue
            assert value > 3, (model, value)


class TestFig1b:
    def test_code_loading_dominates(self, fig1b):
        assert fig1b["average"]["code_loading"] > 0.55

    def test_gpu_execution_minor(self, fig1b):
        assert fig1b["average"]["gpu_execution"] < 0.15

    def test_fractions_sum_to_one(self, fig1b):
        for model, row in fig1b.items():
            assert sum(row.values()) == pytest.approx(1.0, abs=1e-6), model


class TestFig6a:
    def test_scheme_ordering_on_average(self, fig6a):
        assert (fig6a["Ideal"]["average"] > fig6a["PaSK"]["average"]
                > fig6a["NNV12"]["average"] > 1.0)

    def test_pask_average_band(self, fig6a):
        """PaSK average speedup in the 3-7x band (paper: 5.62x)."""
        assert 3.0 <= fig6a["PaSK"]["average"] <= 7.0

    def test_nnv12_average_band(self, fig6a):
        """NNV12 average speedup near the paper's 3.04x."""
        assert 2.0 <= fig6a["NNV12"]["average"] <= 4.0

    def test_ideal_average_band(self, fig6a):
        """Ideal average speedup near the paper's 7.75x."""
        assert 6.0 <= fig6a["Ideal"]["average"] <= 11.0

    def test_more_primitive_layers_more_speedup(self, fig6a):
        """eff/reg/ssd/unet benefit more than alex (the paper's trend)."""
        pask = fig6a["PaSK"]
        for big in ("eff", "reg", "ssd", "unet"):
            assert pask[big] > pask["alex"]

    def test_transformers_gain_least(self, fig6a):
        pask = fig6a["PaSK"]
        worst_transformer = max(pask[m] for m in TRANSFORMER_MODELS)
        conv_average = mean(pask[m] for m in CONV_MODELS)
        assert worst_transformer < conv_average


class TestFig6b:
    def test_utilization_ordering(self, fig6b):
        assert (fig6b["Ideal"]["average"] > fig6b["PaSK"]["average"]
                > fig6b["NNV12"]["average"])

    def test_nnv12_utilization_low(self, fig6b):
        assert fig6b["NNV12"]["average"] < 0.25

    def test_ideal_utilization_substantial(self, fig6b):
        assert fig6b["Ideal"]["average"] > 0.20


class TestTable2:
    def test_speedups_decrease_with_batch(self, table2):
        for scheme, per_batch in table2.items():
            batches = sorted(per_batch)
            values = [per_batch[b] for b in batches]
            assert values == sorted(values, reverse=True), (scheme, per_batch)

    def test_ordering_holds_at_every_batch(self, table2):
        for batch in (1, 16, 128):
            assert (table2["Ideal"][batch] > table2["PaSK"][batch]
                    > table2["NNV12"][batch] > 1.0)


class TestFig7:
    def test_pask_overhead_small(self, fig7):
        """Paper: 1.3% on average; we accept anything below 6%."""
        assert fig7["average"]["pask_overhead"] < 0.06

    def test_loading_share_reduced_but_present(self, fig7):
        """Paper reports 11.2%; our PaSK stays load-bound (see
        EXPERIMENTS.md) so we only pin that loading remains present and
        clearly below the baseline's ~90% share."""
        assert 0.30 < fig7["average"]["solution_loading"] < 0.85

    def test_transformer_loading_share_larger(self, fig7):
        transformer = mean(fig7[m]["solution_loading"]
                           for m in TRANSFORMER_MODELS)
        conv = mean(fig7[m]["solution_loading"] for m in CONV_MODELS)
        assert transformer > conv

    def test_fractions_sum_to_one(self, fig7):
        for model, row in fig7.items():
            assert sum(row.values()) == pytest.approx(1.0, abs=1e-6), model


class TestFig8:
    def test_variants_never_beat_full_pask(self, fig8):
        for scheme, rows in fig8.items():
            for model, value in rows.items():
                assert value <= 1.0 + 1e-9, (scheme, model, value)

    def test_variants_meaningfully_slower_on_average(self, fig8):
        assert fig8["PaSK-I"]["average"] < 0.85
        assert fig8["PaSK-R"]["average"] < 0.85

    def test_transformers_show_nuances_only(self, fig8):
        """Transformer models barely differ between PaSK and PaSK-I."""
        for model in TRANSFORMER_MODELS:
            assert fig8["PaSK-I"][model] > 0.95


class TestFig9:
    def test_hit_rate_band(self, fig9):
        """Paper: 69.7% average hit rate; we accept 0.5-0.95."""
        assert 0.50 <= fig9["average"]["hit_rate"] <= 0.95

    def test_categorical_fewer_lookups_than_naive(self, fig9):
        assert (fig9["average"]["lookups_categorical"]
                < fig9["average"]["lookups_naive"])

    def test_lookups_magnitude(self, fig9):
        """Paper: 1.22 vs 1.89 lookups/query; accept ~0.5-5."""
        assert 0.3 <= fig9["average"]["lookups_categorical"] <= 2.5
        assert 0.8 <= fig9["average"]["lookups_naive"] <= 5.0

    def test_deeper_models_hit_more_than_alexnet(self, fig9):
        assert fig9["eff"]["hit_rate"] > fig9["alex"]["hit_rate"]
        assert fig9["reg"]["hit_rate"] > fig9["alex"]["hit_rate"]
