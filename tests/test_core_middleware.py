"""Focused tests for the PASK middleware's interleaved pipeline."""

import pytest

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.engine import LoweringOptions, lower
from repro.gpu import HipRuntime, MI100
from repro.graph import GraphBuilder
from repro.primitive import BlasLibrary, MIOpenLibrary
from repro.sim import Environment, Phase

LIBRARY = MIOpenLibrary(MI100)
BLAS = BlasLibrary(MI100)


def repeated_conv_graph(n_convs=8, channels=32):
    """Many same-bucket 3x3 convs: maximal reuse opportunity."""
    b = GraphBuilder("repeat")
    x = b.input("x", (1, channels, 56, 56))
    for i in range(n_convs):
        # Alternate channel counts so the exact signatures differ while
        # the kernel-config bucket stays the same.
        out = channels * (2 if i % 2 else 1)
        x = b.conv(x, out, 3, pad=1, name=f"c{i}")
        x = b.relu(x, name=f"r{i}")
    b.output(x)
    return b.finish()


def run_middleware(program, config=None):
    env = Environment()
    runtime = HipRuntime(env, MI100)
    middleware = PaskMiddleware(env, runtime, LIBRARY, BLAS, config)
    outcome = {}

    def driver():
        stats = yield from middleware.execute(program)
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    return env, runtime, middleware, outcome


@pytest.fixture(scope="module")
def program():
    return lower(repeated_conv_graph(), LIBRARY)


class TestPipeline:
    def test_executes_every_instruction(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        # All primitive layers must have run kernels on the GPU.
        exec_records = runtime.trace.filtered(phase=Phase.EXEC, actor="gpu")
        assert len(exec_records) >= len(program.primitive_instructions)

    def test_parse_load_issue_threads_traced(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        actors = {r.actor for r in runtime.trace.records}
        assert {"parser", "loader", "gpu"} <= actors

    def test_parsing_overlaps_loading(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        parse = runtime.trace.filtered(phase=Phase.PARSE)
        load = runtime.trace.filtered(phase=Phase.LOAD)
        first_load_start = min(r.start for r in load)
        last_parse_end = max(r.end for r in parse)
        assert first_load_start < last_parse_end

    def test_milestone_and_reuse(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        assert outcome["milestone"] is not None
        assert outcome["reused_layers"] > 0
        assert outcome["skipped_loads"] == outcome["reused_layers"]

    def test_reuse_disabled_loads_everything(self, program):
        _, runtime_on, _, on = run_middleware(program)
        _, runtime_off, _, off = run_middleware(
            program, PaskConfig(reuse_enabled=False))
        assert off["reused_layers"] == 0
        assert runtime_off.load_count > runtime_on.load_count

    def test_reuse_finishes_faster(self, program):
        env_on, *_ = run_middleware(program)
        env_off, *_ = run_middleware(program, PaskConfig(reuse_enabled=False))
        assert env_on.now < env_off.now

    def test_naive_cache_config(self, program):
        _, _, middleware, outcome = run_middleware(
            program, PaskConfig(categorical_cache=False))
        from repro.core.cache import NaiveSolutionCache
        assert isinstance(middleware.cache, NaiveSolutionCache)
        assert outcome["cache_stats"].queries > 0

    def test_check_time_recorded_for_queries(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        if outcome["cache_stats"].total_lookups:
            assert runtime.trace.busy_time(phase=Phase.CHECK) > 0

    def test_deterministic(self, program):
        env_a, runtime_a, _, a = run_middleware(program)
        env_b, runtime_b, _, b = run_middleware(program)
        assert env_a.now == env_b.now
        assert runtime_a.load_count == runtime_b.load_count
        assert a["milestone"] == b["milestone"]


class TestReuseCorrectness:
    def test_reused_layers_execute_on_gpu(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        reused_execs = [r for r in runtime.trace.filtered(phase=Phase.EXEC)
                        if "reused" in r.label]
        assert len(reused_execs) >= outcome["reused_layers"]

    def test_cache_contains_only_loaded_binaries(self, program):
        env, runtime, middleware, outcome = run_middleware(program)
        for entry in middleware.cache.entries():
            assert runtime.is_loaded(entry.key)


class TestSmallPrograms:
    def test_single_instruction_program(self):
        b = GraphBuilder("one")
        x = b.input("x", (1, 8, 16, 16))
        b.output(b.conv(x, 8, 3, pad=1))
        program = lower(b.finish(), LIBRARY)
        env, runtime, middleware, outcome = run_middleware(program)
        assert runtime.load_count >= 1

    def test_noop_only_tail(self):
        b = GraphBuilder("tail")
        x = b.input("x", (1, 8, 16, 16))
        y = b.conv(x, 8, 3, pad=1)
        y = b.flatten(y)
        y = b.reshape(y, (8, -1))
        b.output(y)
        program = lower(b.finish(), LIBRARY)
        env, runtime, middleware, outcome = run_middleware(program)
        assert env.now > 0
