"""Autoscaling hysteresis edges: billing around scale-to-zero.

The invariant the issue pins: a request arriving after the pool scaled
to zero bills **exactly one** spin-up — one cold start (or, under
checkpoint restore, one restore), never zero (the cost silently
skipped) and never two (double-billed).  The boundary cases are exact:
an idle gap of precisely the idle timeout keeps the instance; any
longer reclaims it.
"""

import pytest

from repro.core.schemes import Scheme
from repro.fleet import (AutoscalePolicy, FleetConfig, FleetSimulator,
                         FleetTrace, RegionConfig)
from repro.serving.requests import RequestTrace, periodic_trace
from repro.serving.server import InferenceServer

_SERVER = InferenceServer("MI100")
_IDLE = 0.5


def _run(arrivals, autoscale, instances=2):
    config = FleetConfig(
        regions=(RegionConfig("r0", device="MI100", scheme=Scheme.PASK,
                              max_instances=instances,
                              keep_alive_s=1000.0),),
        autoscale=autoscale)
    trace = RequestTrace("res", tuple(arrivals))
    stats = FleetSimulator(config, servers={"MI100": _SERVER}).run(
        FleetTrace.from_request_trace(trace))
    assert not stats.delegated  # non-inert autoscale => general path
    assert stats.conserved
    return stats


def _scale_to_zero(**kwargs):
    return AutoscalePolicy(kind="scale-to-zero", idle_timeout_s=_IDLE,
                           **kwargs)


def _cold_service():
    # Latency of an uncontended cold start == the cold service time.
    stats = _run([0.0], _scale_to_zero())
    assert stats.cold_starts == 1
    return stats.latencies[0]


class TestScaleToZeroHysteresis:
    def test_gap_beyond_timeout_bills_exactly_one_cold_start(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE + 1.0], _scale_to_zero())
        region = stats.regions["r0"]
        assert region.cold_starts == 2  # initial + exactly one re-spawn
        assert region.warm_hits == 0
        assert region.restores == 0
        # Never zero: the full spin-up cost lands on the request.
        assert stats.latencies[1] == pytest.approx(cold)

    def test_gap_within_timeout_bills_nothing(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE / 2.0], _scale_to_zero())
        region = stats.regions["r0"]
        assert region.cold_starts == 1
        assert region.warm_hits == 1
        assert stats.latencies[1] < stats.latencies[0]

    def test_gap_exactly_at_timeout_keeps_the_instance(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE], _scale_to_zero())
        region = stats.regions["r0"]
        assert region.cold_starts == 1
        assert region.warm_hits == 1

    def test_hair_past_timeout_reclaims(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE + 1e-9], _scale_to_zero())
        region = stats.regions["r0"]
        assert region.cold_starts == 2
        assert region.warm_hits == 0

    def test_repeated_cycles_bill_once_each(self):
        cold = _cold_service()
        cycle = cold + _IDLE + 1.0
        stats = _run([i * cycle for i in range(5)], _scale_to_zero())
        region = stats.regions["r0"]
        assert region.cold_starts == 5
        assert region.warm_hits == 0

    def test_min_instances_floor_prevents_rebilling(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE + 5.0],
                     _scale_to_zero(min_instances=1))
        region = stats.regions["r0"]
        assert region.cold_starts == 1
        assert region.warm_hits == 1


class TestCheckpointRestoreBilling:
    def test_restore_replaces_the_second_cold_start(self):
        cold = _cold_service()
        stats = _run([0.0, cold + _IDLE + 1.0],
                     _scale_to_zero(checkpoint_restore=True))
        region = stats.regions["r0"]
        # Exactly one cold start (first ever spawn: no checkpoint yet)
        # and exactly one restore -- never both for one request.
        assert region.cold_starts == 1
        assert region.restores == 1
        assert region.restore_s > 0.0
        # The restore is cheaper than the cold start but not free.
        warm = stats.latencies[1] - region.restore_s
        assert warm < stats.latencies[1] < stats.latencies[0]

    def test_first_spawn_never_restores(self):
        stats = _run([0.0], _scale_to_zero(checkpoint_restore=True))
        region = stats.regions["r0"]
        assert region.cold_starts == 1
        assert region.restores == 0

    def test_restore_count_matches_cycles(self):
        cold = _cold_service()
        cycle = cold + _IDLE + 1.0
        stats = _run([i * cycle for i in range(4)],
                     _scale_to_zero(checkpoint_restore=True))
        region = stats.regions["r0"]
        assert region.cold_starts == 1
        assert region.restores == 3

    def test_on_path_spinups_never_exceed_one_per_request(self):
        cold = _cold_service()
        arrivals = sorted([0.0, 0.001, cold + _IDLE + 1.0,
                           cold + _IDLE + 1.001,
                           2 * (cold + _IDLE + 1.0)])
        stats = _run(arrivals, _scale_to_zero(checkpoint_restore=True))
        region = stats.regions["r0"]
        assert (region.cold_starts + region.restores
                + region.warm_hits) == len(arrivals)


class TestReactiveScaling:
    def test_queueing_grows_the_cap(self):
        trace = periodic_trace("res", 0.001, 12)
        policy = AutoscalePolicy(kind="reactive", min_instances=1,
                                 scale_up_wait_s=0.0005)
        stats = _run(trace.arrivals, policy, instances=4)
        region = stats.regions["r0"]
        assert region.scale_ups > 0
        assert stats.conserved

    def test_quiet_period_scales_down(self):
        arrivals = [0.0, 0.001, 0.002, 10.0]
        policy = AutoscalePolicy(kind="reactive", min_instances=1,
                                 scale_up_wait_s=0.0005,
                                 scale_down_idle_s=1.0)
        stats = _run(arrivals, policy, instances=4)
        assert stats.regions["r0"].scale_downs > 0


class TestPredictivePrewarm:
    # The prewarm target is ceil(EWMA rate x warm service x headroom),
    # so firing it takes arrivals packed tighter than the ~1.6 ms warm
    # service time (rate x headroom on the order of thousands).
    def test_prewarm_is_billed_off_path(self):
        trace = periodic_trace("res", 0.0005, 60)
        policy = AutoscalePolicy(kind="predictive", prewarm_headroom=8.0,
                                 prewarm_cooldown_s=0.001)
        stats = _run(trace.arrivals, policy, instances=4)
        region = stats.regions["r0"]
        assert region.prewarm_spawns > 0
        assert region.prewarm_s > 0.0
        # Off-path spin-ups never show up as on-path cold starts: every
        # request still accounts to exactly one serving mode.
        assert (region.cold_starts + region.restores
                + region.warm_hits) == region.completed

    def test_prewarm_respects_checkpoint_restore(self):
        trace = periodic_trace("res", 0.0005, 60)
        policy = AutoscalePolicy(kind="predictive", prewarm_headroom=8.0,
                                 prewarm_cooldown_s=0.001,
                                 checkpoint_restore=True)
        stats = _run(trace.arrivals, policy, instances=4)
        region = stats.regions["r0"]
        assert region.prewarm_spawns > 0
        assert region.prewarm_restores > 0
        assert region.prewarm_restores <= region.prewarm_spawns
