"""Unit tests for repro.obs.spans: recorder, causal links, null path."""

import pytest

import repro.obs.spans as spans_mod
from repro.core.schemes import Scheme
from repro.obs import NULL_RECORDER, Span, SpanRecorder
from repro.serving.server import InferenceServer
from repro.sim.trace import Phase, TraceRecorder


class TestSpanRecorder:
    def test_observe_mirrors_record_floats(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        rec = trace.record(0.125, 0.375, "gpu", Phase.EXEC, "k1")
        assert len(spans) == 1
        span = spans.spans[0]
        assert span.interval == (rec.start, rec.end)
        assert span.category == "exec"
        assert span.actor == "gpu"
        assert span.name == "k1"

    def test_span_ids_sequential_from_one(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        for i in range(3):
            trace.record(i, i + 1, "gpu", Phase.EXEC, f"k{i}")
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_request_context_parents_observed_spans(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        with spans.request("req", model="res") as req_id:
            trace.record(0.0, 1.0, "gpu", Phase.EXEC, "inside")
        trace.record(1.0, 2.0, "gpu", Phase.EXEC, "outside")
        inside = next(s for s in spans if s.name == "inside")
        outside = next(s for s in spans if s.name == "outside")
        request = spans.requests()[0]
        assert request.span_id == req_id
        assert request.attrs == (("model", "res"),)
        assert inside.parent_id == req_id
        assert outside.parent_id is None

    def test_request_id_reserved_before_children(self):
        # The request opens before its children, so its id sorts first
        # even though the span object is appended at close.
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        with spans.request("req") as req_id:
            trace.record(0.0, 1.0, "gpu", Phase.EXEC, "child")
        child = next(s for s in spans if s.name == "child")
        assert req_id < child.span_id

    def test_exec_links_to_load_and_check(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        trace.record(0.0, 1.0, "loader", Phase.LOAD, "mod_a")
        trace.record(1.0, 1.1, "host", Phase.CHECK, "layer0")
        spans.stage_exec_links("mod_a", "layer0")
        trace.record(1.1, 2.0, "gpu", Phase.EXEC, "layer0")
        exec_span = spans.filtered(category="exec")[0]
        load_id = spans.filtered(category="load")[0].span_id
        check_id = spans.filtered(category="check")[0].span_id
        assert set(exec_span.links) == {load_id, check_id}

    def test_check_link_falls_back_on_base_label(self):
        # "layer0/reused" finds the CHECK span recorded as "layer0".
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        trace.record(0.0, 0.1, "host", Phase.CHECK, "layer0")
        spans.stage_exec_links("mod_a", "layer0/reused")
        trace.record(0.1, 0.5, "gpu", Phase.EXEC, "layer0/reused")
        exec_span = spans.filtered(category="exec")[0]
        assert exec_span.links == (spans.filtered(category="check")[0].span_id,)

    def test_staged_links_consumed_only_by_exec(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        trace.record(0.0, 1.0, "loader", Phase.LOAD, "mod_a")
        spans.stage_exec_links("mod_a", "layer0")
        # A FAULT record in between must not steal the staged links.
        trace.record(1.0, 1.0, "gpu", Phase.FAULT, "boom")
        trace.record(1.0, 2.0, "gpu", Phase.EXEC, "layer0")
        fault = spans.filtered(category="fault")[0]
        exec_span = spans.filtered(category="exec")[0]
        assert fault.links == ()
        assert exec_span.links != ()

    def test_drop_staged_discards_links(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        trace.record(0.0, 1.0, "loader", Phase.LOAD, "mod_a")
        spans.stage_exec_links("mod_a", "layer0")
        spans.drop_staged()
        trace.record(1.0, 2.0, "gpu", Phase.EXEC, "layer0")
        assert spans.filtered(category="exec")[0].links == ()

    def test_event_is_zero_duration_marker(self):
        spans = SpanRecorder()
        span = spans.event("plan:layer0", 0.5, actor="loader", plan="preload")
        assert span.duration == 0.0
        assert span.category == "decision"
        assert ("plan", "preload") in span.attrs

    def test_span_context_uses_clock(self):
        ticks = iter([1.0, 3.5])
        spans = SpanRecorder(clock=lambda: next(ticks))
        with spans.span("section", actor="host"):
            pass
        assert spans.spans[0].interval == (1.0, 3.5)

    def test_by_id_and_filtered(self):
        trace = TraceRecorder()
        spans = SpanRecorder()
        spans.bind(trace)
        trace.record(0.0, 1.0, "gpu", Phase.EXEC, "k")
        trace.record(0.0, 1.0, "loader", Phase.LOAD, "m")
        assert set(spans.by_id()) == {1, 2}
        assert [s.name for s in spans.filtered(actor="loader")] == ["m"]


class TestNullRecorder:
    def test_singleton_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert SpanRecorder.enabled is True

    def test_contexts_are_shared_and_noop(self):
        first = NULL_RECORDER.request("a")
        second = NULL_RECORDER.span("b")
        assert first is second  # one shared context object, ever
        with first:
            pass

    def test_bind_leaves_observer_untouched(self):
        trace = TraceRecorder()
        NULL_RECORDER.bind(trace)
        assert trace.observer is None

    def test_disabled_serve_allocates_no_span_objects(self, monkeypatch):
        # Pin the zero-cost claim: with telemetry off, serving never
        # constructs a Span (or a live span context).  Any allocation
        # would trip the poisoned constructors.
        def boom(*args, **kwargs):
            raise AssertionError("span object allocated on the null path")

        monkeypatch.setattr(spans_mod.Span, "__init__", boom)
        monkeypatch.setattr(spans_mod._SpanContext, "__init__", boom)
        server = InferenceServer("MI100")
        result = server.serve_cold("res", Scheme.PASK)
        assert result.total_time > 0

    def test_telemetry_does_not_perturb_simulation(self):
        # The observer only mirrors records; simulated results with
        # spans on are byte-identical to the plain run.
        server = InferenceServer("MI100")
        plain = server.serve_cold("res", Scheme.PASK)
        observed = server.serve_cold("res", Scheme.PASK,
                                     spans=SpanRecorder())
        assert observed.total_time == plain.total_time
        assert observed.trace.records == plain.trace.records


class TestSpan:
    def test_duration_and_interval(self):
        span = Span(1, "k", "exec", "gpu", 0.25, 0.75)
        assert span.duration == 0.5
        assert span.interval == (0.25, 0.75)

    def test_frozen(self):
        span = Span(1, "k", "exec", "gpu", 0.0, 1.0)
        with pytest.raises(AttributeError):
            span.name = "other"
