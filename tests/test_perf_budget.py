"""Regression tests for ``scripts/check_perf_budget.py``.

The script dispatches each budget entry on its ``kind``; a typo used to
fall back silently to the cluster profile, timing the wrong thing while
still printing ``ok``.  These tests pin the loud-failure contract: an
unrecognized kind exits 2 before anything is measured, and the per-kind
wall-clock extraction reads the field the budget actually gates.
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir,
                       "scripts", "check_perf_budget.py")


@pytest.fixture(scope="module")
def budget_script():
    spec = importlib.util.spec_from_file_location("check_perf_budget",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_budget(tmp_path, entries, **top):
    payload = {"entries": entries, **top}
    path = tmp_path / "budget.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestKindDispatch:
    def test_known_kinds_cover_every_profile(self, budget_script):
        assert budget_script.KNOWN_KINDS == ("cluster", "fleet", "packs")

    def test_unknown_kind_exits_2_without_measuring(self, budget_script,
                                                    tmp_path, capsys,
                                                    monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("measured an entry with a bad kind")
        monkeypatch.setattr(budget_script, "_measure", boom)
        path = _write_budget(tmp_path, [
            {"name": "typo", "kind": "flet", "requests": 10,
             "budget_s": 1.0}])
        assert budget_script.main([path]) == 2
        err = capsys.readouterr().err
        assert "flet" in err and "cluster" in err

    def test_missing_kind_defaults_to_cluster(self, budget_script):
        entry = {"name": "x", "requests": 10, "budget_s": 1.0}

        class Profile:
            wall_s = 0.5
            wall_pack_s = 99.0
        assert budget_script._wall(entry, Profile()) == 0.5

    def test_packs_kind_gates_the_pack_leg(self, budget_script):
        entry = {"name": "x", "kind": "packs", "requests": 10,
                 "budget_s": 1.0}

        class Profile:
            wall_s = 99.0
            wall_pack_s = 0.25
        assert budget_script._wall(entry, Profile()) == 0.25

    def test_usage_error_exits_2(self, budget_script):
        assert budget_script.main([]) == 2
        assert budget_script.main(["a", "b"]) == 2


class TestEndToEnd:
    def test_tiny_cluster_budget_passes(self, budget_script, tmp_path,
                                        capsys):
        path = _write_budget(
            tmp_path,
            [{"name": "tiny", "requests": 50, "trace_retention": None,
              "fast_forward": True, "budget_s": 30.0}],
            repeats=1, rate_hz=50.0)
        assert budget_script.main([path]) == 0
        assert "all measurements within budget" in capsys.readouterr().out

    def test_tiny_packs_budget_passes(self, budget_script, tmp_path,
                                      capsys):
        path = _write_budget(
            tmp_path,
            [{"name": "tiny-packs", "kind": "packs", "requests": 50,
              "budget_s": 30.0}],
            repeats=1, rate_hz=50.0)
        assert budget_script.main([path]) == 0
        out = capsys.readouterr().out
        assert "restores=" in out

    def test_regression_exits_1(self, budget_script, tmp_path, capsys):
        path = _write_budget(
            tmp_path,
            [{"name": "impossible", "requests": 50,
              "trace_retention": None, "fast_forward": True,
              "budget_s": 0.0}],
            repeats=1, rate_hz=50.0)
        assert budget_script.main([path]) == 1
        assert "REGRESSION" in capsys.readouterr().out
