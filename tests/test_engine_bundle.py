"""Tests for the per-model engine JIT bundle and the occupancy model."""

import pytest

from repro.engine import InstrKind, LoweringOptions, lower
from repro.gpu import MI100
from repro.graph import GraphBuilder
from repro.primitive import MIOpenLibrary
from repro.primitive.perf_model import occupancy

LIBRARY = MIOpenLibrary(MI100)


def graph_with_engine_kernels():
    b = GraphBuilder("bundle_test")
    x = b.input("x", (1, 8, 16, 16))
    y = b.conv(x, 8, 3, pad=1)
    z = b.add(y, x, name="add1")
    z = b.softmax(z, name="sm1")
    b.output(z)
    return b.finish()


class TestEngineBundle:
    def test_bundle_exists_with_engine_kernels(self):
        program = lower(graph_with_engine_kernels(), LIBRARY)
        bundle = program.engine_bundle
        assert bundle is not None
        assert bundle.name.startswith("mgx_jit_bundle_test")

    def test_bundle_has_one_symbol_per_distinct_kernel(self):
        program = lower(graph_with_engine_kernels(), LIBRARY)
        engine_kernels = {i.engine_kernel.name
                          for i in program.of_kind(InstrKind.ENGINE_KERNEL)}
        assert {s.name for s in program.engine_bundle.symbols} == engine_kernels

    def test_no_bundle_without_engine_kernels(self):
        b = GraphBuilder("pure_conv")
        x = b.input("x", (1, 8, 16, 16))
        b.output(b.conv(x, 8, 3, pad=1))
        program = lower(b.finish(), LIBRARY)
        assert program.engine_bundle is None

    def test_bundle_size_grows_with_kernels(self):
        small = lower(graph_with_engine_kernels(), LIBRARY)
        b = GraphBuilder("bundle_test")   # same name, more kernels
        x = b.input("x", (1, 8, 16, 16))
        y = b.conv(x, 8, 3, pad=1)
        z = b.add(y, x)
        z = b.softmax(z)
        z = b.layernorm(z)
        z = b.mul(z, x)
        b.output(z)
        large = lower(b.finish(), LIBRARY)
        assert (large.engine_bundle.size_bytes
                > small.engine_bundle.size_bytes)

    def test_bundle_deterministic_across_recomputation(self):
        program = lower(graph_with_engine_kernels(), LIBRARY)
        a = program.engine_bundle
        b = program.engine_bundle
        assert a.name == b.name
        assert a.size_bytes == b.size_bytes

    def test_bundle_name_depends_on_batch(self):
        g = graph_with_engine_kernels()
        p1 = lower(g, LIBRARY, LoweringOptions(batch=1))
        p8 = lower(g, LIBRARY, LoweringOptions(batch=8))
        assert p1.engine_bundle.name != p8.engine_bundle.name


class TestOccupancy:
    def test_floor_for_tiny_kernels(self):
        assert occupancy(0) == pytest.approx(0.30)

    def test_saturates_at_knee(self):
        assert occupancy(40e6) == pytest.approx(1.0)
        assert occupancy(1e9) == 1.0

    def test_monotone(self):
        values = [occupancy(b) for b in (0, 1e6, 1e7, 4e7, 1e8)]
        assert values == sorted(values)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            occupancy(-1)
