"""Streaming trace aggregation: retention policies and byte-identity.

The streaming accumulators must be a pure acceleration structure: every
aggregate metric under ``retention="aggregate"`` (bounded memory) equals
the ``retention="full"`` value bit-for-bit, including on the real traces
the golden-regression model × scheme grid produces.
"""

import json

import pytest

from repro.core.schemes import Scheme
from repro.models import list_models
from repro.serving.server import InferenceServer
from repro.sim.trace import (RETENTION_POLICIES, Phase, TraceRecord,
                             TraceRecorder, merge_intervals)

_SCHEMES = (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)
_SERVER = InferenceServer("MI100")


def _reingest(trace, retention, ring_size=64):
    clone = TraceRecorder(retention=retention, ring_size=ring_size)
    for rec in trace.records:
        clone.ingest(rec)
    return clone


def _assert_metrics_identical(a, b):
    phases = list(Phase) + [None]
    actors = {None}
    for rec in b.filtered() if b.retention == "full" else []:
        actors.add(rec.actor)
    for phase in phases:
        assert a.total(phase) == b.total(phase)
        assert a.busy_time(phase) == b.busy_time(phase)
    for actor in actors:
        assert a.total(actor=actor) == b.total(actor=actor)
        assert a.busy_time(actor=actor) == b.busy_time(actor=actor)
    assert a.span() == b.span()
    assert a.breakdown(list(Phase)) == b.breakdown(list(Phase))
    assert (a.exclusive_fractions(list(Phase))
            == b.exclusive_fractions(list(Phase)))
    assert a.utilization("gpu") == b.utilization("gpu")
    assert a.record_count == b.record_count


# ----------------------------------------------------------------------
# Byte identity across the golden model x scheme grid
# ----------------------------------------------------------------------

@pytest.mark.parametrize("model", list_models())
@pytest.mark.parametrize("scheme", _SCHEMES, ids=lambda s: s.value)
def test_aggregate_metrics_bit_identical_on_real_traces(model, scheme):
    trace = _SERVER.serve_cold(model, scheme).trace
    aggregate = _reingest(trace, "aggregate")
    _assert_metrics_identical(aggregate, trace)
    # The ring genuinely bounds memory on these traces.
    assert aggregate.retained_records <= 64
    assert aggregate.record_count == len(trace.records)


def test_streaming_metrics_match_full_rescan():
    # The accumulators must agree with a brute-force re-merge of the
    # record history, not just with each other.
    trace = _SERVER.serve_cold("res", Scheme.PASK).trace
    for phase in (Phase.EXEC, Phase.LOAD, Phase.CHECK, None):
        records = [r for r in trace.records
                   if phase is None or r.phase is phase]
        assert trace.total(phase) == sum(r.duration for r in records)
        merged = merge_intervals((r.start, r.end) for r in records)
        assert trace.busy_time(phase) == sum(e - s for s, e in merged)


# ----------------------------------------------------------------------
# Retention policy behavior
# ----------------------------------------------------------------------

def test_retention_policies_are_validated():
    assert set(RETENTION_POLICIES) == {"full", "aggregate"}
    with pytest.raises(ValueError):
        TraceRecorder(retention="bogus")
    with pytest.raises(ValueError):
        TraceRecorder(retention="aggregate", ring_size=0)


def test_aggregate_ring_is_bounded():
    recorder = TraceRecorder(retention="aggregate", ring_size=8)
    for i in range(100):
        recorder.record(float(i), float(i) + 0.5, "gpu", Phase.EXEC)
    assert recorder.record_count == 100
    assert recorder.retained_records == 8
    # The ring holds the most recent records.
    assert [r.start for r in recorder.filtered()] == [
        float(i) for i in range(92, 100)]
    # Aggregates cover the full history, not just the ring.
    assert recorder.total(Phase.EXEC) == pytest.approx(50.0)
    assert recorder.span() == (0.0, 99.5)


def test_aggregate_filtered_sees_only_the_ring():
    recorder = TraceRecorder(retention="aggregate", ring_size=4)
    for i in range(10):
        recorder.record(float(i), float(i) + 1.0, "gpu", Phase.EXEC)
    assert len(recorder.filtered(phase=Phase.EXEC)) == 4
    assert len(recorder.filtered(actor="gpu")) == 4


def test_full_retention_filtered_no_copy():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    assert recorder.filtered() is recorder.records


def test_clear_resets_aggregates():
    recorder = TraceRecorder(retention="aggregate", ring_size=4)
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    recorder.clear()
    assert recorder.record_count == 0
    assert recorder.retained_records == 0
    assert recorder.total() == 0.0
    assert recorder.span() == (0.0, 0.0)


def test_legacy_direct_append_is_folded_lazily():
    # Pre-streaming callers append TraceRecords straight onto .records;
    # metrics must still see them (full retention only).
    recorder = TraceRecorder()
    recorder.records.append(TraceRecord(0.0, 2.0, "gpu", Phase.EXEC))
    recorder.records.append(TraceRecord(1.0, 3.0, "gpu", Phase.EXEC))
    assert recorder.total(Phase.EXEC) == pytest.approx(4.0)
    assert recorder.busy_time(Phase.EXEC) == pytest.approx(3.0)
    assert recorder.record_count == 2
    assert recorder.span() == (0.0, 3.0)


def test_external_truncation_rebuilds_aggregates():
    recorder = TraceRecorder()
    recorder.record(0.0, 1.0, "gpu", Phase.EXEC)
    recorder.record(5.0, 6.0, "gpu", Phase.EXEC)
    del recorder.records[1:]
    assert recorder.record_count == 1
    assert recorder.total(Phase.EXEC) == pytest.approx(1.0)
    assert recorder.span() == (0.0, 1.0)


def test_out_of_order_records_merge_correctly():
    # The online union must match merge_intervals even when starts
    # arrive out of order (the bisect fallback path).
    recorder = TraceRecorder(retention="aggregate", ring_size=2)
    spans = [(5.0, 6.0), (0.0, 1.0), (0.5, 2.0), (4.0, 5.5), (3.0, 3.0)]
    for start, end in spans:
        recorder.record(start, end, "gpu", Phase.EXEC)
    merged = merge_intervals(spans)
    assert recorder.busy_time(Phase.EXEC) == sum(e - s for s, e in merged)
    assert recorder.total(Phase.EXEC) == sum(e - s for s, e in spans)


# ----------------------------------------------------------------------
# State round-trip (what the runner payloads use)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("retention", RETENTION_POLICIES)
def test_state_dict_round_trips_through_json(retention):
    recorder = TraceRecorder(retention=retention, ring_size=4)
    for i in range(12):
        recorder.record(i * 0.1, i * 0.1 + 0.05, "gpu", Phase.EXEC, "k",
                        layer=i)
    state = json.loads(json.dumps(recorder.state_dict()))
    clone = TraceRecorder.from_state(state)
    assert clone.retention == recorder.retention
    assert list(clone.records) == list(recorder.records)
    _assert_metrics_identical(clone, recorder)
