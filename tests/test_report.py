"""Tests for the ASCII report renderers."""

import pytest

from repro.report import bar_chart, format_table, grouped_bars


class TestFormatTable:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["xy", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in lines[2]
        assert "3.25" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_precision(self):
        text = format_table(["x"], [[1.23456]], precision=4)
        assert "1.2346" in text

    def test_column_width_adapts(self):
        text = format_table(["h"], [["wide-content"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart({"small": 1.0, "big": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_zero_values(self):
        text = bar_chart({"z": 0.0})
        assert "#" not in text


class TestGroupedBars:
    def test_groups_render(self):
        text = grouped_bars({"m1": {"a": 1.0, "b": 2.0},
                             "m2": {"a": 0.5}}, width=8)
        assert "m1:" in text and "m2:" in text
        assert text.count("|") == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars({})
