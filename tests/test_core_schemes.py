"""Integration tests for the six serving schemes on real zoo models."""

import pytest

from repro.core.schemes import Scheme, program_code_objects
from repro.serving.experiments import ExperimentSuite
from repro.sim.trace import Phase

SUITE = ExperimentSuite("MI100")


def cold(model, scheme, batch=1):
    return SUITE.cold(model, scheme, batch)


class TestSchemeBasics:
    def test_labels(self):
        assert Scheme.PASK.label == "PaSK"
        assert Scheme.PASK_I.label == "PaSK-I"
        assert Scheme.BASELINE.label == "Baseline"

    def test_nnv12_lowering_policy(self):
        options = Scheme.NNV12.lowering_options(batch=4)
        assert options.native_layout_only
        assert options.consolidate_buckets
        assert options.batch == 4
        default = Scheme.BASELINE.lowering_options()
        assert not default.native_layout_only

    def test_unknown_scheme_rejected(self):
        from repro.core.schemes import build_executor
        with pytest.raises(ValueError):
            build_executor("not-a-scheme")


class TestProgramCodeObjects:
    def test_covers_all_instruction_kinds(self):
        server = SUITE.server()
        program = server._lowered("res", Scheme.BASELINE, 1)
        code_objects = program_code_objects(program, server.library,
                                            server.blas)
        names = {co.name for co in code_objects}
        assert any(name.startswith("mgx_jit_") for name in names)
        assert any(name.startswith("Blas") for name in names)
        assert len(names) == len(code_objects)  # deduplicated


class TestSchemeOrdering:
    """The headline qualitative result: Ideal > PaSK > NNV12 > Baseline."""

    @pytest.mark.parametrize("model", ["vgg", "res", "reg", "eff", "ssd",
                                       "unet", "fcn"])
    def test_scheme_ordering_conv_models(self, model):
        base = cold(model, Scheme.BASELINE).total_time
        nnv12 = cold(model, Scheme.NNV12).total_time
        pask = cold(model, Scheme.PASK).total_time
        ideal = cold(model, Scheme.IDEAL).total_time
        assert ideal < pask < nnv12 < base

    @pytest.mark.parametrize("model", ["vit", "swin", "swin2"])
    def test_transformers_still_ordered(self, model):
        base = cold(model, Scheme.BASELINE).total_time
        pask = cold(model, Scheme.PASK).total_time
        ideal = cold(model, Scheme.IDEAL).total_time
        assert ideal < pask <= base

    @pytest.mark.parametrize("model", ["vgg", "res", "eff", "ssd"])
    def test_ablations_between_pask_and_baseline(self, model):
        base = cold(model, Scheme.BASELINE).total_time
        pask = cold(model, Scheme.PASK).total_time
        pask_i = cold(model, Scheme.PASK_I).total_time
        pask_r = cold(model, Scheme.PASK_R).total_time
        assert pask <= pask_i < base
        assert pask <= pask_r < base


class TestBaseline:
    def test_loads_all_distinct_code_objects(self):
        result = cold("res", Scheme.BASELINE)
        assert result.loads > 10
        assert result.trace.busy_time(phase=Phase.LOAD) > 0

    def test_loading_dominates_cold_start(self):
        result = cold("res", Scheme.BASELINE)
        assert result.phase_fraction(Phase.LOAD) > 0.55

    def test_gpu_mostly_idle(self):
        result = cold("res", Scheme.BASELINE)
        assert result.gpu_utilization < 0.15


class TestIdeal:
    def test_no_loads_at_all(self):
        result = cold("res", Scheme.IDEAL)
        assert result.loads == 0
        assert result.trace.busy_time(phase=Phase.LOAD) == 0.0

    def test_highest_utilization(self):
        assert (cold("res", Scheme.IDEAL).gpu_utilization
                > cold("res", Scheme.PASK).gpu_utilization
                > cold("res", Scheme.BASELINE).gpu_utilization)


class TestNNV12:
    def test_no_layout_casts_loaded(self):
        result = cold("res", Scheme.NNV12)
        load_labels = [r.label for r in result.trace.filtered(phase=Phase.LOAD)]
        assert not any(label.startswith("cast_") for label in load_labels)

    def test_fewer_loads_than_baseline(self):
        assert cold("res", Scheme.NNV12).loads < cold("res", Scheme.BASELINE).loads


class TestPask:
    def test_milestone_reached_and_reuses(self):
        result = cold("res", Scheme.PASK)
        assert result.milestone is not None
        assert result.reused_layers > 0
        assert result.skipped_loads > 0
        assert result.cache_stats.hits == result.reused_layers

    def test_fewer_loads_than_baseline(self):
        assert cold("res", Scheme.PASK).loads < cold("res", Scheme.BASELINE).loads

    def test_overhead_is_small(self):
        result = cold("res", Scheme.PASK)
        breakdown = result.breakdown()
        assert breakdown["pask_overhead"] < 0.08

    def test_pask_i_never_reuses(self):
        result = cold("res", Scheme.PASK_I)
        assert result.reused_layers == 0
        assert result.cache_stats.queries == 0

    def test_pask_r_uses_naive_cache(self):
        pask = cold("eff", Scheme.PASK)
        pask_r = cold("eff", Scheme.PASK_R)
        assert pask_r.reused_layers > 0
        assert (pask_r.cache_stats.lookups_per_query
                > pask.cache_stats.lookups_per_query)

    def test_transformer_has_no_reuse_opportunities(self):
        result = cold("vit", Scheme.PASK)
        assert result.cache_stats.queries == 0


class TestBatchScaling:
    def test_speedup_decreases_with_batch(self):
        small = SUITE.speedup("res", Scheme.PASK, batch=1)
        large = SUITE.speedup("res", Scheme.PASK, batch=64)
        assert large < small

    def test_batch_increases_total_time(self):
        assert (cold("res", Scheme.IDEAL, batch=64).total_time
                > cold("res", Scheme.IDEAL, batch=1).total_time)


class TestDeterminism:
    def test_same_run_twice_identical(self):
        server = SUITE.server()
        a = server.serve_cold("vgg", Scheme.PASK)
        b = server.serve_cold("vgg", Scheme.PASK)
        assert a.total_time == b.total_time
        assert a.loads == b.loads
        assert a.milestone == b.milestone
