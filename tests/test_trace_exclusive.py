"""Tests for exclusive wall-clock attribution in the trace recorder."""

import pytest

from repro.sim import Phase, TraceRecorder
from repro.sim.trace import subtract_intervals


class TestSubtractIntervals:
    def test_no_overlap(self):
        assert subtract_intervals([(0, 2)], [(3, 4)]) == [(0, 2)]

    def test_full_cover(self):
        assert subtract_intervals([(1, 2)], [(0, 3)]) == []

    def test_partial_front(self):
        assert subtract_intervals([(0, 4)], [(0, 1)]) == [(1, 4)]

    def test_partial_back(self):
        assert subtract_intervals([(0, 4)], [(3, 5)]) == [(0, 3)]

    def test_hole_in_middle(self):
        assert subtract_intervals([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]

    def test_multiple_holes(self):
        assert subtract_intervals([(0, 10)], [(1, 2), (4, 6)]) == \
            [(0, 1), (2, 4), (6, 10)]

    def test_empty_base(self):
        assert subtract_intervals([], [(0, 1)]) == []


class TestExclusiveFractions:
    def test_non_overlapping_phases(self):
        t = TraceRecorder()
        t.record(0, 6, "loader", Phase.LOAD)
        t.record(6, 8, "gpu", Phase.EXEC)
        fractions = t.exclusive_fractions([Phase.EXEC, Phase.LOAD],
                                          total_time=8.0)
        assert fractions[Phase.EXEC] == pytest.approx(0.25)
        assert fractions[Phase.LOAD] == pytest.approx(0.75)

    def test_overlap_attributed_to_higher_priority(self):
        t = TraceRecorder()
        t.record(0, 10, "loader", Phase.LOAD)
        t.record(2, 6, "gpu", Phase.EXEC)
        fractions = t.exclusive_fractions([Phase.EXEC, Phase.LOAD],
                                          total_time=10.0)
        assert fractions[Phase.EXEC] == pytest.approx(0.4)
        assert fractions[Phase.LOAD] == pytest.approx(0.6)  # 10 - 4 overlap

    def test_priority_order_matters(self):
        t = TraceRecorder()
        t.record(0, 10, "loader", Phase.LOAD)
        t.record(2, 6, "gpu", Phase.EXEC)
        load_first = t.exclusive_fractions([Phase.LOAD, Phase.EXEC],
                                           total_time=10.0)
        assert load_first[Phase.LOAD] == pytest.approx(1.0)
        assert load_first[Phase.EXEC] == pytest.approx(0.0)

    def test_fractions_never_exceed_one(self):
        t = TraceRecorder()
        t.record(0, 5, "a", Phase.LOAD)
        t.record(0, 5, "b", Phase.PARSE)
        t.record(0, 5, "gpu", Phase.EXEC)
        fractions = t.exclusive_fractions(
            [Phase.EXEC, Phase.LOAD, Phase.PARSE], total_time=5.0)
        assert sum(fractions.values()) <= 1.0 + 1e-9
        assert fractions[Phase.EXEC] == pytest.approx(1.0)
        assert fractions[Phase.PARSE] == pytest.approx(0.0)

    def test_zero_total(self):
        t = TraceRecorder()
        assert t.exclusive_fractions([Phase.EXEC]) == {Phase.EXEC: 0.0}

    def test_same_phase_overlap_not_double_counted(self):
        t = TraceRecorder()
        t.record(0, 4, "a", Phase.LOAD)
        t.record(2, 6, "b", Phase.LOAD)
        fractions = t.exclusive_fractions([Phase.LOAD], total_time=6.0)
        assert fractions[Phase.LOAD] == pytest.approx(1.0)
