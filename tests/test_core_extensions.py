"""Tests for the Sec. VI extensions: BLAS management, precision fallback,
interval preloading and multi-request sessions."""

import pytest

from repro.core.middleware import PaskConfig, PaskMiddleware
from repro.core.preloader import preload_during_interval
from repro.core.schemes import Scheme
from repro.engine import lower
from repro.gpu import HipRuntime, MI100
from repro.graph import GraphBuilder
from repro.primitive import BlasLibrary, ConvProblem, MIOpenLibrary
from repro.serving.server import InferenceServer
from repro.sim import Environment
from repro.tensors import DataType

LIBRARY = MIOpenLibrary(MI100)
BLAS = BlasLibrary(MI100)


def run_middleware(program, config=None, cache=None):
    env = Environment()
    runtime = HipRuntime(env, MI100)
    middleware = PaskMiddleware(env, runtime, LIBRARY, BLAS, config,
                                cache=cache)
    outcome = {}

    def driver():
        stats = yield from middleware.execute(program)
        outcome.update(stats)

    process = env.process(driver())
    env.run(until=process)
    return env, runtime, middleware, outcome


class TestManageBlas:
    @pytest.fixture(scope="class")
    def gemm_program(self):
        b = GraphBuilder("gemm_heavy")
        x = b.input("x", (1, 512))
        for i in range(6):
            x = b.gemm(x, 512, name=f"fc{i}")
            x = b.relu(x, name=f"r{i}")
        b.output(x)
        return lower(b.finish(), LIBRARY)

    def test_managed_blas_is_faster(self, gemm_program):
        env_stock, *_ = run_middleware(gemm_program, PaskConfig())
        env_managed, *_ = run_middleware(gemm_program,
                                         PaskConfig(manage_blas=True))
        assert env_managed.now < env_stock.now

    def test_managed_blas_loads_proactively(self, gemm_program):
        _, runtime, _, _ = run_middleware(gemm_program,
                                          PaskConfig(manage_blas=True))
        # All GEMM binaries were loaded by the loader thread, not at issue.
        loader_loads = runtime.trace.filtered(actor="loader")
        assert any(r.label.startswith("Blas") for r in loader_loads)

    def test_managed_blas_can_reuse_gemm_kernels(self, gemm_program):
        _, _, middleware, outcome = run_middleware(
            gemm_program, PaskConfig(manage_blas=True))
        # Six identical FC shapes: after the first, the binary is simply
        # resident, so reuse queries are unnecessary -- the cache holds
        # BLAS-pattern instances either way.
        from repro.primitive.patterns import SolutionPattern
        assert middleware.cache.entries(SolutionPattern.BLAS)

    def test_stock_pask_never_touches_blas_proactively(self, gemm_program):
        _, runtime, _, _ = run_middleware(gemm_program, PaskConfig())
        loader_loads = runtime.trace.filtered(actor="loader")
        assert not any(r.label.startswith("Blas") for r in loader_loads)


class TestPrecisionFallback:
    @pytest.fixture(scope="class")
    def programs(self):
        def cnn(name, dtype):
            layers = [(32, 3, 1, 1), (32, 5, 1, 2), (64, 1, 1, 0)]
            b = GraphBuilder(name, dtype=dtype)
            x = b.input("x", (1, 16, 32, 32))
            for i, (c, k, s, p) in enumerate(layers):
                x = b.conv(x, c, k, stride=s, pad=p, name=f"c{i}")
            b.output(x)
            return lower(b.finish(), LIBRARY)
        return cnn("w32", DataType.FP32), cnn("c16", DataType.FP16)

    def _cold_fp16_after_warm_fp32(self, programs, fallback):
        fp32_program, fp16_program = programs
        env = Environment()
        runtime = HipRuntime(env, MI100)
        config = PaskConfig(precision_fallback=fallback)
        warm = PaskMiddleware(env, runtime, LIBRARY, BLAS, config)
        outcome = {}

        def driver():
            yield from warm.execute(fp32_program)
            start = env.now
            cold = PaskMiddleware(env, runtime, LIBRARY, BLAS, config,
                                  cache=warm.cache)
            stats = yield from cold.execute(fp16_program)
            outcome.update(stats)
            outcome["time"] = env.now - start

        process = env.process(driver())
        env.run(until=process)
        return outcome

    def test_fallback_reuses_fp32_binaries(self, programs):
        off = self._cold_fp16_after_warm_fp32(programs, fallback=False)
        on = self._cold_fp16_after_warm_fp32(programs, fallback=True)
        assert on["reused_layers"] > off["reused_layers"]
        assert on["time"] < off["time"]

    def test_fp32_problems_unaffected(self, programs):
        fp32_program, _ = programs
        env_a, *_ = run_middleware(fp32_program, PaskConfig())
        env_b, *_ = run_middleware(fp32_program,
                                   PaskConfig(precision_fallback=True))
        assert env_a.now == env_b.now


class TestIntervalPreloader:
    def test_preloads_until_deadline(self):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        solution = LIBRARY.solution_by_name("ConvBinWinogradFwd<3,3>")
        problems = [ConvProblem(1, 8 * i, 28, 28, 8 * i, (3, 3), pad=(1, 1))
                    for i in range(2, 8)]
        pending = [(solution, p) for p in problems]
        done = {}

        def proc():
            loaded = yield from preload_during_interval(
                env, runtime, pending, deadline=0.002)
            done["loaded"] = loaded

        env.process(proc())
        env.run()
        assert 0 < done["loaded"] < len(problems)
        assert env.now <= 0.002

    def test_skips_resident_binaries(self):
        env = Environment()
        runtime = HipRuntime(env, MI100)
        solution = LIBRARY.solution_by_name("ConvBinWinogradFwd<3,3>")
        problem = ConvProblem(1, 16, 28, 28, 16, (3, 3), pad=(1, 1))
        runtime.preload([solution.code_object_for(problem)])
        done = {}

        def proc():
            loaded = yield from preload_during_interval(
                env, runtime, [(solution, problem)], deadline=1.0)
            done["loaded"] = loaded

        env.process(proc())
        env.run()
        assert done["loaded"] == 0
        assert env.now == 0.0


class TestServeSession:
    @pytest.fixture(scope="class")
    def server(self):
        return InferenceServer("MI100")

    def test_session_length_and_metadata(self, server):
        results = server.serve_session("alex", Scheme.PASK, n_requests=3,
                                       interval_s=0.02)
        assert len(results) == 3
        assert [r.metadata["request"] for r in results] == [0, 1, 2]

    def test_later_requests_faster(self, server):
        results = server.serve_session("res", Scheme.PASK, n_requests=3,
                                       interval_s=0.05)
        assert results[1].total_time < results[0].total_time
        assert results[2].total_time <= results[1].total_time

    def test_preload_eliminates_later_loads(self, server):
        results = server.serve_session("res", Scheme.PASK, n_requests=3,
                                       interval_s=0.1,
                                       interval_preload=True)
        assert results[-1].loads == 0

    def test_no_preload_keeps_warming_gradually(self, server):
        with_pre = server.serve_session("res", Scheme.PASK, n_requests=2,
                                        interval_s=0.1,
                                        interval_preload=True)
        without = server.serve_session("res", Scheme.PASK, n_requests=2,
                                       interval_s=0.1,
                                       interval_preload=False)
        assert with_pre[1].total_time <= without[1].total_time

    def test_works_for_baseline_scheme_too(self, server):
        results = server.serve_session("alex", Scheme.BASELINE,
                                       n_requests=2, interval_s=0.01)
        assert results[1].total_time < results[0].total_time

    def test_validation(self, server):
        with pytest.raises(ValueError):
            server.serve_session("alex", n_requests=0)
        with pytest.raises(ValueError):
            server.serve_session("alex", interval_s=-1)
