"""The fleet observability plane: control-plane spans, SLO monitors,
the time-warp flight recorder and the golden fleet Perfetto export.

Three contracts are pinned here:

- **Byte-inertness** — attaching any combination of telemetry sinks
  (spans, metrics, monitors, flight recorder) to a fleet replay leaves
  every stat byte-identical to the telemetry-off run, serial and
  sharded alike (hypothesis-pinned across configs).
- **Serial/sharded telemetry identity** — a telemetry-on sharded
  replay produces byte-identical span lists, metrics dumps and monitor
  summaries to the telemetry-on serial replay, in static and time-warp
  mode, in-process and across worker processes.
- **Golden flight recording** — the two-region flight-recorder export
  behind ``repro trace export --fleet`` is pinned structurally in
  ``tests/data/golden_fleet_trace.json``, regenerated with::

      PYTHONPATH=src python tests/make_golden_fleet_trace.py
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core.schemes import Scheme
from repro.fleet import (AutoscalePolicy, FleetConfig, FleetSimulator,
                         RegionConfig, RoutingPolicy, equivalence_problems,
                         run_fleet_sharded)
from repro.fleet.fleet import _QueueDepthTracker
from repro.obs import (FlightRecorder, MetricsRegistry, SLOMonitorSet,
                       SLOPolicy, SpanRecorder, to_perfetto, validate_dump,
                       validate_monitors, validate_trace, write_trace)
from repro.serving.requests import RequestTrace, poisson_trace

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "golden_fleet_trace.json")

_SLO = SLOPolicy(availability_target=0.999, p99_target_s=1.0,
                 cold_rate_target=0.5, window_s=2.0)


def _config(autoscale=None, routing="warm-first", shed_wait_s=None):
    return FleetConfig(
        regions=(RegionConfig(name="us-east", device="MI100",
                              scheme=Scheme.PASK, max_instances=4),
                 RegionConfig(name="eu-west", device="A100",
                              scheme=Scheme.BASELINE, max_instances=2)),
        routing=RoutingPolicy(routing),
        autoscale=autoscale,
        shed_wait_s=shed_wait_s)


def _trace(rate=60.0, duration=2.0, seed=0):
    return poisson_trace("res", rate, duration, seed=seed)


def _export_fleet(path):
    """Mirror of ``repro trace export --fleet`` with its defaults, so
    the golden pins the exact CLI artifact."""
    config = FleetConfig(
        regions=(RegionConfig(name="us-east", device="MI100",
                              scheme=Scheme.PASK, max_instances=4),
                 RegionConfig(name="eu-west", device="MI100",
                              scheme=Scheme.PASK, max_instances=2)),
        routing=RoutingPolicy("warm-first"))
    trace = poisson_trace("res", 120.0, 4.0, seed=0)
    flight = FlightRecorder()
    stats, report = run_fleet_sharded(config, trace, flight=flight)
    return write_trace(
        path, flight.to_spans(), device="fleet",
        metadata={"model": "res", "scheme": Scheme.PASK.label,
                  "mode": report.mode, "rounds": report.rounds,
                  "rollbacks": report.rollbacks,
                  "resimulated": report.resimulated,
                  "requests": stats.offered})


class TestControlPlaneSpans:
    def test_decision_spans_are_zero_duration(self):
        spans = SpanRecorder()
        # A burst (queueing raises the reactive cap) followed by a
        # quiet period (idle shrinks it) so both scale directions emit.
        trace = RequestTrace("res", tuple([i * 0.001 for i in range(12)]
                                          + [10.0]))
        FleetSimulator(_config(AutoscalePolicy(kind="reactive",
                                               min_instances=1,
                                               scale_up_wait_s=0.0005,
                                               scale_down_idle_s=1.0)),
                       spans=spans).run(trace)
        recorded = list(spans)
        assert recorded
        assert all(s.category == "decision" for s in recorded)
        assert all(s.end == s.start for s in recorded)
        names = {s.name for s in recorded}
        assert "fleet:route" in names
        assert "fleet:scale-up" in names
        assert "fleet:scale-down" in names

    def test_route_spans_carry_region_and_policy(self):
        spans = SpanRecorder()
        FleetSimulator(_config(), spans=spans).run(_trace())
        routes = [s for s in spans if s.name == "fleet:route"]
        assert routes
        for span in routes:
            attrs = dict(span.attrs)
            assert span.actor in ("region:us-east", "region:eu-west")
            assert attrs["policy"] == "warm-first"
            assert attrs["tenant"]

    def test_telemetry_leaves_stats_byte_identical(self):
        config = _config(AutoscalePolicy(kind="reactive", min_instances=1,
                                         scale_up_wait_s=0.01))
        trace = _trace()
        plain = FleetSimulator(config).run(trace)
        loud = FleetSimulator(config, metrics=MetricsRegistry(),
                              spans=SpanRecorder()).run(trace)
        loud.monitors = None  # the only field telemetry may add
        assert equivalence_problems(plain, loud) == []

    def test_fleet_metrics_families_and_labels(self):
        metrics = MetricsRegistry()
        FleetSimulator(_config(), metrics=metrics).run(_trace())
        dump = metrics.to_json()
        assert validate_dump(dump) == []
        for family in ("fleet_routed_total", "fleet_queue_depth"):
            assert family in dump
        series = dump["fleet_routed_total"]["series"]
        assert series
        assert {s["labels"]["region"] for s in series} <= {"us-east",
                                                           "eu-west"}
        assert all(s["labels"]["policy"] == "warm-first" for s in series)
        routed = sum(s["value"] for s in series)
        assert routed > 0


class TestShardedTelemetryIdentity:
    @pytest.mark.parametrize("autoscale,routing", [
        (None, "round-robin"),                                    # static
        (AutoscalePolicy(kind="scale-to-zero", idle_timeout_s=0.2),
         "warm-first"),                                           # time-warp
    ])
    def test_spans_metrics_monitors_match_serial(self, autoscale, routing):
        config = _config(autoscale, routing=routing)
        trace = _trace()
        serial_spans, serial_metrics = SpanRecorder(), MetricsRegistry()
        serial = FleetSimulator(config, metrics=serial_metrics,
                                spans=serial_spans, slo=_SLO).run(trace)
        shard_spans, shard_metrics = SpanRecorder(), MetricsRegistry()
        sharded, report = run_fleet_sharded(
            config, trace, metrics=shard_metrics, spans=shard_spans,
            slo=_SLO)
        assert report.mode in ("static", "time-warp")
        assert equivalence_problems(serial, sharded) == []
        assert list(serial_spans) == list(shard_spans)
        assert serial_metrics.to_json() == shard_metrics.to_json()
        assert serial.monitors == sharded.monitors
        assert validate_monitors(sharded.monitors) == []

    def test_identity_holds_across_worker_processes(self):
        config = _config(AutoscalePolicy(kind="scale-to-zero",
                                         idle_timeout_s=0.2))
        trace = _trace(rate=40.0)
        serial_metrics = MetricsRegistry()
        serial = FleetSimulator(config, metrics=serial_metrics,
                                slo=_SLO).run(trace)
        shard_metrics = MetricsRegistry()
        sharded, _ = run_fleet_sharded(config, trace, jobs=2,
                                       metrics=shard_metrics, slo=_SLO)
        assert equivalence_problems(serial, sharded) == []
        assert serial_metrics.to_json() == shard_metrics.to_json()

    def test_span_capture_rejects_trace_retention(self):
        config = FleetConfig(
            regions=(RegionConfig(name="us-east", device="MI100",
                                  scheme=Scheme.PASK, max_instances=2),
                     RegionConfig(name="eu-west", device="A100",
                                  scheme=Scheme.PASK, max_instances=2)),
            routing=RoutingPolicy("round-robin"),
            trace_retention="aggregate")
        with pytest.raises(ValueError, match="trace retention"):
            run_fleet_sharded(config, _trace(), spans=SpanRecorder())


@st.composite
def _obs_fleet_cases(draw):
    autoscale = draw(st.one_of(
        st.none(),
        st.just(AutoscalePolicy(kind="scale-to-zero", idle_timeout_s=0.2)),
        st.just(AutoscalePolicy(kind="reactive", min_instances=1,
                                scale_up_wait_s=0.01)),
        st.just(AutoscalePolicy(kind="predictive", prewarm_headroom=1.5))))
    routing = draw(st.sampled_from(("round-robin", "least-queue",
                                    "warm-first")))
    shed = draw(st.one_of(st.none(), st.just(0.05)))
    trace = _trace(rate=draw(st.floats(10.0, 80.0)),
                   duration=draw(st.floats(0.5, 2.0)),
                   seed=draw(st.integers(0, 99)))
    return _config(autoscale, routing=routing, shed_wait_s=shed), trace


class TestNoPerturbationProperty:
    @given(case=_obs_fleet_cases())
    @settings(max_examples=15, deadline=None)
    def test_full_telemetry_never_perturbs_replay(self, case):
        config, trace = case
        plain = FleetSimulator(config).run(trace)
        serial = FleetSimulator(config, metrics=MetricsRegistry(),
                                spans=SpanRecorder(), slo=_SLO).run(trace)
        sharded, _ = run_fleet_sharded(
            config, trace, metrics=MetricsRegistry(), spans=SpanRecorder(),
            slo=_SLO, flight=FlightRecorder())
        # Monitors are the one field only telemetry-on runs carry.
        assert serial.monitors is not None
        assert serial.monitors == sharded.monitors
        serial.monitors = sharded.monitors = None
        assert equivalence_problems(plain, serial) == []
        assert equivalence_problems(plain, sharded) == []


class TestSLOMonitors:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(availability_target=1.5)
        with pytest.raises(ValueError):
            SLOPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(p99_target_s=-1.0)

    def test_availability_monitor_fires_on_burn(self):
        monitors = SLOMonitorSet(SLOPolicy(availability_target=0.99,
                                           window_s=1.0))
        fresh = []
        for i in range(20):
            fresh += monitors.observe_completed(i * 0.01, 0.001, False)
            fresh += monitors.observe_failed(i * 0.01 + 0.005)
        assert any(a.monitor == "availability" and a.state == "firing"
                   for a in fresh)
        summary = monitors.summary()
        assert summary["monitors"]["availability"]["fired"] >= 1
        assert validate_monitors(summary) == []

    def test_quiet_stream_never_alerts(self):
        monitors = SLOMonitorSet(_SLO)
        for i in range(50):
            assert monitors.observe_completed(i * 0.05, 0.002, False) == []
        summary = monitors.summary()
        assert summary["alerts"] == []
        assert all(not m["fired"] for m in summary["monitors"].values())

    def test_alerts_are_deterministic(self):
        def burn():
            monitors = SLOMonitorSet(SLOPolicy(cold_rate_target=0.1,
                                               window_s=1.0))
            for i in range(30):
                monitors.observe_completed(i * 0.02, 0.01, cold=i % 2 == 0)
            return monitors.summary()
        assert burn() == burn()

    def test_validate_monitors_rejects_junk(self):
        assert validate_monitors(None)
        assert validate_monitors({"monitors": {}})
        good = SLOMonitorSet(_SLO).summary()
        bad = dict(good)
        bad["alerts"] = [{"monitor": "availability", "state": "meh",
                          "t": 0.0, "value": 1.0, "threshold": 1.0}]
        assert validate_monitors(bad)


class TestQueueDepthTracker:
    def test_tracks_peak_concurrent_waiters(self):
        tracker = _QueueDepthTracker()
        tracker.observe(0.0, 1.0)
        tracker.observe(0.1, 1.5)
        tracker.observe(0.2, 2.0)
        assert tracker.peak == 3
        tracker.observe(1.6, 1.7)
        assert tracker.peak == 3

    def test_immediate_starts_never_queue(self):
        tracker = _QueueDepthTracker()
        for t in (0.0, 0.5, 1.0):
            tracker.observe(t, t)
        assert tracker.peak == 0


class TestFlightRecorder:
    def _recorded(self):
        flight = FlightRecorder()
        flight.begin("time-warp", ("us-east", "eu-west"), (0.0, 0.5, 1.0,
                                                           1.5, 2.0))
        flight.record_round(0, (0, 0), 5, None, 0)
        flight.record_round(1, (0, 0), 5, 2, 2, restarts=(2, 3))
        flight.record_round(2, (2, 3), 5, None, 5)
        flight.record_final(5)
        return flight

    def test_digest_counts(self):
        flight = self._recorded()
        assert flight.rollbacks == 1
        assert flight.max_rollback_depth == 3
        assert flight.resimulated == 5
        summary = flight.summary()
        assert summary["rounds"] == 3
        assert summary["verified_prefix"] == [0, 2, 5]

    def test_spans_validate_as_perfetto(self):
        flight = self._recorded()
        payload = to_perfetto(flight.to_spans(), device="fleet")
        assert validate_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]
                 if e.get("ph") == "X"}
        assert any(n.startswith("round-") for n in names)
        assert any(n.startswith("rollback-") for n in names)
        assert "final" in names

    def test_one_track_per_shard(self):
        payload = to_perfetto(self._recorded().to_spans(), device="fleet")
        tids = {e["tid"] for e in payload["traceEvents"]
                if e.get("ph") == "X"}
        # Two shard tracks plus the coordinator's divergence track.
        assert len(tids) == 3


class TestGoldenFleetTrace:
    def test_export_is_deterministic_across_runs(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        _export_fleet(str(first))
        _export_fleet(str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_matches_checked_in_golden(self, tmp_path):
        exported = _export_fleet(str(tmp_path / "trace.json"))
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert exported == golden

    def test_golden_file_validates(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert validate_trace(golden) == []
        assert golden["metadata"]["mode"] == "time-warp"
        assert golden["metadata"]["requests"] > 0


class TestCLISurface:
    def test_fleet_telemetry_flag(self, capsys):
        assert main(["fleet", "res", "--duration", "1", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "decision span(s)" in out
        assert "slo availability" in out

    def test_fleet_metrics_export(self, capsys):
        assert main(["fleet", "res", "--duration", "1",
                     "--metrics", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE fleet_routed_total counter" in out

    def test_trace_export_fleet_validates(self, tmp_path, capsys):
        path = str(tmp_path / "fleet.json")
        assert main(["trace", "export", "--fleet", "--duration", "1",
                     "--output", path, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        assert "trace validated" in out
        with open(path, encoding="utf-8") as handle:
            assert validate_trace(json.load(handle)) == []

    def test_bench_slo_requires_fleet(self, capsys):
        assert main(["bench", "--quick", "--slo", "--no-report",
                     "--no-cache"]) == 2
        assert "--slo needs --fleet" in capsys.readouterr().out

    def test_profile_fleet_reports_flight_stats(self, capsys):
        assert main(["profile", "--fleet", "--scale", "2000",
                     "--telemetry-requests", "0"]) == 0
        out = capsys.readouterr().out
        assert "fleet replay" in out
        assert "rounds" in out
