"""Unit tests for solutions: ladders, signatures, tuning compatibility."""

import pytest

from repro.primitive import (
    ActivationProblem,
    ConvProblem,
    PoolProblem,
    PrimitiveKind,
    Solution,
    SolutionPattern,
)
from repro.primitive.solution import Constraint
from repro.primitive.solvers import all_miopen_solutions
from repro.primitive.solvers.winograd import build_solutions as winograd
from repro.primitive.solvers.direct import build_solutions as direct
from repro.primitive.solvers.gemm import build_solutions as gemm_solvers
from repro.tensors import DataType, Layout


def by_name(name):
    for s in all_miopen_solutions():
        if s.name == name:
            return s
    raise KeyError(name)


CONV_3X3 = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1))
CONV_5X5 = ConvProblem(1, 48, 28, 28, 64, (5, 5), pad=(2, 2))
CONV_7X7_S2 = ConvProblem(1, 3, 224, 224, 64, (7, 7), (2, 2), (3, 3))
CONV_1X1 = ConvProblem(1, 256, 14, 14, 512, (1, 1))
CONV_DW = ConvProblem(1, 96, 28, 28, 96, (3, 3), pad=(1, 1), group=96)
CONV_DILATED = ConvProblem(1, 64, 28, 28, 64, (3, 3), pad=(2, 2),
                           dilation=(2, 2))


class TestRegistry:
    def test_unique_names(self):
        names = [s.name for s in all_miopen_solutions()]
        assert len(names) == len(set(names))

    def test_every_conv_has_a_fallback(self):
        problems = [CONV_3X3, CONV_5X5, CONV_7X7_S2, CONV_1X1, CONV_DW,
                    CONV_DILATED]
        for p in problems:
            applicable = [s for s in all_miopen_solutions()
                          if s.is_applicable(p)]
            assert applicable, f"no solution for {p}"
            assert any(s.specialization == 0 for s in applicable)

    def test_patterns_present(self):
        patterns = {s.pattern for s in all_miopen_solutions()}
        assert {SolutionPattern.WINOGRAD, SolutionPattern.GEMM,
                SolutionPattern.DIRECT, SolutionPattern.IMPLICIT_GEMM,
                SolutionPattern.POOLING,
                SolutionPattern.ACTIVATION} <= patterns


class TestWinogradLadder:
    def test_generic_accepts_any_small_unit_stride(self):
        naive = by_name("ConvWinogradNaiveFwd")
        assert naive.is_applicable(CONV_3X3)
        assert naive.is_applicable(CONV_5X5)
        assert not naive.is_applicable(CONV_7X7_S2)  # strided
        assert not naive.is_applicable(CONV_DILATED)
        assert not naive.is_applicable(CONV_DW)      # grouped

    def test_exact_tip_requires_filter_match(self):
        tip33 = by_name("ConvBinWinogradFwd<3,3>")
        tip55 = by_name("ConvBinWinogradFwd<5,5>")
        assert tip33.is_applicable(CONV_3X3)
        assert not tip33.is_applicable(CONV_5X5)
        assert tip55.is_applicable(CONV_5X5)
        assert not tip55.is_applicable(CONV_3X3)

    def test_ladder_applicability_is_nested(self):
        """Specialized applicable => generic applicable (Fig. 4)."""
        naive = by_name("ConvWinogradNaiveFwd")
        rxs = by_name("ConvBinWinogradRxSFwd")
        tip = by_name("ConvBinWinogradFwd<3,3>")
        for p in [CONV_3X3, CONV_5X5, CONV_7X7_S2, CONV_1X1, CONV_DW]:
            if tip.is_applicable(p):
                assert rxs.is_applicable(p)
            if rxs.is_applicable(p):
                assert naive.is_applicable(p)

    def test_ladder_efficiency_increases(self):
        effs = {s.specialization: s.base_efficiency for s in winograd()
                if "3,3" in s.name or s.specialization < 2}
        assert effs[0] < effs[1] < effs[2]


class TestDirectLadder:
    def test_depthwise_served_only_by_direct(self):
        applicable = [s for s in all_miopen_solutions()
                      if s.is_applicable(CONV_DW)]
        names = {s.name for s in applicable}
        assert "ConvDirectFwdDepthwise" in names
        assert "ConvDirectNaiveFwd" in names
        assert all(s.pattern in (SolutionPattern.DIRECT, SolutionPattern.GEMM)
                   for s in applicable)

    def test_stem_conv_tip(self):
        tip = by_name("ConvDirectFwd7x7s2")
        assert tip.is_applicable(CONV_7X7_S2)
        assert not tip.is_applicable(CONV_3X3)

    def test_naive_accepts_everything(self):
        naive = by_name("ConvDirectNaiveFwd")
        for p in [CONV_3X3, CONV_5X5, CONV_7X7_S2, CONV_1X1, CONV_DW,
                  CONV_DILATED]:
            assert naive.is_applicable(p)


class TestSignatures:
    def test_generic_signature_is_constant(self):
        naive = by_name("ConvDirectNaiveFwd")
        assert naive.signature(CONV_3X3) == naive.signature(CONV_1X1) == "generic"

    def test_generic_shares_one_code_object(self):
        naive = by_name("ConvDirectNaiveFwd")
        assert (naive.code_object_for(CONV_3X3).name
                == naive.code_object_for(CONV_1X1).name)

    def test_specialized_buckets_by_kernel_config(self):
        rxs = by_name("ConvBinWinogradRxSFwd")
        other_3x3 = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        assert rxs.signature(CONV_3X3) == rxs.signature(other_3x3)
        assert rxs.signature(CONV_3X3) != rxs.signature(CONV_5X5)

    def test_highly_specialized_signature_is_exact(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        other_3x3 = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        assert tip.signature(CONV_3X3) != tip.signature(other_3x3)

    def test_distinct_problems_distinct_tip_binaries(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        other_3x3 = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        assert (tip.code_object_for(CONV_3X3).name
                != tip.code_object_for(other_3x3).name)

    def test_code_object_size_deterministic(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        a = tip.code_object_for(CONV_3X3)
        b = tip.code_object_for(CONV_3X3)
        assert a.size_bytes == b.size_bytes
        assert a.name == b.name


class TestTuningCompatibility:
    def test_tip_binary_reusable_across_shapes_same_config(self):
        """The core reuse fact: a 3x3 tip binary runs other 3x3 problems."""
        tip = by_name("ConvBinWinogradFwd<3,3>")
        other_3x3 = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        assert tip.tuning_compatible(CONV_3X3, other_3x3)

    def test_tip_binary_not_reusable_across_kernel_configs(self):
        tip33 = by_name("ConvBinWinogradFwd<3,3>")
        assert not tip33.tuning_compatible(CONV_3X3, CONV_5X5)

    def test_incompatible_if_target_inapplicable(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        assert not tip.tuning_compatible(CONV_3X3, CONV_DW)

    def test_generic_binary_runs_anything_applicable(self):
        naive = by_name("ConvDirectNaiveFwd")
        assert naive.tuning_compatible(CONV_3X3, CONV_DILATED)

    def test_off_tune_efficiency_derated(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        other_3x3 = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        on_tune = tip.efficiency(CONV_3X3, CONV_3X3)
        off_tune = tip.efficiency(CONV_3X3, other_3x3)
        assert off_tune < on_tune
        assert off_tune == pytest.approx(on_tune * 0.6)

    def test_generic_never_derated(self):
        naive = by_name("ConvDirectNaiveFwd")
        assert naive.efficiency(CONV_3X3, CONV_1X1) == naive.base_efficiency


class TestLayoutTransforms:
    def test_nhwc_solution_needs_casts_on_nchw_problem(self):
        xdlops = by_name("ConvImplicitGemmXdlopsFwd")
        assert xdlops.needs_layout_transform(CONV_3X3)
        casts = xdlops.transform_code_objects(CONV_3X3)
        assert len(casts) == 2

    def test_cast_binaries_are_per_bucket(self):
        xdlops = by_name("ConvImplicitGemmXdlopsFwd")
        same_bucket = ConvProblem(1, 128, 28, 28, 128, (3, 3), pad=(1, 1))
        other_bucket = ConvProblem(1, 64, 56, 56, 128, (3, 3), (2, 2), (1, 1))
        a = {c.name for c in xdlops.transform_code_objects(CONV_3X3)}
        b = {c.name for c in xdlops.transform_code_objects(same_bucket)}
        c = {c.name for c in xdlops.transform_code_objects(other_bucket)}
        assert a == b          # same kernel config shares cast binaries
        assert a.isdisjoint(c)  # different config loads its own

    def test_native_solution_needs_no_casts(self):
        naive = by_name("ConvDirectNaiveFwd")
        assert not naive.needs_layout_transform(CONV_3X3)
        assert naive.transform_code_objects(CONV_3X3) == ()


class TestCheckCost:
    def test_more_constraints_cost_more(self):
        naive = by_name("ConvDirectNaiveFwd")
        tip = by_name("ConvBinWinogradFwd<3,3>")
        assert tip.check_cost_s > naive.check_cost_s

    def test_check_cost_magnitude(self):
        for s in all_miopen_solutions():
            assert 4e-6 < s.check_cost_s < 100e-6


class TestValidation:
    def test_bad_specialization_rejected(self):
        with pytest.raises(ValueError):
            Solution("x", SolutionPattern.DIRECT, PrimitiveKind.CONVOLUTION,
                     specialization=5, base_efficiency=0.5)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            Solution("x", SolutionPattern.DIRECT, PrimitiveKind.CONVOLUTION,
                     specialization=0, base_efficiency=1.5)

    def test_wrong_kind_never_applicable(self):
        naive = by_name("ConvDirectNaiveFwd")
        pool = PoolProblem(1, 8, 8, 8, (2, 2), (2, 2))
        assert not naive.is_applicable(pool)

    def test_unsupported_dtype_rejected(self):
        tip = by_name("ConvBinWinogradFwd<3,3>")
        fp16 = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1),
                           dtype=DataType.FP16)
        assert not tip.is_applicable(fp16)


class TestActivationPooling:
    def test_activation_ladder(self):
        relu = ActivationProblem(1000, "relu")
        gelu = ActivationProblem(1000, "gelu")
        generic = by_name("ActivFwdGeneric")
        relu_tip = by_name("ActivFwdRelu")
        packed = by_name("ActivFwdReluPacked4")
        assert generic.is_applicable(relu) and generic.is_applicable(gelu)
        assert relu_tip.is_applicable(relu)
        assert not relu_tip.is_applicable(gelu)
        assert packed.is_applicable(relu)
        assert not packed.is_applicable(ActivationProblem(1001, "relu"))

    def test_pooling_ladder(self):
        p22 = PoolProblem(1, 64, 56, 56, (2, 2), (2, 2))
        pglobal = PoolProblem(1, 512, 7, 7, (7, 7), (1, 1), mode="avg")
        assert by_name("PoolingFwd2x2s2").is_applicable(p22)
        assert not by_name("PoolingFwd2x2s2").is_applicable(pglobal)
        assert by_name("PoolingFwdGlobal").is_applicable(pglobal)
        assert by_name("PoolingNaiveFwd").is_applicable(p22)
        assert by_name("PoolingNaiveFwd").is_applicable(pglobal)
