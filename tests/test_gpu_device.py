"""Unit tests for device specs and the loading cost model."""

import dataclasses

import pytest

from repro.gpu import (
    A100,
    CodeObjectFile,
    DeviceSpec,
    KernelSymbol,
    MI100,
    RX6900XT,
    get_device,
    list_devices,
    load_time,
    symbol_resolve_time,
)


def test_registry_contains_three_devices():
    assert list_devices() == ["6900XT", "A100", "MI100"]
    assert get_device("MI100") is MI100
    assert get_device("A100") is A100
    assert get_device("6900XT") is RX6900XT


def test_unknown_device_raises_with_hint():
    with pytest.raises(KeyError, match="known devices"):
        get_device("H100")


def test_device_rejects_nonpositive_constants():
    with pytest.raises(ValueError):
        dataclasses.replace(MI100, fp32_tflops=0.0)


def test_derived_units():
    assert MI100.fp32_flops == pytest.approx(23.1e12)
    assert MI100.mem_bandwidth == pytest.approx(1228.8e9)
    assert MI100.code_io_bandwidth == pytest.approx(150e6)


def test_consumer_card_loads_slower_than_datacenter():
    co = CodeObjectFile.single_kernel("k", 1 << 20)
    assert load_time(co, RX6900XT) > load_time(co, MI100) > load_time(co, A100)


def test_load_time_grows_with_size():
    small = CodeObjectFile.single_kernel("s", 100_000)
    large = CodeObjectFile.single_kernel("l", 5_000_000)
    assert load_time(large, MI100) > load_time(small, MI100)


def test_load_time_magnitude_is_milliseconds():
    # A typical ~150 KB MIOpen .co image should take around a millisecond.
    co = CodeObjectFile.single_kernel("k", 150_000)
    t = load_time(co, MI100)
    assert 0.0005 < t < 0.01


def test_reactive_load_penalty():
    co = CodeObjectFile.single_kernel("k", 150_000)
    assert load_time(co, MI100, reactive=True) == pytest.approx(
        load_time(co, MI100) * MI100.reactive_load_penalty)


def test_symbol_resolve_time_is_submillisecond():
    assert 0 < symbol_resolve_time(MI100) < 1e-3


class TestCodeObjectFile:
    def test_single_kernel_helper(self):
        co = CodeObjectFile.single_kernel("conv_k", 1024)
        assert co.name == "conv_k"
        assert co.symbols == (KernelSymbol("conv_k"),)
        assert co.has_symbol("conv_k")
        assert not co.has_symbol("other")

    def test_multi_symbol(self):
        co = CodeObjectFile("sol", 2048, (KernelSymbol("a"), KernelSymbol("b")))
        assert co.has_symbol("a") and co.has_symbol("b")

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CodeObjectFile("", 10, (KernelSymbol("a"),))
        with pytest.raises(ValueError):
            CodeObjectFile("x", 0, (KernelSymbol("a"),))
        with pytest.raises(ValueError):
            CodeObjectFile("x", 10, ())
        with pytest.raises(ValueError):
            CodeObjectFile("x", 10, (KernelSymbol("a"), KernelSymbol("a")))
        with pytest.raises(ValueError):
            KernelSymbol("")

    def test_frozen_and_hashable(self):
        co = CodeObjectFile.single_kernel("k", 10)
        hash(co)
        with pytest.raises(dataclasses.FrozenInstanceError):
            co.size_bytes = 20
