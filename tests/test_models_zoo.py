"""Tests for the model zoo (Table I)."""

import pytest

from repro.engine import InstrKind, lower
from repro.gpu import MI100
from repro.models import MODEL_INFO, build_model, list_models
from repro.primitive import MIOpenLibrary


@pytest.fixture(scope="module")
def library():
    return MIOpenLibrary(MI100)


@pytest.fixture(scope="module")
def lowered(library):
    return {abbr: lower(build_model(abbr), library) for abbr in list_models()}


def test_twelve_models_in_table_order():
    assert list_models() == ["alex", "vgg", "res", "reg", "eff", "rcnn",
                             "ssd", "fcn", "unet", "vit", "swin", "swin2"]


def test_lookup_by_abbreviation_and_full_name():
    assert build_model("res").name == "resnet34"
    assert build_model("resnet34").name == "resnet34"


def test_unknown_model_rejected():
    with pytest.raises(KeyError, match="known models"):
        build_model("bert")


def test_model_info_rows():
    info = MODEL_INFO["eff"]
    assert info.full_name == "efficientnet_b7"
    assert info.model_type == "Img. Rec."
    assert info.paper_primitive_layers == 58


@pytest.mark.parametrize("abbr", list_models())
def test_models_build_and_validate(abbr):
    graph = build_model(abbr)
    graph.validate()
    assert len(graph) > 5


@pytest.mark.parametrize("abbr", list_models())
def test_models_lower_cleanly(abbr, lowered):
    program = lowered[abbr]
    assert len(program) > 0
    for instr in program.primitive_instructions:
        assert instr.solution_name


def test_transformers_have_one_primitive_layer(lowered):
    for abbr in ("vit", "swin", "swin2"):
        assert len(lowered[abbr].distinct_primitive_problems) == 1
        assert len(lowered[abbr].distinct_conv_problems) == 1


def test_transformers_are_blas_dominated(lowered):
    for abbr in ("vit", "swin", "swin2"):
        stats = lowered[abbr].stats()
        assert stats["per_kind"]["blas"] > 50


def test_primitive_layer_counts_track_table1(lowered):
    """Distinct primitive problems should track Table I's ordering and
    rough magnitude (the builders approximate the PyTorch zoo exports)."""
    counts = {abbr: len(lowered[abbr].distinct_primitive_problems)
              for abbr in list_models()}
    paper = {abbr: MODEL_INFO[abbr].paper_primitive_layers
             for abbr in list_models()}
    # Magnitude: within a factor of 2 of the paper's count.
    for abbr in list_models():
        assert paper[abbr] / 2 <= counts[abbr] <= paper[abbr] * 2, \
            f"{abbr}: {counts[abbr]} vs paper {paper[abbr]}"
    # Ordering of the extremes.
    assert counts["eff"] == max(counts.values())
    assert counts["vit"] == counts["swin"] == counts["swin2"] == 1
    assert counts["alex"] < counts["eff"]


def test_alexnet_has_five_conv_problems(lowered):
    assert len(lowered["alex"].distinct_conv_problems) == 5


def test_vgg_has_thirteen_conv_instructions(lowered):
    convs = [i for i in lowered["vgg"].primitive_instructions
             if i.problem.kind.value == "convolution"]
    assert len(convs) == 13


def test_depthwise_present_in_efficientnet(lowered):
    assert any(getattr(p, "is_depthwise", False)
               for p in lowered["eff"].distinct_conv_problems)


def test_grouped_convs_in_regnet(lowered):
    assert any(getattr(p, "group", 1) > 1
               for p in lowered["reg"].distinct_conv_problems)


def test_ssd_uses_dilated_conv(lowered):
    assert any(getattr(p, "dilation", (1, 1)) != (1, 1)
               for p in lowered["ssd"].distinct_conv_problems)


def test_detection_models_have_multiple_outputs():
    assert len(build_model("ssd").outputs) == 12
    assert len(build_model("rcnn").outputs) == 4


def test_unet_decoder_restores_resolution():
    graph = build_model("unet")
    out = graph.desc(graph.outputs[0])
    assert out.dims[2:] == (224, 224)


def test_fcn_output_is_class_map():
    graph = build_model("fcn")
    out = graph.desc(graph.outputs[0])
    assert out.dims[1] == 21
    assert out.dims[2:] == (224, 224)
