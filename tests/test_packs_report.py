"""Regression tests for the checked-in pack degradation report.

``benchmarks/pack_degradation_report.json`` is the PR's acceptance
evidence: the healthy fetch hierarchy strictly reduces cold serves at
equal availability, and under a full registry outage the ladder
degrades to cold load with zero lost requests while conserving every
fetched byte.  These tests pin the checked-in copy byte-for-byte
against a fresh regeneration (the simulator is deterministic, so any
drift is a real behavior change that must be reviewed and re-committed
via ``scripts/make_packs_report.py``) and assert the claims hold in
the numbers themselves.
"""

import json
import os

import pytest

from repro.runner import packs_report, packs_scenarios, validate_report

REPORT_PATH = os.path.join(os.path.dirname(__file__), "..",
                           "benchmarks", "pack_degradation_report.json")


@pytest.fixture(scope="module")
def checked_in():
    with open(REPORT_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_checked_in_report_validates(checked_in):
    assert validate_report(checked_in) == []


def test_checked_in_report_matches_regeneration(checked_in):
    fresh = packs_report(created_unix=0.0)
    assert fresh == checked_in


def test_legs_cover_the_curated_ladder(checked_in):
    legs = checked_in["packs"]["legs"]
    assert [leg["name"] for leg in legs] == [
        s.name for s in packs_scenarios()]
    # Distinct report cells: the fault-plan digest suffix keeps the
    # outage and degraded legs from colliding with the healthy one.
    assert len({leg["cell"] for leg in legs}) == len(legs)


def test_all_gates_pass(checked_in):
    gates = checked_in["packs"]["gates"]
    assert gates["pass"]
    assert gates["healthy_reduces_cold_starts"]
    assert gates["degraded_falls_back_to_cold"]
    assert gates["bytes_conserved"]
    assert gates["no_lost_requests"]


def test_healthy_hierarchy_eliminates_cold_serves(checked_in):
    legs = {leg["name"]: leg for leg in checked_in["packs"]["legs"]}
    base, healthy = legs["no-packs"], legs["healthy"]
    assert base["cold_starts"] > 0
    assert healthy["cold_starts"] < base["cold_starts"]
    assert healthy["pack_restores"] > 0
    assert healthy["availability"] >= base["availability"]
    assert healthy["p99_s"] < base["p99_s"]


def test_full_outage_degrades_losslessly(checked_in):
    legs = {leg["name"]: leg for leg in checked_in["packs"]["legs"]}
    degraded = legs["fully-degraded"]
    assert degraded["pack_restores"] == 0
    assert degraded["degraded_cold"] > 0
    assert degraded["lost_requests"] == 0
    assert degraded["bytes_conserved"]


def test_report_carries_pack_metrics(checked_in):
    metrics = checked_in["metrics"]
    assert "pack_fetch_total" in metrics
    outcomes = {(s["labels"]["tier"], s["labels"]["outcome"])
                for s in metrics["pack_fetch_total"]["series"]}
    assert ("cold", "degraded") in outcomes
    assert any(outcome == "hit" for _, outcome in outcomes)
    assert "pack_bytes_total" in metrics
