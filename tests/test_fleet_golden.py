"""Golden regressions for the fleet layer.

Three pins:

- **Delegation byte-identity** — a single-region fleet under inert
  policies replays byte-identical to the bare
  :class:`~repro.serving.cluster.ClusterSimulator`: every latency,
  queue wait, counter, fault dictionary and trace record, with
  fast-forward on and off, under fault plans and under a resilience
  policy.
- **General-path equivalence** — the arrival-by-arrival path mirrors
  the cluster stepping arithmetic exactly: a single-region fleet forced
  onto it equals ``ClusterSimulator(fast_forward=False)``.
- **Frontier report stability** — regenerating the checked-in
  ``benchmarks/fleet_frontier_report.json`` reproduces it byte-for-byte
  (run ``scripts/make_fleet_report.py`` after deliberate changes).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.fleet import (FleetConfig, FleetSimulator, FleetTrace,
                         RegionConfig, RoutingPolicy, merge_traces)
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import burst_trace, poisson_trace
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

_SERVER = InferenceServer("MI100")
_REPORT = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                       "fleet_frontier_report.json")


def _cluster_stats(trace, **cluster_kwargs):
    return ClusterSimulator(_SERVER, ClusterConfig(
        scheme=Scheme.PASK, max_instances=2, keep_alive_s=0.5,
        **cluster_kwargs)).run(trace)


def _fleet_stats(trace, fleet_kwargs=None, **region_kwargs):
    config = FleetConfig(
        regions=(RegionConfig("r0", device="MI100", scheme=Scheme.PASK,
                              max_instances=2, keep_alive_s=0.5,
                              **region_kwargs),),
        **(fleet_kwargs or {}))
    return FleetSimulator(config, servers={"MI100": _SERVER}).run(trace)


def _assert_region_equals_cluster(region, cluster):
    assert region.latencies == cluster.latencies
    assert region.queue_waits == cluster.queue_waits
    assert region.cold_starts == cluster.cold_starts
    assert region.warm_hits == cluster.warm_hits
    assert region.failed == cluster.failed
    assert region.faults.as_dict() == cluster.faults.as_dict()


class TestDelegationByteIdentity:
    @pytest.mark.parametrize("fast_forward", [True, False])
    def test_plain_replay(self, fast_forward):
        trace = poisson_trace("res", 5.0, 10.0, seed=4)
        cluster = _cluster_stats(trace, fast_forward=fast_forward)
        fleet = _fleet_stats(trace,
                             fleet_kwargs={"fast_forward": fast_forward})
        assert fleet.delegated
        region = fleet.regions["r0"]
        _assert_region_equals_cluster(region, cluster)
        assert region.fast_forwarded == cluster.fast_forwarded
        if fast_forward:
            assert region.fast_forwarded > 0

    def test_under_fault_plan(self):
        plan = FaultPlan(seed=11, crash_rate=0.08)
        trace = poisson_trace("res", 6.0, 8.0, seed=5)
        cluster = _cluster_stats(trace, faults=plan)
        fleet = _fleet_stats(trace, faults=plan)
        assert fleet.delegated
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    def test_under_resilience_policy(self):
        policy = ResiliencePolicy()
        plan = FaultPlan(seed=3, crash_rate=0.05)
        trace = poisson_trace("res", 6.0, 8.0, seed=6)
        cluster = _cluster_stats(trace, faults=plan, resilience=policy)
        fleet = _fleet_stats(trace, faults=plan,
                             fleet_kwargs={"resilience": policy})
        assert fleet.delegated
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    def test_trace_records_identical(self):
        trace = poisson_trace("res", 5.0, 6.0, seed=7)
        cluster = _cluster_stats(trace, trace_retention="full")
        fleet = _fleet_stats(
            trace, fleet_kwargs={"trace_retention": "full"})
        assert fleet.delegated
        recorder = fleet.regions["r0"].trace
        assert recorder is not None
        assert list(recorder.records) == list(cluster.trace.records)

    @given(seed=st.integers(0, 300), rate=st.floats(0.5, 12.0),
           fast_forward=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_property_over_seeds(self, seed, rate, fast_forward):
        trace = poisson_trace("res", rate, 5.0, seed=seed)
        cluster = _cluster_stats(trace, fast_forward=fast_forward)
        fleet = _fleet_stats(trace,
                             fleet_kwargs={"fast_forward": fast_forward})
        assert fleet.delegated
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)


class TestGeneralPathEquivalence:
    def _general(self, fleet_trace, **region_kwargs):
        # Non-inert routing forces the general path even for one region.
        stats = _fleet_stats(
            fleet_trace,
            fleet_kwargs={"routing": RoutingPolicy("round-robin")},
            **region_kwargs)
        assert not stats.delegated
        return stats

    def test_single_region_matches_slow_cluster(self):
        trace = poisson_trace("res", 6.0, 10.0, seed=8)
        cluster = _cluster_stats(trace, fast_forward=False)
        fleet = self._general(FleetTrace.from_request_trace(trace))
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    def test_multi_tenant_merge_matches_slow_cluster(self):
        merged = merge_traces(
            [("a", poisson_trace("res", 3.0, 8.0, seed=9)),
             ("b", poisson_trace("res", 3.0, 8.0, seed=10))])
        cluster = _cluster_stats(merged.to_request_trace(),
                                 fast_forward=False)
        fleet = self._general(merged)
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    def test_under_fault_plan(self):
        plan = FaultPlan(seed=13, crash_rate=0.1)
        trace = poisson_trace("res", 6.0, 8.0, seed=11)
        cluster = _cluster_stats(trace, faults=plan, fast_forward=False)
        fleet = self._general(FleetTrace.from_request_trace(trace),
                              faults=plan)
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    def test_simultaneous_burst_arrivals(self):
        trace = burst_trace("res", 16, spacing_s=0.0)
        cluster = _cluster_stats(trace, fast_forward=False)
        fleet = self._general(FleetTrace.from_request_trace(trace))
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)

    @given(seed=st.integers(0, 300), rate=st.floats(0.5, 12.0),
           crash=st.floats(0.0, 0.15))
    @settings(max_examples=30, deadline=None)
    def test_property_over_seeds(self, seed, rate, crash):
        plan = FaultPlan(seed=seed, crash_rate=crash) if crash else None
        trace = poisson_trace("res", rate, 5.0, seed=seed)
        cluster = _cluster_stats(trace, faults=plan, fast_forward=False)
        fleet = self._general(FleetTrace.from_request_trace(trace),
                              faults=plan)
        _assert_region_equals_cluster(fleet.regions["r0"], cluster)


class TestFrontierReportGolden:
    def test_checked_in_report_regenerates_byte_identically(self):
        from repro.runner import fleet_frontier_report
        with open(_REPORT, encoding="utf-8") as handle:
            checked_in = handle.read()
        fresh = fleet_frontier_report(created_unix=0.0)
        regenerated = json.dumps(fresh, indent=2, sort_keys=True) + "\n"
        assert regenerated == checked_in, (
            "fleet frontier sweep drifted from the checked-in golden "
            "report; if the change is deliberate, rerun "
            "scripts/make_fleet_report.py and commit the diff")

    def test_checked_in_report_passes_and_validates(self):
        from repro.runner import validate_report
        with open(_REPORT, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_report(payload) == []
        frontier = payload["fleet_frontier"]
        assert frontier["pass"] is True
        # The paper's economic claim, pinned: proactive loading shifts
        # the scale-to-zero frontier below reactive loading.
        assert (frontier["frontiers"]["pask"]
                < frontier["frontiers"]["baseline"])
        assert (frontier["frontiers"]["pask+restore"]
                <= frontier["frontiers"]["pask"])
