"""Golden regression: the all-zero fault plan is provably inert.

The fault-injection layer threads through every hot path of the
simulator (runtime loads, kernel launches, the PASK loader thread, the
cluster replay).  This file pins the acceptance criterion that an
all-zero :class:`FaultPlan` leaves every experiment **byte-identical**
to running with no plan at all -- same traces, same derived figures --
and that the paper-shape orderings from ``serving.validation`` hold
under the zero plan exactly as they do without it.
"""

import pytest

from repro.core.schemes import Scheme
from repro.models import list_models
from repro.serving.experiments import ExperimentSuite
from repro.serving.validation import CRITERIA
from repro.sim.faults import FaultPlan

# Two independent suites over the full model zoo: one clean, one with an
# all-zero plan threaded through every serve call.
_CLEAN = ExperimentSuite("MI100")
_ZERO = ExperimentSuite("MI100", faults=FaultPlan(seed=123456789))

_SCHEMES = (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)


def _criterion(name):
    for criterion in CRITERIA:
        if criterion.name == name:
            return criterion
    raise KeyError(name)


# ----------------------------------------------------------------------
# Byte identity of the zero-fault path
# ----------------------------------------------------------------------

@pytest.mark.parametrize("model", list_models())
@pytest.mark.parametrize("scheme", _SCHEMES, ids=lambda s: s.value)
def test_zero_plan_cold_runs_bit_identical(model, scheme):
    clean = _CLEAN.cold(model, scheme)
    zero = _ZERO.cold(model, scheme)
    assert zero.total_time == clean.total_time
    assert zero.loads == clean.loads
    assert zero.trace.records == clean.trace.records
    assert not zero.failed
    assert zero.faults.retries == 0
    assert zero.faults.fallbacks == 0


@pytest.mark.parametrize("model", list_models())
def test_zero_plan_hot_runs_bit_identical(model):
    clean = _CLEAN.hot(model)
    zero = _ZERO.hot(model)
    assert zero.total_time == clean.total_time
    assert zero.trace.records == clean.trace.records


def test_zero_plan_figures_identical():
    assert _ZERO.fig6a() == _CLEAN.fig6a()
    assert _ZERO.fig6b() == _CLEAN.fig6b()
    assert _ZERO.table2(batches=(1, 16, 128)) == _CLEAN.table2(
        batches=(1, 16, 128))


# ----------------------------------------------------------------------
# Paper-shape goldens, pinned under the zero plan
# ----------------------------------------------------------------------

def test_fig6a_ordering_holds_under_zero_plan():
    assert _criterion("fig6a-ordering").check(_ZERO)
    data = _ZERO.fig6a()
    # Pin the band too, so a silent recalibration cannot hide behind
    # the ordering still holding (paper: PaSK averages 5.62x).
    assert 3.0 <= data["PaSK"]["average"] <= 7.0
    assert data["Ideal"]["average"] > data["PaSK"]["average"]


def test_table2_monotonicity_holds_under_zero_plan():
    assert _criterion("table2-monotone").check(_ZERO)


def test_fig1a_cold_hot_ratios_hold_under_zero_plan():
    # Fig. 1a: cold starts are order-of-magnitude slower than hot
    # iterations on average (paper: ~21x on MI100); every individual
    # model is at least several times slower, transformers least.
    data = _ZERO.fig1a(devices=("MI100",))
    assert data["MI100"]["average"] > 10.0
    for model, ratio in data["MI100"].items():
        assert ratio > 3.0, (model, ratio)


def test_all_criteria_agree_between_suites():
    # Every shape criterion evaluates identically on the two suites --
    # the strongest statement that the zero plan changed nothing.
    for criterion in CRITERIA:
        assert bool(criterion.check(_ZERO)) == bool(
            criterion.check(_CLEAN)), criterion.name


# ----------------------------------------------------------------------
# Orderings survive an actual chaos plan (acceptance criterion)
# ----------------------------------------------------------------------

def test_orderings_survive_moderate_chaos():
    # With a nonzero seeded plan the absolute times shift, but the
    # qualitative paper shape must not invert: proactive loading still
    # beats the baseline, and batch scaling still dilutes the win.
    plan = FaultPlan(seed=7, load_failure_rate=0.05,
                     launch_failure_rate=0.02,
                     loader_stall_rate=0.1, loader_stall_s=5e-4)
    chaotic = ExperimentSuite("MI100", faults=plan)
    assert _criterion("fig6a-ordering").check(chaotic)
    assert _criterion("table2-monotone").check(chaotic)
