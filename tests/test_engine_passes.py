"""Unit tests for the graph optimization passes."""

import pytest

from repro.engine.passes import (
    CommonSubexpressionElimination,
    ConvFusion,
    DeadCodeElimination,
    IdentityElimination,
    default_passes,
    run_passes,
)
from repro.graph import GraphBuilder


def conv_bn_relu_graph():
    b = GraphBuilder("cbr")
    x = b.input("x", (1, 3, 32, 32))
    y = b.conv(x, 8, 3, pad=1, name="c1")
    y = b.batchnorm(y, name="bn1")
    y = b.relu(y, name="r1")
    b.output(y)
    return b.finish()


class TestDeadCodeElimination:
    def test_removes_unreachable_chain(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        live = b.conv(x, 4, 3, pad=1, name="live")
        dead = b.conv(x, 4, 3, pad=1, name="dead")
        b.relu(dead, name="dead_relu")
        b.output(live)
        g = b.finish()
        out = DeadCodeElimination().run(g)
        assert {n.name for n in out} == {"live"}

    def test_keeps_everything_when_all_live(self):
        g = conv_bn_relu_graph()
        out = DeadCodeElimination().run(g)
        assert out is g  # unchanged graphs returned as-is

    def test_transitively_dead_inputs_removed(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        a = b.conv(x, 4, 3, pad=1, name="a")
        bb = b.relu(a, name="b")
        b.relu(bb, name="c")  # dead tail
        b.output(bb)
        g = b.finish()
        out = DeadCodeElimination().run(g)
        assert {n.name for n in out} == {"a", "b"}


class TestCSE:
    def test_merges_identical_convs(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        # Two identical pools on the same input (weights would differ for
        # convs, so pools are the realistic duplicated subexpression).
        p1 = b.maxpool(x, 2, name="p1")
        p2 = b.maxpool(x, 2, name="p2")
        y = b.add(b.relu(p1), b.relu(p2))
        b.output(y)
        g = b.finish()
        out = CommonSubexpressionElimination().run(g)
        pools = [n for n in out if n.op == "MaxPool"]
        assert len(pools) == 1
        out.validate()

    def test_merges_chained_duplicates(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        r1 = b.relu(x, name="r1")
        r2 = b.relu(x, name="r2")
        s1 = b.sigmoid(r1, name="s1")
        s2 = b.sigmoid(r2, name="s2")
        b.output(b.add(s1, s2))
        g = b.finish()
        out = CommonSubexpressionElimination().run(g)
        assert len([n for n in out if n.op == "Relu"]) == 1
        assert len([n for n in out if n.op == "Sigmoid"]) == 1

    def test_distinct_attrs_not_merged(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        p1 = b.maxpool(x, 2, name="p1")
        p2 = b.avgpool(x, 2, name="p2")
        b.output(b.add(p1, p2))
        g = b.finish()
        out = CommonSubexpressionElimination().run(g)
        assert len(out) == len(g)

    def test_graph_output_producers_kept(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        r1 = b.relu(x, name="r1")
        r2 = b.relu(x, name="r2")
        b.output(r1)
        b.output(r2)
        g = b.finish()
        out = CommonSubexpressionElimination().run(g)
        assert len([n for n in out if n.op == "Relu"]) == 2


class TestIdentityElimination:
    def test_drops_identity_and_dropout(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        y = b.identity(x, name="id1")
        y = b.dropout(y, name="drop1")
        y = b.relu(y, name="r1")
        b.output(y)
        g = b.finish()
        out = IdentityElimination().run(g)
        assert {n.name for n in out} == {"r1"}
        assert out.node("r1").inputs == ("x",)

    def test_keeps_identity_producing_graph_output(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        y = b.identity(x, name="id1")
        b.output(y)
        g = b.finish()
        out = IdentityElimination().run(g)
        assert {n.name for n in out} == {"id1"}


class TestConvFusion:
    def test_fuses_conv_bn_relu(self):
        g = conv_bn_relu_graph()
        out = ConvFusion().run(g)
        assert len(out) == 1
        conv = out.node("c1")
        assert conv.attr("fused_batchnorm") is True
        assert conv.attr("fused_activation") == "relu"
        assert conv.outputs == ("r1_out",)
        out.validate()

    def test_fuses_conv_relu_without_bn(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv(x, 4, 3, pad=1, name="c1")
        y = b.relu(y, name="r1")
        b.output(y)
        out = ConvFusion().run(b.finish())
        assert len(out) == 1
        assert out.node("c1").attr("fused_activation") == "relu"

    def test_no_fusion_across_multi_consumer_tensor(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 8, 8))
        y = b.conv(x, 4, 3, pad=1, name="c1")
        r = b.relu(y, name="r1")
        z = b.add(y, r)  # conv output consumed twice
        b.output(z)
        out = ConvFusion().run(b.finish())
        assert len(out) == 3

    def test_no_fusion_when_intermediate_is_output(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 8, 8))
        y = b.conv(x, 4, 3, pad=1, name="c1")
        r = b.relu(y, name="r1")
        b.output(y)
        b.output(r)
        out = ConvFusion().run(b.finish())
        assert len(out) == 2

    def test_gelu_not_fused(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 8, 8))
        y = b.conv(x, 4, 3, pad=1, name="c1")
        y = b.gelu(y, name="g1")
        b.output(y)
        out = ConvFusion().run(b.finish())
        assert len(out) == 2


class TestPipeline:
    def test_default_pipeline_order(self):
        names = [p.name for p in default_passes()]
        assert names == ["identity-elimination",
                         "common-subexpression-elimination",
                         "dead-code-elimination", "conv-fusion"]

    def test_run_passes_end_to_end(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 32, 32))
        y = b.identity(x)
        y = b.conv(y, 8, 3, pad=1, name="c1")
        y = b.batchnorm(y)
        y = b.relu(y)
        b.conv(x, 8, 5, pad=2, name="dead_conv")
        b.output(y)
        g = b.finish()
        out = run_passes(g)
        assert len(out) == 1
        assert out.nodes[0].op == "Conv"
        out.validate()
