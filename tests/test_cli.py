"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "res"])
        assert args.scheme == "baseline"
        assert args.batch == 1
        assert args.device == "MI100"

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "res", "--scheme", "magic"])

    def test_bad_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "res", "--device", "H100"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out
        assert "swin_v2_b" in out

    def test_serve_cold(self, capsys):
        assert main(["serve", "alex", "--scheme", "pask"]) == 0
        out = capsys.readouterr().out
        assert "cold start under PaSK" in out
        assert "loads:" in out

    def test_serve_hot(self, capsys):
        assert main(["serve", "alex", "--hot"]) == 0
        assert "hot run" in capsys.readouterr().out

    def test_serve_batch(self, capsys):
        assert main(["serve", "alex", "--batch", "4"]) == 0
        assert "batch 4" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out
        assert "average" in out

    def test_experiment_table2_smoke(self, capsys):
        # table2 sweeps batches and is slow; keep to parser sanity only.
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"

    def test_session(self, capsys):
        assert main(["session", "alex", "--requests", "2",
                     "--interval-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "request 0" in out and "request 1" in out

    def test_session_no_preload(self, capsys):
        assert main(["session", "alex", "--requests", "2",
                     "--no-preload"]) == 0
        assert "interval preload off" in capsys.readouterr().out

    def test_cluster(self, capsys):
        assert main(["cluster", "alex", "--rate", "10", "--duration", "1",
                     "--scheme", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "cold starts" in out
        assert "p99" in out


class TestBenchCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.jobs == 1
        assert not args.no_cache
        assert args.cache_dir == ".repro-cache"
        assert args.baseline is None
        assert args.tolerance == 0.05

    def test_quick_bench_writes_valid_report(self, tmp_path, capsys):
        import json
        import os
        from repro.runner import validate_report
        code = main(["bench", "--quick", "--jobs", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--output", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "grid 'quick'" in out
        reports = [name for name in os.listdir(tmp_path)
                   if name.startswith("BENCH_") and name.endswith(".json")]
        assert len(reports) == 1
        with open(tmp_path / reports[0], encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_report(payload) == []

    def test_bench_regression_gate(self, tmp_path, capsys):
        import json
        import os
        cache = str(tmp_path / "cache")
        assert main(["bench", "--quick", "--cache-dir", cache,
                     "--output", str(tmp_path)]) == 0
        report = [name for name in os.listdir(tmp_path)
                  if name.startswith("BENCH_")][0]
        baseline = str(tmp_path / report)
        # Identical warm rerun: no regressions, exit 0.
        assert main(["bench", "--quick", "--cache-dir", cache,
                     "--no-report", "--baseline", baseline]) == 0
        # Tighten the baseline artificially: every cold cell regresses.
        with open(baseline, encoding="utf-8") as handle:
            doctored = json.load(handle)
        for cell in doctored["cells"]:
            if "total_time_s" in cell:
                cell["total_time_s"] *= 0.5
        with open(baseline, "w", encoding="utf-8") as handle:
            json.dump(doctored, handle)
        capsys.readouterr()
        assert main(["bench", "--quick", "--cache-dir", cache,
                     "--no-report", "--baseline", baseline]) == 1
        assert "regression" in capsys.readouterr().out.lower()

    def test_experiment_jobs_flag(self, capsys):
        args = build_parser().parse_args(
            ["experiment", "fig6a", "--jobs", "4"])
        assert args.jobs == 4


class TestFleetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.model == "res"
        assert args.devices == "MI100,A100"
        assert args.routing == "warm-first"
        assert args.autoscale == "none"
        assert not args.frontier

    def test_bad_routing_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--routing", "random"])

    def test_scenario_reports_regions_and_conservation(self, capsys):
        assert main(["fleet", "res", "--devices", "MI100,A100",
                     "--routing", "least-queue", "--arrival", "bursty",
                     "--rate", "4", "--duration", "8",
                     "--tenants", "2"]) == 0
        out = capsys.readouterr().out
        assert "r0 [MI100]" in out
        assert "r1 [A100]" in out
        assert "tenant t0" in out
        assert "availability" in out

    def test_scale_to_zero_without_timeout_errors(self, capsys):
        assert main(["fleet", "res", "--autoscale",
                     "scale-to-zero"]) == 2
        assert "idle_timeout_s" in capsys.readouterr().out

    def test_single_region_delegates(self, capsys):
        assert main(["fleet", "res", "--devices", "MI100",
                     "--routing", "single", "--duration", "6"]) == 0
        assert "single-cluster fast path" in capsys.readouterr().out

    def test_frontier_writes_report(self, tmp_path, capsys):
        import json

        from repro.runner import validate_report

        report_path = tmp_path / "frontier.json"
        code = main(["fleet", "--frontier", "--output",
                     str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier[pask]" in out
        assert "PASS" in out
        payload = json.loads(report_path.read_text())
        assert validate_report(payload) == []
        assert payload["fleet_frontier"]["pass"] is True

    def test_bench_fleet_flag_parses(self):
        args = build_parser().parse_args(["bench", "--quick", "--fleet"])
        assert args.fleet
