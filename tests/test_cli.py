"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "res"])
        assert args.scheme == "baseline"
        assert args.batch == 1
        assert args.device == "MI100"

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "res", "--scheme", "magic"])

    def test_bad_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "res", "--device", "H100"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out
        assert "swin_v2_b" in out

    def test_serve_cold(self, capsys):
        assert main(["serve", "alex", "--scheme", "pask"]) == 0
        out = capsys.readouterr().out
        assert "cold start under PaSK" in out
        assert "loads:" in out

    def test_serve_hot(self, capsys):
        assert main(["serve", "alex", "--hot"]) == 0
        assert "hot run" in capsys.readouterr().out

    def test_serve_batch(self, capsys):
        assert main(["serve", "alex", "--batch", "4"]) == 0
        assert "batch 4" in capsys.readouterr().out

    def test_experiment_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "hit_rate" in out
        assert "average" in out

    def test_experiment_table2_smoke(self, capsys):
        # table2 sweeps batches and is slow; keep to parser sanity only.
        args = build_parser().parse_args(["experiment", "table2"])
        assert args.name == "table2"

    def test_session(self, capsys):
        assert main(["session", "alex", "--requests", "2",
                     "--interval-ms", "30"]) == 0
        out = capsys.readouterr().out
        assert "request 0" in out and "request 1" in out

    def test_session_no_preload(self, capsys):
        assert main(["session", "alex", "--requests", "2",
                     "--no-preload"]) == 0
        assert "interval preload off" in capsys.readouterr().out

    def test_cluster(self, capsys):
        assert main(["cluster", "alex", "--rate", "10", "--duration", "1",
                     "--scheme", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "cold starts" in out
        assert "p99" in out
