"""Structural tests for the curated task grids.

These pin the *shape* of the grids — which cells exist, no duplicates,
ablations at batch 1 only — without executing anything, so they are
essentially free.
"""

import pytest

from repro.core.schemes import Scheme
from repro.models import list_models
from repro.runner import bench_grid, experiment_grid
from repro.runner.grid import BENCH_GRIDS
from repro.sim.faults import FaultPlan


class TestExperimentGrid:
    def test_covers_every_figure_cell(self):
        tasks = experiment_grid(models=["res"])
        cold = {(t.device, t.scheme, t.batch) for t in tasks
                if t.kind == "cold"}
        # Table II sweep for every headline scheme ...
        for scheme in (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK,
                       Scheme.IDEAL):
            for batch in (1, 4, 16, 64, 128):
                assert ("MI100", scheme.value, batch) in cold
        # ... ablations at batch 1 only (Fig. 8) ...
        for scheme in (Scheme.PASK_I, Scheme.PASK_R):
            assert ("MI100", scheme.value, 1) in cold
            assert not any(batch != 1 for device, value, batch in cold
                           if value == scheme.value)
        # ... and Fig. 1(a) baseline cells on the other devices.
        for device in ("A100", "6900XT"):
            assert (device, Scheme.BASELINE.value, 1) in cold
            assert any(t.kind == "hot" and t.device == device for t in tasks)

    def test_no_duplicates(self):
        tasks = experiment_grid()
        assert len(tasks) == len(set(tasks))

    def test_threads_fault_plan_through_every_cell(self):
        plan = FaultPlan(seed=3, load_failure_rate=0.05)
        tasks = experiment_grid(models=["alex"], faults=plan)
        assert all(task.faults == plan for task in tasks)

    def test_full_zoo_grid_size(self):
        # 12 models x (4 schemes x 5 batches + 2 ablations + 1 hot)
        # + 2 other devices x 12 models x (1 baseline + 1 hot)
        assert len(experiment_grid()) == 12 * 23 + 2 * 12 * 2


class TestBenchGrid:
    def test_unknown_grid_rejected(self):
        with pytest.raises(ValueError):
            bench_grid("nope")

    def test_quick_is_smoke_sized(self):
        tasks = bench_grid("quick")
        assert len(tasks) == 8
        assert {t.kind for t in tasks} == {"cold", "hot", "cluster"}

    def test_full_covers_the_zoo_and_all_devices(self):
        tasks = bench_grid("full")
        assert len(tasks) == len(set(tasks))
        cold_models = {t.model for t in tasks if t.kind == "cold"}
        assert cold_models == set(list_models())
        assert {t.device for t in tasks} == {"MI100", "A100", "6900XT"}
        assert any(t.kind == "cluster" for t in tasks)
        assert any(t.batch == 128 for t in tasks if t.kind == "cold")

    def test_every_named_grid_builds(self):
        for name in BENCH_GRIDS:
            assert bench_grid(name)
