"""Tests for request traces and the autoscaling cluster simulator."""

import pytest

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import RequestTrace, burst_trace, \
    periodic_trace, poisson_trace
from repro.serving.server import InferenceServer


@pytest.fixture(scope="module")
def server():
    return InferenceServer("MI100")


class TestTraces:
    def test_poisson_deterministic_per_seed(self):
        a = poisson_trace("alex", rate_hz=5, duration_s=10, seed=7)
        b = poisson_trace("alex", rate_hz=5, duration_s=10, seed=7)
        c = poisson_trace("alex", rate_hz=5, duration_s=10, seed=8)
        assert a.arrivals == b.arrivals
        assert a.arrivals != c.arrivals

    def test_poisson_rate_roughly_respected(self):
        trace = poisson_trace("alex", rate_hz=10, duration_s=100, seed=1)
        assert 700 < len(trace) < 1300
        assert trace.mean_interarrival == pytest.approx(0.1, rel=0.3)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_trace("alex", rate_hz=0, duration_s=1)

    def test_burst(self):
        trace = burst_trace("alex", 5)
        assert len(trace) == 5
        assert trace.duration == 0.0
        spaced = burst_trace("alex", 3, spacing_s=0.01)
        assert spaced.arrivals == (0.0, 0.01, 0.02)

    def test_periodic(self):
        trace = periodic_trace("alex", period_s=2.0, count=4)
        assert trace.arrivals == (0.0, 2.0, 4.0, 6.0)
        assert trace.mean_interarrival == pytest.approx(2.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            RequestTrace("m", ())
        with pytest.raises(ValueError):
            RequestTrace("m", (1.0, 0.5))
        with pytest.raises(ValueError):
            RequestTrace("m", (-1.0,))
        with pytest.raises(ValueError):
            RequestTrace("m", (0.0,), batch=0)


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(max_instances=0)
        with pytest.raises(ValueError):
            ClusterConfig(keep_alive_s=-1)


class TestClusterSimulator:
    def test_first_request_is_cold(self, server):
        sim = ClusterSimulator(server, ClusterConfig())
        stats = sim.run(periodic_trace("alex", period_s=1.0, count=1))
        assert stats.cold_starts == 1
        assert stats.warm_hits == 0

    def test_spaced_requests_stay_warm(self, server):
        sim = ClusterSimulator(server, ClusterConfig(keep_alive_s=10.0))
        stats = sim.run(periodic_trace("alex", period_s=1.0, count=5))
        assert stats.cold_starts == 1
        assert stats.warm_hits == 4

    def test_keep_alive_expiry_forces_cold_starts(self, server):
        sim = ClusterSimulator(server, ClusterConfig(keep_alive_s=0.5))
        stats = sim.run(periodic_trace("alex", period_s=2.0, count=4))
        assert stats.cold_starts == 4

    def test_burst_spawns_parallel_cold_instances(self, server):
        sim = ClusterSimulator(server, ClusterConfig(max_instances=4))
        stats = sim.run(burst_trace("alex", 4))
        assert stats.cold_starts == 4
        # All four run in parallel: no queueing.
        assert max(stats.queue_waits) == 0.0

    def test_capacity_limit_queues_requests(self, server):
        sim = ClusterSimulator(server, ClusterConfig(max_instances=1))
        stats = sim.run(burst_trace("alex", 3))
        assert stats.cold_starts == 1
        assert stats.warm_hits == 2
        assert stats.queue_waits[1] > 0

    def test_pask_reduces_tail_latency(self, server):
        trace = poisson_trace("res", rate_hz=30.0, duration_s=2.0, seed=3)
        baseline = ClusterSimulator(
            server, ClusterConfig(scheme=Scheme.BASELINE, max_instances=4,
                                  keep_alive_s=0.3)).run(trace)
        pask = ClusterSimulator(
            server, ClusterConfig(scheme=Scheme.PASK, max_instances=4,
                                  keep_alive_s=0.3)).run(trace)
        assert pask.percentile(0.99) < baseline.percentile(0.99)
        assert pask.mean_latency < baseline.mean_latency

    def test_stats_helpers(self, server):
        sim = ClusterSimulator(server, ClusterConfig())
        stats = sim.run(periodic_trace("alex", period_s=1.0, count=3))
        assert stats.requests == 3
        assert 0 < stats.cold_start_fraction <= 1
        assert stats.percentile(0.0) <= stats.percentile(1.0)
        with pytest.raises(ValueError):
            stats.percentile(1.5)


class TestClusterStatsEdgeCases:
    """Regression tests: stats must be crash-free on empty latencies and
    use the nearest-rank percentile definition."""

    def test_empty_stats_are_reportable(self):
        from repro.serving.cluster import ClusterStats
        stats = ClusterStats()
        assert stats.mean_latency == 0.0
        assert stats.percentile(0.5) == 0.0
        assert stats.percentile(0.99) == 0.0
        assert stats.cold_start_fraction == 0.0
        assert stats.availability == 1.0

    def test_all_failed_stats_are_reportable(self):
        from repro.serving.cluster import ClusterStats
        stats = ClusterStats(failed=5)
        assert stats.completed == 0
        assert stats.requests == 5
        assert stats.availability == 0.0
        assert stats.mean_latency == 0.0
        assert stats.percentile(0.99) == 0.0

    def test_nearest_rank_percentile(self):
        from repro.serving.cluster import ClusterStats
        stats = ClusterStats(latencies=[5.0, 1.0, 3.0, 2.0, 4.0])
        # Nearest rank: rank = ceil(q * 5), 1-based.
        assert stats.percentile(0.5) == 3.0    # true median, odd n
        assert stats.percentile(1.0) == 5.0    # maximum
        assert stats.percentile(0.0) == 1.0    # clamped to rank 1
        assert stats.percentile(0.2) == 1.0
        assert stats.percentile(0.21) == 2.0

    def test_single_latency(self):
        from repro.serving.cluster import ClusterStats
        stats = ClusterStats(latencies=[0.25])
        assert stats.mean_latency == 0.25
        for q in (0.0, 0.5, 0.99, 1.0):
            assert stats.percentile(q) == 0.25

    def test_replay_with_every_request_failed(self, server):
        """A fault plan that kills every attempt must yield a replay
        whose stats are still fully reportable (the original crash)."""
        from repro.sim.faults import FaultPlan
        plan = FaultPlan(seed=11, crash_rate=1.0, max_reroutes=0,
                         restart_delay_s=0.01)
        sim = ClusterSimulator(
            server, ClusterConfig(scheme=Scheme.BASELINE, faults=plan))
        stats = sim.run(burst_trace("alex", 4))
        assert stats.completed == 0
        assert stats.failed == 4
        assert stats.requests == 4
        assert stats.availability == 0.0
        # These used to raise ZeroDivisionError / IndexError:
        assert stats.mean_latency == 0.0
        assert stats.percentile(0.5) == 0.0
        assert stats.percentile(0.99) == 0.0
