"""Tests for the fp16 solver ladder and NNV12's bucket consolidation."""

import pytest

from repro.engine import LoweringOptions, lower
from repro.gpu import MI100
from repro.graph import GraphBuilder
from repro.primitive import ConvProblem, MIOpenLibrary
from repro.primitive.solvers.fp16 import build_solutions as fp16_solutions
from repro.tensors import DataType

LIBRARY = MIOpenLibrary(MI100)

FP16_3X3 = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1),
                       dtype=DataType.FP16)
FP16_ODD = ConvProblem(1, 7, 30, 30, 11, (3, 3), pad=(1, 1),
                       dtype=DataType.FP16)
FP32_3X3 = ConvProblem(1, 64, 56, 56, 64, (3, 3), pad=(1, 1))


class TestFp16Ladder:
    def test_dedicated_fp16_solutions_exist(self):
        names = {s.name for s in fp16_solutions()}
        assert names == {"ConvGemmFwdFp16", "ConvImplicitGemmMfmaFp16Fwd"}

    def test_fp16_only(self):
        for solution in fp16_solutions():
            assert solution.is_applicable(FP16_3X3) or \
                solution.name == "ConvImplicitGemmMfmaFp16Fwd"
            assert not solution.is_applicable(FP32_3X3)

    def test_fp16_universal_fallback(self):
        generic = next(s for s in fp16_solutions()
                       if s.name == "ConvGemmFwdFp16")
        assert generic.is_applicable(FP16_ODD)

    def test_find_best_serves_fp16(self):
        best = LIBRARY.find_best(FP16_3X3)
        assert best.is_applicable(FP16_3X3)
        assert DataType.FP16 in best.supported_dtypes

    def test_fp32_solutions_reject_fp16(self):
        wino = LIBRARY.solution_by_name("ConvBinWinogradFwd<3,3>")
        assert not wino.is_applicable(FP16_3X3)


class TestBucketConsolidation:
    def build_graph(self):
        b = GraphBuilder("consolidate")
        x = b.input("x", (1, 32, 56, 56))
        for i in range(4):
            # Same kernel-config bucket, different exact shapes.
            x = b.conv(x, 32 if i % 2 else 64, 3, pad=1, name=f"c{i}")
        b.output(x)
        return b.finish()

    def test_consolidated_layers_share_one_binary(self):
        program = lower(self.build_graph(), LIBRARY,
                        LoweringOptions(consolidate_buckets=True,
                                        native_layout_only=True))
        solutions = {}
        for instr in program.primitive_instructions:
            solution = LIBRARY.solution_by_name(instr.solution_name)
            co = solution.code_object_for(instr.problem)
            solutions.setdefault(co.name, []).append(instr.name)
        # All four convolutions share a single bucket-level binary.
        assert len(solutions) == 1
        (members,) = solutions.values()
        assert len(members) == 4

    def test_default_lowering_loads_per_shape(self):
        program = lower(self.build_graph(), LIBRARY)
        binaries = set()
        for instr in program.primitive_instructions:
            solution = LIBRARY.solution_by_name(instr.solution_name)
            binaries.add(solution.code_object_for(instr.problem).name)
        assert len(binaries) >= 2

    def test_consolidation_requires_group_of_two(self):
        b = GraphBuilder("solo")
        x = b.input("x", (1, 32, 56, 56))
        x = b.conv(x, 64, 3, pad=1, name="only")
        b.output(x)
        program = lower(b.finish(), LIBRARY,
                        LoweringOptions(consolidate_buckets=True,
                                        native_layout_only=True))
        instr = program.primitive_instructions[0]
        solution = LIBRARY.solution_by_name(instr.solution_name)
        # A singleton keeps the per-problem optimal pick (no sharing win).
        best = LIBRARY.find_best(instr.problem, native_layout_only=True)
        assert solution.name == best.name

    def test_consolidated_solution_is_bucket_level(self):
        program = lower(self.build_graph(), LIBRARY,
                        LoweringOptions(consolidate_buckets=True,
                                        native_layout_only=True))
        for instr in program.primitive_instructions:
            solution = LIBRARY.solution_by_name(instr.solution_name)
            assert solution.specialization <= 1
