"""Cold-start attribution: exact sums, critical-path loads, parity.

Pins the two acceptance criteria of the telemetry work:

- per-request attribution components sum to the request latency within
  1e-9 on a mixed warm/cold session, and
- the non-exclusive ``spans_breakdown`` is byte-identical to
  ``TraceRecorder.breakdown`` for the paper's four schemes.
"""

import pytest

from repro.core.schemes import Scheme
from repro.obs import (SpanRecorder, attribute_request, attribute_result,
                       attribute_spans, spans_breakdown)
from repro.obs.spans import Span
from repro.serving.server import InferenceServer
from repro.sim.trace import Phase

FOUR_SCHEMES = (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)
BREAKDOWN_PHASES = (Phase.PARSE, Phase.LOAD, Phase.ISSUE, Phase.EXEC,
                    Phase.CHECK, Phase.OVERHEAD)


@pytest.fixture(scope="module")
def server():
    return InferenceServer("MI100")


class TestExclusiveAttribution:
    def test_components_sum_exactly_to_window(self):
        spans = [
            Span(1, "load", "load", "loader", 0.0, 3.0, attrs=(("size", 10),)),
            Span(2, "exec", "exec", "gpu", 2.0, 4.0),
            Span(3, "check", "check", "host", 0.5, 1.0),
        ]
        verdict = attribute_spans(spans, window=(0.0, 5.0))
        components = verdict.components()
        assert sum(components.values()) == verdict.total_time == 5.0
        # EXEC outranks LOAD on the overlap [2, 3].
        assert components["exec"] == 2.0
        assert components["load"] == 2.0
        assert components["check"] == 0.0  # fully shadowed by the load
        assert components["others"] == 1.0

    def test_critical_loads_and_bytes(self):
        spans = [
            Span(1, "mod_a", "load", "loader", 0.0, 2.0,
                 attrs=(("size", 100),)),
            Span(2, "mod_b", "load", "loader", 0.0, 2.0,
                 attrs=(("size", 7),)),   # fully shadowed by mod_a
            Span(3, "mod_c", "load", "loader", 2.0, 3.0,
                 attrs=(("size", 30),)),
        ]
        verdict = attribute_spans(spans, window=(0.0, 3.0))
        assert verdict.critical_loads == ["mod_a", "mod_c"]
        assert verdict.critical_load_bytes == 130
        assert sum(verdict.load_seconds.values()) == 3.0

    def test_empty_spans(self):
        verdict = attribute_spans([])
        assert verdict.total_time == 0.0
        assert verdict.fractions()["others"] == 0.0

    def test_payload_is_sorted_and_jsonable(self):
        import json
        spans = [Span(1, "m", "load", "loader", 0.0, 1.0,
                      attrs=(("size", 5),))]
        payload = attribute_spans(spans).to_payload()
        json.dumps(payload)
        assert payload["critical_load_bytes"] == 5


class TestPerRequestAttribution:
    def test_session_mixed_warm_cold_sums_to_latency(self, server):
        # Request 0 is the cold start, later requests run warm -- the
        # acceptance scenario for per-request attribution.
        spans = SpanRecorder()
        results = server.serve_session("res", Scheme.PASK, n_requests=3,
                                       spans=spans)
        requests = spans.requests()
        assert len(requests) == len(results) == 3
        all_spans = list(spans)
        for request, result in zip(requests, results):
            verdict = attribute_request(all_spans, request)
            total = sum(verdict.components().values())
            assert total == pytest.approx(result.total_time, abs=1e-9)
            assert verdict.total_time == pytest.approx(result.total_time,
                                                       abs=1e-9)
        cold = attribute_request(all_spans, requests[0])
        warm = attribute_request(all_spans, requests[-1])
        assert cold.critical_load_bytes > 0
        assert cold.phase_seconds[Phase.LOAD] > warm.phase_seconds[Phase.LOAD]

    def test_cold_serve_request_attribution(self, server):
        spans = SpanRecorder()
        result = server.serve_cold("res", Scheme.PASK, spans=spans)
        request = spans.requests()[0]
        verdict = attribute_request(list(spans), request)
        assert sum(verdict.components().values()) == pytest.approx(
            result.total_time, abs=1e-9)
        assert verdict.critical_load_bytes > 0


class TestBreakdownParity:
    @pytest.mark.parametrize("scheme", FOUR_SCHEMES,
                             ids=[s.label for s in FOUR_SCHEMES])
    def test_spans_breakdown_matches_trace_breakdown(self, server, scheme):
        spans = SpanRecorder()
        result = server.serve_cold("res", scheme, spans=spans)
        trace = result.trace
        expected = trace.breakdown(BREAKDOWN_PHASES,
                                   total_time=result.total_time)
        got = spans_breakdown(list(spans), BREAKDOWN_PHASES,
                              total_time=result.total_time)
        # Byte-identical floats, not approximately equal.
        assert got == expected

    def test_attribute_result_covers_whole_run(self, server):
        result = server.serve_cold("res", Scheme.BASELINE)
        verdict = attribute_result(result)
        start, end = result.trace.span()
        assert sum(verdict.components().values()) == pytest.approx(
            end - start, abs=1e-9)
        assert verdict.critical_load_bytes > 0

    def test_pask_attribution_cuts_critical_load_bytes(self, server):
        # The paper's headline: PASK keeps load bytes off the critical
        # path relative to the baseline.
        def critical_bytes(scheme):
            spans = SpanRecorder()
            server.serve_cold("res", scheme, spans=spans)
            request = spans.requests()[0]
            return attribute_request(list(spans), request).critical_load_bytes

        assert critical_bytes(Scheme.PASK) < critical_bytes(Scheme.BASELINE)
