"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = {}

    def proc():
        yield env.timeout(2.5)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == 2.5
    assert env.now == 2.5


def test_timeout_carries_value():
    env = Environment()
    seen = {}

    def proc():
        value = yield env.timeout(1.0, value="payload")
        seen["value"] = value

    env.process(proc())
    env.run()
    assert seen["value"] == "payload"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((name, env.now))

    env.process(proc("a", 1.0))
    env.process(proc("b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (t=1.5 vs t=2.0)
    # so FIFO tie-breaking runs b first.
    assert order == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                     ("a", 3.0), ("b", 4.5)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = {}

    def waiter():
        value = yield gate
        seen["value"] = value
        seen["time"] = env.now

    def opener():
        yield env.timeout(4.0)
        gate.succeed(42)

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == {"value": 42, "time": 4.0}


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = {}

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught["exc"] = str(exc)

    env.process(waiter())
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught["exc"] == "boom"


def test_yield_already_triggered_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    seen = {}

    def proc():
        value = yield event
        seen["value"] = value

    env.process(proc())
    env.run()
    assert seen["value"] == "early"


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "result"

    process = env.process(proc())
    assert env.run(until=process) == "result"


def test_process_waits_on_other_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2.0)
        return "child-done"

    def parent():
        result = yield env.process(child())
        log.append((result, env.now))

    env.process(parent())
    env.run()
    assert log == [("child-done", 2.0)]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_event_never_triggering_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        env.run(until=event)


def test_run_until_horizon_processes_events_at_the_horizon():
    # A timeout landing exactly on the horizon must fire, including any
    # zero-delay follow-ups it schedules onto the immediate deque at
    # that same instant.
    env = Environment()
    log = []

    def proc():
        yield env.timeout(2.0)
        log.append(("timeout", env.now))
        yield env.timeout(0.0)  # immediate event at exactly the horizon
        log.append(("immediate", env.now))

    env.process(proc())
    env.run(until=2.0)
    assert log == [("timeout", 2.0), ("immediate", 2.0)]
    assert env.now == 2.0


def test_run_until_horizon_leaves_later_immediates_queued():
    # An immediate scheduled at t=2 by a timeout *beyond* the horizon
    # must not run; one scheduled exactly at the horizon must.
    env = Environment()
    log = []

    def early():
        yield env.timeout(1.0)
        yield env.timeout(0.0)
        log.append(("early", env.now))

    def late():
        yield env.timeout(1.5)
        log.append(("late", env.now))

    env.process(early())
    env.process(late())
    env.run(until=1.0)
    assert log == [("early", 1.0)]
    assert env.now == 1.0
    env.run()  # draining the rest picks the late event back up
    assert log == [("early", 1.0), ("late", 1.5)]


def test_run_into_the_past_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=4.0)


def test_events_scheduled_counts_every_schedule():
    env = Environment()
    assert env.events_scheduled == 0

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    # Bootstrap + timeout + process termination = 3 scheduled events.
    assert env.events_scheduled == 3


def test_all_of_collects_values_in_order():
    env = Environment()
    results = {}

    def proc():
        values = yield env.all_of([env.timeout(3.0, "slow"),
                                   env.timeout(1.0, "fast")])
        results["values"] = values
        results["time"] = env.now

    env.process(proc())
    env.run()
    assert results == {"values": ["slow", "fast"], "time": 3.0}


def test_all_of_empty_triggers_immediately():
    env = Environment()
    combined = AllOf(env, [])
    assert combined.triggered
    assert combined.value == []


def test_any_of_returns_first_value():
    env = Environment()
    seen = {}

    def proc():
        value = yield env.any_of([env.timeout(3.0, "slow"),
                                  env.timeout(1.0, "fast")])
        seen["value"] = value
        seen["time"] = env.now

    env.process(proc())
    env.run()
    assert seen == {"value": "fast", "time": 1.0}


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))

    def attacker(target):
        yield env.timeout(5.0)
        target.interrupt(cause="stop")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [("interrupted", "stop", 5.0)]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [3.0]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_stale_wakeup_after_interrupt_is_ignored():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(100.0)
        log.append(("resumed", env.now))

    def attacker(target):
        yield env.timeout(4.0)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    # The stale timeout at t=10 must not wake the process early.
    assert log == [("interrupted", 4.0), ("resumed", 104.0)]


def test_process_exception_propagates_to_waiting_parent():
    env = Environment()
    caught = {}

    def child():
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            caught["exc"] = str(exc)

    env.process(parent())
    env.run()
    assert caught["exc"] == "child failed"


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_is_alive_transitions():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_tie_breaking_is_fifo():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(name))
    env.run()
    assert order == ["first", "second", "third"]


# ---------------------------------------------------------------------------
# Property tests: the optimized kernel (immediate-event deque, lazy
# callback storage, __slots__) must preserve the exact (time, sequence)
# global event ordering of the original single-heap implementation.
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

_delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=30)


def _firing_order(delays):
    """Schedule one timeout per delay and record the firing order."""
    env = Environment()
    order = []

    def proc(index, delay):
        yield env.timeout(delay)
        order.append((index, env.now))

    for index, delay in enumerate(delays):
        env.process(proc(index, delay))
    env.run()
    return order


@settings(max_examples=200, deadline=None)
@given(_delays)
def test_same_schedule_is_deterministic(delays):
    """Two identical schedules produce identical event orderings."""
    assert _firing_order(delays) == _firing_order(list(delays))


@settings(max_examples=200, deadline=None)
@given(_delays)
def test_global_order_is_time_then_sequence(delays):
    """Events fire sorted by (time, scheduling sequence).

    This pins the zero-delay fast path: immediate events routed through
    the deque must interleave with heap events in exactly the order a
    single priority queue would produce.
    """
    order = _firing_order(delays)
    # Every process does one env.process (seq 2i) then one timeout
    # (seq 2i+1 at creation time 0), so timeout seq order == index order.
    expected = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert [index for index, _ in order] == expected
    for index, fired_at in order:
        assert fired_at == delays[index]


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=20),
       st.floats(min_value=0.0, max_value=5.0,
                 allow_nan=False, allow_infinity=False))
def test_equal_delay_ties_break_fifo(count, delay):
    """N timeouts with the same delay fire in scheduling order."""
    order = _firing_order([delay] * count)
    assert [index for index, _ in order] == list(range(count))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=10))
def test_all_of_preserves_input_order(delays):
    """AllOf yields values in input order and fires at the max delay."""
    env = Environment()
    seen = {}

    def proc():
        values = yield env.all_of(
            [env.timeout(d, value=i) for i, d in enumerate(delays)])
        seen["values"] = values
        seen["time"] = env.now

    env.process(proc())
    env.run()
    assert seen["values"] == list(range(len(delays)))
    assert seen["time"] == max(delays)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=10))
def test_any_of_returns_earliest_scheduled_winner(delays):
    """AnyOf fires at the min delay with the first-scheduled winner."""
    env = Environment()
    seen = {}

    def proc():
        value = yield env.any_of(
            [env.timeout(d, value=i) for i, d in enumerate(delays)])
        seen["value"] = value
        seen["time"] = env.now

    env.process(proc())
    env.run()
    fastest = min(delays)
    assert seen["time"] == fastest
    # Ties break by scheduling sequence: first index at the min delay.
    assert seen["value"] == delays.index(fastest)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.5, max_value=5.0,
                 allow_nan=False, allow_infinity=False),
       st.floats(min_value=0.0, max_value=0.4,
                 allow_nan=False, allow_infinity=False))
def test_interrupt_fires_before_pending_timeout(wait, strike):
    """An interrupt lands at the attacker's time, not the victim's, and
    the stale wakeup never resumes the victim early."""
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(wait)
            log.append(("finished", env.now))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))
        yield env.timeout(wait)
        log.append(("resumed", env.now))

    def attacker(target):
        yield env.timeout(strike)
        target.interrupt(cause="chaos")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log[0] == ("interrupted", "chaos", strike)
    assert log[1] == ("resumed", strike + wait)


@settings(max_examples=50, deadline=None)
@given(_delays)
def test_zero_delay_chain_runs_within_one_instant(delays):
    """A chain of zero timeouts scheduled among real ones never
    advances the clock and still respects FIFO with heap events."""
    env = Environment()
    order = []

    def zero_chain(name, hops):
        for _ in range(hops):
            yield env.timeout(0.0)
        order.append((name, env.now))

    def sleeper(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(zero_chain("chain", min(len(delays), 5)))
    for index, delay in enumerate(delays):
        env.process(sleeper(index, delay))
    env.run()
    chain_pos = [i for i, (name, _) in enumerate(order)
                 if name == "chain"][0]
    assert order[chain_pos][1] == 0.0
    # Everything that fired before the chain also fired at t=0.
    for _, fired_at in order[:chain_pos]:
        assert fired_at == 0.0
