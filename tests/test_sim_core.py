"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = {}

    def proc():
        yield env.timeout(2.5)
        done["t"] = env.now

    env.process(proc())
    env.run()
    assert done["t"] == 2.5
    assert env.now == 2.5


def test_timeout_carries_value():
    env = Environment()
    seen = {}

    def proc():
        value = yield env.timeout(1.0, value="payload")
        seen["value"] = value

    env.process(proc())
    env.run()
    assert seen["value"] == "payload"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((name, env.now))

    env.process(proc("a", 1.0))
    env.process(proc("b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (t=1.5 vs t=2.0)
    # so FIFO tie-breaking runs b first.
    assert order == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
                     ("a", 3.0), ("b", 4.5)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = {}

    def waiter():
        value = yield gate
        seen["value"] = value
        seen["time"] = env.now

    def opener():
        yield env.timeout(4.0)
        gate.succeed(42)

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == {"value": 42, "time": 4.0}


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = {}

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught["exc"] = str(exc)

    env.process(waiter())
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught["exc"] == "boom"


def test_yield_already_triggered_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    seen = {}

    def proc():
        value = yield event
        seen["value"] = value

    env.process(proc())
    env.run()
    assert seen["value"] == "early"


def test_process_return_value_via_run_until():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return "result"

    process = env.process(proc())
    assert env.run(until=process) == "result"


def test_process_waits_on_other_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2.0)
        return "child-done"

    def parent():
        result = yield env.process(child())
        log.append((result, env.now))

    env.process(parent())
    env.run()
    assert log == [("child-done", 2.0)]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_event_never_triggering_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        env.run(until=event)


def test_all_of_collects_values_in_order():
    env = Environment()
    results = {}

    def proc():
        values = yield env.all_of([env.timeout(3.0, "slow"),
                                   env.timeout(1.0, "fast")])
        results["values"] = values
        results["time"] = env.now

    env.process(proc())
    env.run()
    assert results == {"values": ["slow", "fast"], "time": 3.0}


def test_all_of_empty_triggers_immediately():
    env = Environment()
    combined = AllOf(env, [])
    assert combined.triggered
    assert combined.value == []


def test_any_of_returns_first_value():
    env = Environment()
    seen = {}

    def proc():
        value = yield env.any_of([env.timeout(3.0, "slow"),
                                  env.timeout(1.0, "fast")])
        seen["value"] = value
        seen["time"] = env.now

    env.process(proc())
    env.run()
    assert seen == {"value": "fast", "time": 1.0}


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))

    def attacker(target):
        yield env.timeout(5.0)
        target.interrupt(cause="stop")

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [("interrupted", "stop", 5.0)]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    assert log == [3.0]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_stale_wakeup_after_interrupt_is_ignored():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(100.0)
        log.append(("resumed", env.now))

    def attacker(target):
        yield env.timeout(4.0)
        target.interrupt()

    target = env.process(victim())
    env.process(attacker(target))
    env.run()
    # The stale timeout at t=10 must not wake the process early.
    assert log == [("interrupted", 4.0), ("resumed", 104.0)]


def test_process_exception_propagates_to_waiting_parent():
    env = Environment()
    caught = {}

    def child():
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            caught["exc"] = str(exc)

    env.process(parent())
    env.run()
    assert caught["exc"] == "child failed"


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_is_alive_transitions():
    env = Environment()

    def proc():
        yield env.timeout(1.0)

    process = env.process(proc())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_event_value_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_tie_breaking_is_fifo():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(name))
    env.run()
    assert order == ["first", "second", "third"]
