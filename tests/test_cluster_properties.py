"""Property-based tests on the cluster simulator's invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import RequestTrace, poisson_trace
from repro.serving.server import InferenceServer

_SERVER = InferenceServer("MI100")
# Pre-warm the memoized service times so hypothesis examples are fast.
_SIM_CACHE = {}


def simulator(max_instances, keep_alive):
    key = (max_instances, round(keep_alive, 6))
    if key not in _SIM_CACHE:
        _SIM_CACHE[key] = ClusterSimulator(
            _SERVER, ClusterConfig(scheme=Scheme.IDEAL,
                                   max_instances=max_instances,
                                   keep_alive_s=keep_alive))
    return _SIM_CACHE[key]


traces = st.builds(
    poisson_trace,
    model=st.just("alex"),
    rate_hz=st.floats(1.0, 50.0),
    duration_s=st.floats(0.1, 3.0),
    seed=st.integers(0, 50),
)


@given(traces, st.integers(1, 6), st.floats(0.0, 2.0))
@settings(max_examples=40, deadline=None)
def test_every_request_is_answered(trace, max_instances, keep_alive):
    stats = simulator(max_instances, keep_alive).run(trace)
    assert stats.requests == len(trace)
    assert stats.cold_starts + stats.warm_hits == stats.requests


@given(traces, st.integers(1, 6), st.floats(0.0, 2.0))
@settings(max_examples=40, deadline=None)
def test_latency_bounds(trace, max_instances, keep_alive):
    sim = simulator(max_instances, keep_alive)
    stats = sim.run(trace)
    warm = sim._warm_time("alex", 1)
    assert all(q >= 0 for q in stats.queue_waits)
    assert all(latency >= warm - 1e-12 for latency in stats.latencies)


@given(traces, st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_at_least_one_cold_start(trace, max_instances):
    stats = simulator(max_instances, 10.0).run(trace)
    assert stats.cold_starts >= 1
    assert 0 < stats.cold_start_fraction <= 1


@given(traces)
@settings(max_examples=30, deadline=None)
def test_more_instances_never_increase_queueing(trace):
    """Capacity reduces queueing -- but note it can *increase* tail
    latency, because scale-out answers bursts with fresh instances that
    pay the cold start (exactly the pathology the paper targets)."""
    one = simulator(1, 10.0).run(trace)
    many = simulator(6, 10.0).run(trace)
    assert sum(many.queue_waits) <= sum(one.queue_waits) + 1e-9


@given(traces)
@settings(max_examples=30, deadline=None)
def test_scale_out_trades_queueing_for_cold_starts(trace):
    one = simulator(1, 10.0).run(trace)
    many = simulator(6, 10.0).run(trace)
    assert many.cold_starts >= one.cold_starts


@given(traces, st.integers(1, 6), st.floats(0.0, 2.0))
@settings(max_examples=30, deadline=None)
def test_deterministic_replay(trace, max_instances, keep_alive):
    a = simulator(max_instances, keep_alive).run(trace)
    b = simulator(max_instances, keep_alive).run(trace)
    assert a.latencies == b.latencies
    assert a.cold_starts == b.cold_starts
