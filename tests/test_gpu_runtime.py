"""Unit tests for the HIP-like runtime and GPU stream."""

import pytest

from repro.gpu import (
    CodeObjectFile,
    HipRuntime,
    KernelNotLoadedError,
    MI100,
    Stream,
    load_time,
)
from repro.sim import Environment, Phase, TraceRecorder


def make_runtime():
    env = Environment()
    runtime = HipRuntime(env, MI100)
    return env, runtime


CO = CodeObjectFile.single_kernel("conv_kernel", 1_000_000)


class TestStream:
    def test_kernels_run_in_order_back_to_back(self):
        env = Environment()
        trace = TraceRecorder()
        stream = Stream(env, trace)
        stream.enqueue(1.0, "k1")
        stream.enqueue(2.0, "k2")
        assert stream.available_at == pytest.approx(3.0)
        execs = trace.filtered(phase=Phase.EXEC)
        assert [(r.start, r.end) for r in execs] == [(0.0, 1.0), (1.0, 3.0)]

    def test_completion_event_fires_at_kernel_end(self):
        env = Environment()
        stream = Stream(env)
        seen = {}

        def proc():
            yield stream.enqueue(1.5, "k")
            seen["t"] = env.now

        env.process(proc())
        env.run()
        assert seen["t"] == pytest.approx(1.5)

    def test_gap_between_enqueues_leaves_gpu_idle(self):
        env = Environment()
        trace = TraceRecorder()
        stream = Stream(env, trace)

        def proc():
            stream.enqueue(1.0, "k1")
            yield env.timeout(5.0)
            stream.enqueue(1.0, "k2")

        env.process(proc())
        env.run()
        assert trace.busy_time(Phase.EXEC, "gpu") == pytest.approx(2.0)
        assert stream.available_at == pytest.approx(6.0)

    def test_synchronize_waits_for_drain(self):
        env = Environment()
        stream = Stream(env)
        seen = {}

        def proc():
            stream.enqueue(4.0, "k")
            yield stream.synchronize()
            seen["t"] = env.now

        env.process(proc())
        env.run()
        assert seen["t"] == pytest.approx(4.0)

    def test_negative_duration_rejected(self):
        env = Environment()
        stream = Stream(env)
        with pytest.raises(ValueError):
            stream.enqueue(-1.0)

    def test_zero_duration_records_nothing(self):
        env = Environment()
        trace = TraceRecorder()
        stream = Stream(env, trace)
        stream.enqueue(0.0, "noop")
        assert trace.records == []
        assert stream.kernels_executed == 1


class TestModuleLoad:
    def test_load_bills_time_and_registers(self):
        env, runtime = make_runtime()
        expected = load_time(CO, MI100)

        def proc():
            module = yield from runtime.module_load(CO)
            assert module.name == "conv_kernel"

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(expected)
        assert runtime.is_loaded("conv_kernel")
        assert runtime.load_count == 1
        assert runtime.loaded_bytes == 1_000_000

    def test_reload_is_free(self):
        env, runtime = make_runtime()

        def proc():
            yield from runtime.module_load(CO)
            t = env.now
            yield from runtime.module_load(CO)
            assert env.now == t

        env.process(proc())
        env.run()
        assert runtime.load_count == 1

    def test_concurrent_loads_coalesce(self):
        env, runtime = make_runtime()
        times = {}

        def loader(name):
            yield from runtime.module_load(CO)
            times[name] = env.now

        env.process(loader("a"))
        env.process(loader("b"))
        env.run()
        assert times["a"] == times["b"] == pytest.approx(load_time(CO, MI100))
        assert runtime.load_count == 1

    def test_load_records_trace(self):
        env, runtime = make_runtime()

        def proc():
            yield from runtime.module_load(CO, actor="loader-thread")

        env.process(proc())
        env.run()
        loads = runtime.trace.filtered(phase=Phase.LOAD, actor="loader-thread")
        assert len(loads) == 1
        assert loads[0].label == "conv_kernel"

    def test_preload_is_instant_and_resolves_symbols(self):
        env, runtime = make_runtime()
        runtime.preload([CO])
        assert runtime.is_loaded("conv_kernel")
        assert env.now == 0.0
        assert runtime.load_count == 0
        module = runtime.loaded_modules["conv_kernel"]
        assert "conv_kernel" in module.resolved_symbols

    def test_evict_all(self):
        env, runtime = make_runtime()
        runtime.preload([CO])
        runtime.evict_all()
        assert not runtime.is_loaded("conv_kernel")


class TestGetFunction:
    def test_symbol_resolution_billed_once(self):
        env, runtime = make_runtime()
        runtime.preload([CO])
        module = runtime.loaded_modules["conv_kernel"]
        module.resolved_symbols.clear()

        def proc():
            yield from runtime.get_function(module, "conv_kernel")
            t = env.now
            assert t > 0
            yield from runtime.get_function(module, "conv_kernel")
            assert env.now == t

        env.process(proc())
        env.run()

    def test_unknown_symbol_raises(self):
        env, runtime = make_runtime()
        runtime.preload([CO])
        module = runtime.loaded_modules["conv_kernel"]

        def proc():
            yield from runtime.get_function(module, "missing")

        env.process(proc())
        with pytest.raises(KeyError):
            env.run()


class TestLaunchKernel:
    def test_lazy_launch_loads_then_runs(self):
        env, runtime = make_runtime()
        done = {}

        def proc():
            completion = yield from runtime.launch_kernel(
                CO, "conv_kernel", duration=0.01)
            yield completion
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert runtime.is_loaded("conv_kernel")
        # Total = reactive load + symbol resolve + launch overhead + exec.
        expected = (load_time(CO, MI100, reactive=True)
                    + MI100.symbol_resolve_s
                    + MI100.kernel_launch_overhead_s + 0.01)
        assert done["t"] == pytest.approx(expected)

    def test_nonlazy_launch_requires_resident_module(self):
        env, runtime = make_runtime()

        def proc():
            yield from runtime.launch_kernel(
                CO, "conv_kernel", duration=0.01, lazy=False)

        env.process(proc())
        with pytest.raises(KernelNotLoadedError):
            env.run()

    def test_nonlazy_launch_waits_on_inflight_load(self):
        env, runtime = make_runtime()
        done = {}

        def loader():
            yield from runtime.module_load(CO, actor="loader")

        def issuer():
            yield env.timeout(0.001)  # loader already started
            completion = yield from runtime.launch_kernel(
                CO, "conv_kernel", duration=0.0, lazy=False)
            yield completion
            done["t"] = env.now

        env.process(loader())
        env.process(issuer())
        env.run()
        assert done["t"] >= load_time(CO, MI100)  # proactive load in flight
        assert runtime.load_count == 1

    def test_hot_launch_has_no_load_cost(self):
        env, runtime = make_runtime()
        runtime.preload([CO])
        done = {}

        def proc():
            completion = yield from runtime.launch_kernel(
                CO, "conv_kernel", duration=0.01)
            yield completion
            done["t"] = env.now

        env.process(proc())
        env.run()
        assert done["t"] == pytest.approx(MI100.kernel_launch_overhead_s + 0.01)

    def test_launch_records_issue_and_exec_phases(self):
        env, runtime = make_runtime()
        runtime.preload([CO])

        def proc():
            completion = yield from runtime.launch_kernel(
                CO, "conv_kernel", duration=0.02, actor="issuer", label="L0")
            yield completion

        env.process(proc())
        env.run()
        assert runtime.trace.total(Phase.ISSUE) == pytest.approx(
            MI100.kernel_launch_overhead_s)
        assert runtime.trace.busy_time(Phase.EXEC, "gpu") == pytest.approx(0.02)

    def test_synchronize_records_other_phase(self):
        env, runtime = make_runtime()
        runtime.preload([CO])

        def proc():
            yield from runtime.launch_kernel(CO, "conv_kernel", duration=0.5)
            yield from runtime.synchronize()

        env.process(proc())
        env.run()
        assert runtime.trace.total(Phase.OTHER) > 0
