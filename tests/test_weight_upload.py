"""Tests for the opt-in weight-upload dimension of cold starts."""

import pytest

from repro.core.schemes import Scheme
from repro.serving.server import InferenceServer


@pytest.fixture(scope="module")
def plain():
    return InferenceServer("MI100")


@pytest.fixture(scope="module")
def uploading():
    return InferenceServer("MI100", upload_weights=True)


def test_weight_bytes_in_program_metadata(plain):
    program = plain._lowered("vgg", Scheme.BASELINE, 1)
    # VGG16 carries ~528 MB of fp32 weights.
    assert program.metadata["weight_bytes"] > 400_000_000


def test_upload_slows_baseline(plain, uploading):
    without = plain.serve_cold("vgg", Scheme.BASELINE)
    with_upload = uploading.serve_cold("vgg", Scheme.BASELINE)
    assert with_upload.total_time > without.total_time
    # The difference is roughly the H2D time of ~528 MB at 16 GB/s.
    delta = with_upload.total_time - without.total_time
    assert delta == pytest.approx(0.033, rel=0.2)


def test_pask_overlaps_upload(plain, uploading):
    """PASK's concurrent DMA hides part (or all) of the upload."""
    base_delta = (uploading.serve_cold("res", Scheme.BASELINE).total_time
                  - plain.serve_cold("res", Scheme.BASELINE).total_time)
    pask_delta = (uploading.serve_cold("res", Scheme.PASK).total_time
                  - plain.serve_cold("res", Scheme.PASK).total_time)
    assert pask_delta < base_delta


def test_upload_disabled_by_default(plain):
    program = plain._lowered("res", Scheme.BASELINE, 1)
    assert not program.metadata.get("upload_weights")


def test_session_uploads_once(uploading):
    results = uploading.serve_session("alex", Scheme.PASK, n_requests=2,
                                      interval_s=0.01)
    uploads_first = [r for r in results[0].trace.records
                     if r.label == "weight-upload"]
    uploads_second = [r for r in results[1].trace.records
                      if r.label == "weight-upload"]
    assert len(uploads_first) == 1
    assert len(uploads_second) == 0


def test_hot_run_never_uploads(uploading):
    result = uploading.serve_hot("vgg")
    assert not [r for r in result.trace.records
                if r.label == "weight-upload"]
