"""Tests for warm-state checkpoint/restore (RuntimeSnapshot).

The runtime-level contract: ``snapshot()`` bills a sequential streaming
write of the loaded images and returns an immutable record; ``restore``
bills only the *missing-module delta*, marks modules resident without
touching ``load_count``, and raises typed faults (corruption, injected
restore failure) the server falls back from.  The server-level contract:
``serve_restored`` beats a full cold start and accounts for restored
modules in the result metadata.
"""

import pytest

from repro.core.schemes import Scheme
from repro.gpu import (CodeObjectFile, HipRuntime, MI100, RuntimeSnapshot,
                       checkpoint_time, restore_time)
from repro.gpu.device import get_device
from repro.serving.server import InferenceServer
from repro.sim import Environment, Phase
from repro.sim.faults import CheckpointFault, FaultPlan, RestoreFault

CO_A = CodeObjectFile.single_kernel("conv_kernel", 1_000_000)
CO_B = CodeObjectFile.single_kernel("gemm_kernel", 2_000_000)

SERVER = InferenceServer("MI100")


def make_runtime(faults=None):
    env = Environment()
    return env, HipRuntime(env, MI100, faults=faults)


def drive(env, gen):
    """Run one runtime generator to completion, returning its value."""
    box = {}

    def proc():
        box["value"] = yield from gen

    env.process(proc())
    env.run()
    return box.get("value")


def loaded_snapshot(faults=None):
    env, runtime = make_runtime(faults)

    def proc():
        yield from runtime.module_load(CO_A)
        yield from runtime.module_load(CO_B)

    env.process(proc())
    env.run()
    return env, runtime


# ----------------------------------------------------------------------
# Snapshot capture
# ----------------------------------------------------------------------

def test_snapshot_captures_loaded_modules_and_bills_write():
    env, runtime = loaded_snapshot()
    before = env.now
    snapshot = drive(env, runtime.snapshot())
    assert isinstance(snapshot, RuntimeSnapshot)
    assert snapshot.names == {"conv_kernel", "gemm_kernel"}
    assert snapshot.size_bytes == 3_000_000
    assert len(snapshot) == 2
    assert not snapshot.corrupt
    assert env.now - before == pytest.approx(
        checkpoint_time(3_000_000, MI100))
    checkpoints = runtime.trace.filtered(phase=Phase.CHECKPOINT)
    assert len(checkpoints) == 1


def test_snapshot_refuses_inflight_loads():
    env, runtime = make_runtime()
    load = runtime.module_load(CO_A)
    next(load)  # load now in flight
    with pytest.raises(RuntimeError):
        next(runtime.snapshot())


def test_snapshot_write_can_be_silently_corrupted():
    env, runtime = loaded_snapshot(
        faults=FaultPlan(seed=0, checkpoint_corruption_rate=1.0))
    snapshot = drive(env, runtime.snapshot())
    assert snapshot.corrupt  # returned anyway: damage surfaces on restore
    assert runtime.faults.counters.checkpoint_corruptions == 1


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------

def test_restore_marks_resident_without_load_counts():
    env, runtime = loaded_snapshot()
    snapshot = drive(env, runtime.snapshot())

    env2, fresh = make_runtime()
    restored = drive(env2, fresh.restore(snapshot))
    assert restored == 2
    assert fresh.is_loaded("conv_kernel") and fresh.is_loaded("gemm_kernel")
    assert fresh.load_count == 0          # restores are not loads
    assert fresh.restored_names == {"conv_kernel", "gemm_kernel"}
    assert fresh.restored_bytes == 3_000_000
    assert env2.now == pytest.approx(restore_time(3_000_000, MI100))
    assert len(fresh.trace.filtered(phase=Phase.RESTORE)) == 1


def test_restore_bills_only_the_missing_delta():
    env, runtime = loaded_snapshot()
    snapshot = drive(env, runtime.snapshot())

    env2, partial = make_runtime()
    drive(env2, partial.module_load(CO_A))  # one module already resident
    before = env2.now
    restored = drive(env2, partial.restore(snapshot))
    assert restored == 1
    assert partial.restored_bytes == CO_B.size_bytes
    assert env2.now - before == pytest.approx(
        restore_time(CO_B.size_bytes, MI100))
    # Restoring a fully-resident runtime is (almost) free.
    again = drive(env2, partial.restore(snapshot))
    assert again == 0


def test_corrupt_snapshot_raises_checkpoint_fault_on_restore():
    env, runtime = loaded_snapshot()
    snapshot = drive(env, runtime.snapshot())
    corrupt = RuntimeSnapshot(device_name=snapshot.device_name,
                              taken_at=snapshot.taken_at,
                              entries=snapshot.entries, corrupt=True)
    env2, fresh = make_runtime(faults=FaultPlan(seed=0))

    def proc():
        with pytest.raises(CheckpointFault):
            yield from fresh.restore(corrupt)

    env2.process(proc())
    env2.run()
    assert not fresh.is_loaded("conv_kernel")
    assert fresh.faults.counters.restore_failures == 1


def test_injected_restore_failure_raises_restore_fault():
    env, runtime = loaded_snapshot()
    snapshot = drive(env, runtime.snapshot())
    env2, fresh = make_runtime(
        faults=FaultPlan(seed=0, restore_failure_rate=1.0))

    def proc():
        with pytest.raises(RestoreFault):
            yield from fresh.restore(snapshot)

    env2.process(proc())
    env2.run()
    assert not fresh.is_loaded("conv_kernel")
    assert fresh.faults.counters.restore_failures == 1


def test_restore_rejects_cross_device_snapshots():
    env, runtime = loaded_snapshot()
    snapshot = drive(env, runtime.snapshot())
    env2 = Environment()
    other = HipRuntime(env2, get_device("A100"))
    with pytest.raises(ValueError):
        next(other.restore(snapshot))


# ----------------------------------------------------------------------
# Server-level: capture + restored serve
# ----------------------------------------------------------------------

def test_serve_restored_beats_cold_start():
    result, snapshot = SERVER.capture_snapshot("res")
    assert snapshot is not None and len(snapshot) > 0
    assert result.metadata["checkpoint_s"] > 0
    assert not result.failed

    cold = SERVER.serve_cold("res", Scheme.PASK)
    restored = SERVER.serve_restored("res", snapshot)
    assert not restored.failed
    assert restored.total_time < cold.total_time
    assert restored.loads < cold.loads
    assert restored.metadata["restored_modules"] == len(snapshot)
    assert restored.metadata["restored_bytes"] == snapshot.size_bytes
    assert restored.metadata["restored_hits"] > 0


def test_serve_restored_falls_back_cold_on_restore_failure():
    _, snapshot = SERVER.capture_snapshot("res")
    cold = SERVER.serve_cold("res", Scheme.PASK)
    fallback = SERVER.serve_restored(
        "res", snapshot, faults=FaultPlan(seed=0, restore_failure_rate=1.0))
    assert not fallback.failed  # the request still completes
    assert "restore_failed" in fallback.metadata
    assert "restored_modules" not in fallback.metadata
    # Restore time already spent is sunk cost on top of the cold path.
    assert fallback.total_time >= cold.total_time
    assert fallback.faults.restore_failures == 1
