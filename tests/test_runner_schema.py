"""Tests for the BENCH report schema and its hand-rolled validator."""

import copy

from repro.runner import BENCH_SCHEMA, run_bench, validate_report


def _valid_payload(tmp_path):
    return run_bench(grid="quick", jobs=1,
                     cache_dir=str(tmp_path / "cache"), write=False).payload


class TestValidator:
    def test_real_report_is_valid(self, tmp_path):
        assert validate_report(_valid_payload(tmp_path)) == []

    def test_non_dict_rejected(self):
        assert validate_report([]) != []
        assert validate_report(None) != []

    def test_missing_section_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        for section in ("schema_version", "meta", "run", "cache",
                        "totals", "cells", "summary"):
            broken = copy.deepcopy(payload)
            del broken[section]
            errors = validate_report(broken)
            assert any(section in error for error in errors), section

    def test_cell_count_mismatch_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        payload["totals"]["cells"] += 1
        assert validate_report(payload) != []

    def test_bad_cell_field_type_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        payload["cells"][0]["total_time_s"] = "fast"
        assert validate_report(payload) != []

    def test_missing_cell_field_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        cluster = next(c for c in payload["cells"]
                       if c["kind"] == "cluster")
        del cluster["p99_s"]
        assert validate_report(payload) != []

    def test_unknown_cell_kind_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        payload["cells"][0]["kind"] = "lukewarm"
        assert validate_report(payload) != []

    def test_wrong_schema_version_reported(self, tmp_path):
        payload = _valid_payload(tmp_path)
        payload["schema_version"] = 999
        assert validate_report(payload) != []


class TestSchemaDocument:
    def test_is_draft07_shaped(self):
        assert BENCH_SCHEMA["$schema"].startswith("http://json-schema.org")
        assert BENCH_SCHEMA["type"] == "object"
        required = set(BENCH_SCHEMA["required"])
        assert {"schema_version", "meta", "run", "cache", "totals",
                "cells", "summary"} <= required
        assert set(BENCH_SCHEMA["properties"]) >= required


def _mixed_payload(tmp_path):
    """A report holding serve, cluster AND fleet cells at once."""
    return run_bench(grid="quick", jobs=1, fleet=True,
                     cache_dir=str(tmp_path / "cache"), write=False).payload


class TestFleetCells:
    def test_mixed_report_is_valid(self, tmp_path):
        payload = _mixed_payload(tmp_path)
        kinds = {cell["kind"] for cell in payload["cells"]}
        assert "fleet" in kinds and "cluster" in kinds and "cold" in kinds
        assert validate_report(payload) == []

    def test_fleet_cell_carries_fleet_fields(self, tmp_path):
        payload = _mixed_payload(tmp_path)
        cell = next(c for c in payload["cells"] if c["kind"] == "fleet")
        for field in ("regions", "routing", "autoscale", "arrival",
                      "offered", "completed", "failed", "shed",
                      "restores", "prewarm_spawns", "availability",
                      "delegated"):
            assert field in cell, field

    def test_fleet_conservation_violation_reported(self, tmp_path):
        payload = _mixed_payload(tmp_path)
        cell = next(c for c in payload["cells"] if c["kind"] == "fleet")
        cell["offered"] += 1
        errors = validate_report(payload)
        assert any("conserv" in error for error in errors)

    def test_missing_fleet_field_reported(self, tmp_path):
        payload = _mixed_payload(tmp_path)
        cell = next(c for c in payload["cells"] if c["kind"] == "fleet")
        del cell["prewarm_spawns"]
        assert validate_report(payload) != []

    def test_fleet_availability_out_of_range_reported(self, tmp_path):
        payload = _mixed_payload(tmp_path)
        cell = next(c for c in payload["cells"] if c["kind"] == "fleet")
        cell["availability"] = 1.5
        assert validate_report(payload) != []

    def test_round_trips_through_json(self, tmp_path):
        import json

        payload = _mixed_payload(tmp_path)
        assert json.loads(json.dumps(payload)) == payload
