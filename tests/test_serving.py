"""Tests for the serving harness and metrics helpers."""

import pytest

from repro.core.schemes import Scheme
from repro.serving import InferenceServer, geometric_mean, mean, serve_cold, \
    serve_hot
from repro.serving.metrics import normalize


class TestMetrics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            mean([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


class TestInferenceServer:
    def test_cold_run_returns_result(self):
        server = InferenceServer("MI100")
        result = server.serve_cold("alex", Scheme.BASELINE)
        assert result.scheme == "Baseline"
        assert result.model == "alex"
        assert result.total_time > 0
        assert result.loads > 0

    def test_hot_run_has_no_loads(self):
        server = InferenceServer("MI100")
        result = server.serve_hot("alex")
        assert result.loads == 0
        assert result.total_time > 0

    def test_hot_faster_than_cold(self):
        server = InferenceServer("MI100")
        cold = server.serve_cold("vgg", Scheme.BASELINE)
        hot = server.serve_hot("vgg")
        assert hot.total_time < cold.total_time

    def test_custom_model_registration(self):
        from repro.graph import GraphBuilder
        b = GraphBuilder("custom")
        x = b.input("x", (1, 3, 32, 32))
        b.output(b.relu(b.conv(x, 8, 3, pad=1)))
        server = InferenceServer("MI100")
        server.register_model(b.finish())
        result = server.serve_cold("custom", Scheme.PASK)
        assert result.total_time > 0

    def test_per_scheme_program_keys(self):
        server = InferenceServer("MI100")
        server.serve_cold("alex", Scheme.BASELINE)
        server.serve_cold("alex", Scheme.NNV12)
        keys = server.registry.keys()
        assert "alex@default@b1" in keys
        assert "alex@native@b1" in keys

    def test_device_by_spec(self):
        from repro.gpu import A100
        server = InferenceServer(A100)
        assert server.device.name == "A100"

    def test_convenience_wrappers(self):
        cold = serve_cold("alex", Scheme.IDEAL)
        hot = serve_hot("alex")
        assert cold.total_time > hot.total_time > 0

    def test_speedup_over(self):
        server = InferenceServer("MI100")
        base = server.serve_cold("alex", Scheme.BASELINE)
        ideal = server.serve_cold("alex", Scheme.IDEAL)
        assert ideal.speedup_over(base) > 1.0
        assert base.speedup_over(ideal) < 1.0
