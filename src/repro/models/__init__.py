"""The model zoo: the twelve DNN models of Table I.

Builders produce ONNX-like graphs with realistic layer shapes; the
"# Primitive Layers" column of Table I corresponds to the number of
distinct MIOpen primitive problems after lowering, which these builders
approximate.  Models are keyed by the paper's abbreviations (``alex``,
``vgg``, ..., ``swin2``) or their full names.
"""

from repro.models.zoo import (
    MODEL_INFO,
    ModelInfo,
    build_model,
    list_models,
)

__all__ = ["MODEL_INFO", "ModelInfo", "build_model", "list_models"]
