"""Vision transformers: ViT-B/16, Swin-B and Swin-V2-B.

Only the patch-embedding convolution goes through the MIOpen-like
primitive library (Table I: one primitive layer each); attention and MLP
compute is MatMul/Gemm served by the BLAS library, with layernorm /
softmax / gelu lowering to engine kernels.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder

__all__ = ["vit_b_16", "swin_b", "swin_v2_b"]


def _encoder_block(b: GraphBuilder, tokens: str, dim: int, mlp_dim: int,
                   prefix: str, v2: bool = False) -> str:
    """One pre-norm transformer encoder block over (1, seq, dim) tokens."""
    y = b.layernorm(tokens, name=f"{prefix}_ln1")
    qkv = b.gemm(b.reshape(y, (-1, dim)), 3 * dim, name=f"{prefix}_qkv")
    seq = b.graph.desc(tokens).dims[1]
    q = b.slice(qkv, axis=1, size=dim, offset=0, name=f"{prefix}_q")
    k = b.slice(qkv, axis=1, size=dim, offset=dim, name=f"{prefix}_k")
    v = b.slice(qkv, axis=1, size=dim, offset=2 * dim, name=f"{prefix}_v")
    q = b.reshape(q, (1, seq, dim))
    k = b.reshape(k, (1, seq, dim))
    v = b.reshape(v, (1, seq, dim))
    scores = b.matmul(q, b.transpose(k, (0, 2, 1), name=f"{prefix}_kT"),
                      name=f"{prefix}_scores")
    if v2:
        # Swin-V2 uses scaled-cosine attention: extra normalization work.
        scores = b.layernorm(scores, name=f"{prefix}_cosnorm")
    attn = b.softmax(scores, name=f"{prefix}_softmax")
    ctx = b.matmul(attn, v, name=f"{prefix}_ctx")
    proj = b.gemm(b.reshape(ctx, (-1, dim)), dim, name=f"{prefix}_proj")
    proj = b.reshape(proj, (1, seq, dim))
    tokens = b.add(tokens, proj, name=f"{prefix}_res1")
    y = b.layernorm(tokens, name=f"{prefix}_ln2")
    h = b.gemm(b.reshape(y, (-1, dim)), mlp_dim, name=f"{prefix}_mlp1")
    h = b.gelu(h, name=f"{prefix}_gelu")
    h = b.gemm(h, dim, name=f"{prefix}_mlp2")
    h = b.reshape(h, (1, seq, dim))
    return b.add(tokens, h, name=f"{prefix}_res2")


def vit_b_16() -> Graph:
    """ViT-B/16: 16x16 patch embedding + 12 encoder blocks, dim 768."""
    b = GraphBuilder("vit_b_16")
    x = b.input("x", (1, 3, 224, 224))
    y = b.conv(x, 768, 16, stride=16, name="patch_embed")
    y = b.reshape(y, (1, 768, 196))
    tokens = b.transpose(y, (0, 2, 1), name="to_tokens")
    for i in range(12):
        tokens = _encoder_block(b, tokens, dim=768, mlp_dim=3072,
                                prefix=f"blk{i}")
    tokens = b.layernorm(tokens, name="final_ln")
    cls = b.reduce_mean(tokens, axes=(1,), name="token_pool")
    logits = b.gemm(cls, 1000, name="head")
    b.output(b.softmax(logits))
    return b.finish()


def _swin(name: str, v2: bool) -> Graph:
    """Swin-B style hierarchy: 4x4 patches, stages [2, 2, 6, 2] with
    patch merging between stages."""
    b = GraphBuilder(name)
    x = b.input("x", (1, 3, 224, 224))
    dim = 128
    y = b.conv(x, dim, 4, stride=4, name="patch_embed")
    side = 56
    tokens = b.transpose(b.reshape(y, (1, dim, side * side)), (0, 2, 1),
                         name="to_tokens")
    depths = [2, 2, 6, 2]
    for stage, depth in enumerate(depths):
        for i in range(depth):
            tokens = _encoder_block(b, tokens, dim=dim, mlp_dim=4 * dim,
                                    prefix=f"s{stage}b{i}", v2=v2)
        if stage < len(depths) - 1:
            # Patch merging: concat 2x2 neighbourhoods, linear reduce.
            seq = b.graph.desc(tokens).dims[1]
            merged = b.reshape(tokens, (1, seq // 4, dim * 4),
                               name=f"merge{stage}_rs")
            flat = b.reshape(merged, (-1, dim * 4))
            reduced = b.gemm(flat, dim * 2, name=f"merge{stage}_fc")
            dim *= 2
            tokens = b.reshape(reduced, (1, seq // 4, dim))
    tokens = b.layernorm(tokens, name="final_ln")
    pooled = b.reduce_mean(tokens, axes=(1,), name="pool")
    logits = b.gemm(pooled, 1000, name="head")
    b.output(b.softmax(logits))
    return b.finish()


def swin_b() -> Graph:
    """Swin-B."""
    return _swin("swin_b", v2=False)


def swin_v2_b() -> Graph:
    """Swin-V2-B (scaled-cosine attention variant)."""
    return _swin("swin_v2_b", v2=True)
