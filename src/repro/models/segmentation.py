"""Semantic-segmentation models: FCN and UNet."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.models.blocks import basic_block, conv_bn_act, double_conv

__all__ = ["fcn", "unet"]


def fcn() -> Graph:
    """FCN with a ResNet-ish backbone and 1x1 score heads + upsampling."""
    b = GraphBuilder("fcn")
    x = b.input("x", (1, 3, 224, 224))
    y = conv_bn_act(b, x, 64, 7, stride=2, pad=3, name="stem")
    y = b.maxpool(y, 3, stride=2, pad=1)
    skips = []
    for channels, repeats, first_stride in [(64, 2, 1), (128, 2, 2),
                                            (256, 2, 2), (512, 2, 2)]:
        for i in range(repeats):
            y = basic_block(b, y, channels,
                            stride=first_stride if i == 0 else 1)
        skips.append(y)
    # Score heads at three scales (FCN-8s style).
    num_classes = 21
    score32 = b.conv(y, num_classes, 1, name="score32")
    up32 = b.resize(score32, 2.0, name="up32")
    score16 = b.conv(skips[2], num_classes, 1, name="score16")
    fuse16 = b.add(up32, score16)
    up16 = b.resize(fuse16, 2.0, name="up16")
    score8 = b.conv(skips[1], num_classes, 1, name="score8")
    fuse8 = b.add(up16, score8)
    out = b.resize(fuse8, 8.0, name="up8")
    b.output(b.softmax(out))
    return b.finish()


def unet() -> Graph:
    """UNet: 5-level encoder/decoder with skip concatenations."""
    b = GraphBuilder("unet")
    x = b.input("x", (1, 3, 224, 224))
    skips = []
    y = x
    channels = [32, 64, 128, 256, 512]
    for c in channels:
        y = double_conv(b, y, c)
        skips.append(y)
        y = b.maxpool(y, 2)
    y = double_conv(b, y, 1024)
    for c in reversed(channels):
        y = b.resize(y, 2.0)
        y = b.conv(y, c, 1, name=f"upconv{c}")    # channel reduction
        y = b.concat([y, skips.pop()], axis=1)
        y = double_conv(b, y, c)
    out = b.conv(y, 2, 1, name="final")
    b.output(b.sigmoid(out))
    return b.finish()
