"""Image-recognition models: AlexNet, VGG16, ResNet34, RegNet, EfficientNet."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.models.blocks import basic_block, conv_bn_act, mbconv_block, se_block

__all__ = ["alexnet", "vgg16", "resnet34", "regnet_y_800mf",
           "efficientnet_b7"]


def alexnet() -> Graph:
    """AlexNet (5 convolutions, 3 pools, 3 FC layers)."""
    b = GraphBuilder("alexnet")
    x = b.input("x", (1, 3, 224, 224))
    y = b.conv(x, 64, 11, stride=4, pad=2, name="conv1")
    y = b.relu(y)
    y = b.maxpool(y, 3, stride=2)
    y = b.conv(y, 192, 5, pad=2, name="conv2")
    y = b.relu(y)
    y = b.maxpool(y, 3, stride=2)
    y = b.conv(y, 384, 3, pad=1, name="conv3")
    y = b.relu(y)
    y = b.conv(y, 256, 3, pad=1, name="conv4")
    y = b.relu(y)
    y = b.conv(y, 256, 3, pad=1, name="conv5")
    y = b.relu(y)
    y = b.maxpool(y, 3, stride=2)
    y = b.flatten(y)
    y = b.gemm(y, 4096, name="fc6")
    y = b.relu(y)
    y = b.dropout(y)
    y = b.gemm(y, 4096, name="fc7")
    y = b.relu(y)
    y = b.dropout(y)
    y = b.gemm(y, 1000, name="fc8")
    b.output(b.softmax(y))
    return b.finish()


def vgg16() -> Graph:
    """VGG16 (13 convolutions, 5 pools, 3 FC layers)."""
    b = GraphBuilder("vgg16")
    x = b.input("x", (1, 3, 224, 224))
    y = x
    config = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    for stage, (channels, repeats) in enumerate(config):
        for i in range(repeats):
            y = b.conv(y, channels, 3, pad=1, name=f"conv{stage + 1}_{i + 1}")
            y = b.relu(y)
        y = b.maxpool(y, 2)
    y = b.flatten(y)
    y = b.gemm(y, 4096, name="fc1")
    y = b.relu(y)
    y = b.gemm(y, 4096, name="fc2")
    y = b.relu(y)
    y = b.gemm(y, 1000, name="fc3")
    b.output(b.softmax(y))
    return b.finish()


def resnet34() -> Graph:
    """ResNet-34 (basic blocks [3, 4, 6, 3])."""
    b = GraphBuilder("resnet34")
    x = b.input("x", (1, 3, 224, 224))
    y = conv_bn_act(b, x, 64, 7, stride=2, pad=3, name="stem")
    y = b.maxpool(y, 3, stride=2, pad=1)
    for channels, repeats, first_stride in [(64, 3, 1), (128, 4, 2),
                                            (256, 6, 2), (512, 3, 2)]:
        for i in range(repeats):
            y = basic_block(b, y, channels, stride=first_stride if i == 0 else 1)
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.gemm(y, 1000, name="fc")
    b.output(b.softmax(y))
    return b.finish()


def regnet_y_800mf() -> Graph:
    """RegNet-Y 800MF: grouped bottlenecks with SE, depths [1, 3, 8, 2]."""
    b = GraphBuilder("regnet_y_800mf")
    x = b.input("x", (1, 3, 224, 224))
    y = conv_bn_act(b, x, 32, 3, stride=2, pad=1, name="stem")
    group_width = 16
    for width, depth in [(64, 1), (128, 3), (320, 8), (784, 2)]:
        for i in range(depth):
            stride = 2 if i == 0 else 1
            identity = y
            in_channels = b.graph.desc(y).dims[1]
            z = conv_bn_act(b, y, width, 1)
            z = conv_bn_act(b, z, width, 3, stride=stride, pad=1,
                            group=width // group_width)
            z = se_block(b, z, max(1, in_channels // 4))
            z = b.conv(z, width, 1)
            z = b.batchnorm(z)
            if stride != 1 or in_channels != width:
                identity = b.conv(identity, width, 1, stride=stride)
                identity = b.batchnorm(identity)
            y = b.relu(b.add(z, identity))
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.gemm(y, 1000, name="fc")
    b.output(b.softmax(y))
    return b.finish()


def efficientnet_b7() -> Graph:
    """EfficientNet-B7's MBConv stack (stage structure preserved, depths
    lightly reduced so the distinct-problem count matches Table I)."""
    b = GraphBuilder("efficientnet_b7")
    x = b.input("x", (1, 3, 224, 224))
    y = conv_bn_act(b, x, 64, 3, stride=2, pad=1, act="Silu", name="stem")
    # (out_channels, kernel, stride, expand, repeats)
    stages = [
        (32, 3, 1, 1, 2),
        (48, 3, 2, 6, 3),
        (80, 5, 2, 6, 3),
        (160, 3, 2, 6, 4),
        (224, 5, 1, 6, 4),
        (384, 5, 2, 6, 4),
        (640, 3, 1, 6, 2),
    ]
    for out_channels, kernel, stride, expand, repeats in stages:
        for i in range(repeats):
            y = mbconv_block(b, y, out_channels, kernel,
                             stride=stride if i == 0 else 1, expand=expand)
    y = conv_bn_act(b, y, 2560, 1, act="Silu", name="head")
    y = b.global_avgpool(y)
    y = b.flatten(y)
    y = b.gemm(y, 1000, name="fc")
    b.output(b.softmax(y))
    return b.finish()
