"""Reusable network building blocks shared by the model zoo."""

from __future__ import annotations

from typing import Optional

from repro.graph import GraphBuilder

__all__ = ["conv_bn_act", "basic_block", "bottleneck_block", "se_block",
           "mbconv_block", "double_conv"]


def conv_bn_act(b: GraphBuilder, x: str, out_channels: int, kernel,
                stride=1, pad=0, group: int = 1, act: str = "Relu",
                name: Optional[str] = None) -> str:
    """Conv + BatchNorm + activation (fused by the engine later)."""
    y = b.conv(x, out_channels, kernel, stride=stride, pad=pad, group=group,
               name=name)
    y = b.batchnorm(y)
    if act:
        y = b.activation(y, act)
    return y


def basic_block(b: GraphBuilder, x: str, channels: int,
                stride: int = 1) -> str:
    """ResNet basic block (two 3x3 convs + identity/projection)."""
    y = conv_bn_act(b, x, channels, 3, stride=stride, pad=1)
    y = b.conv(y, channels, 3, pad=1)
    y = b.batchnorm(y)
    if stride != 1 or b.graph.desc(x).dims[1] != channels:
        shortcut = b.conv(x, channels, 1, stride=stride)
        shortcut = b.batchnorm(shortcut)
    else:
        shortcut = x
    y = b.add(y, shortcut)
    return b.relu(y)


def bottleneck_block(b: GraphBuilder, x: str, channels: int,
                     stride: int = 1, expansion: int = 4) -> str:
    """ResNet bottleneck block (1x1 - 3x3 - 1x1)."""
    out = channels * expansion
    y = conv_bn_act(b, x, channels, 1)
    y = conv_bn_act(b, y, channels, 3, stride=stride, pad=1)
    y = b.conv(y, out, 1)
    y = b.batchnorm(y)
    if stride != 1 or b.graph.desc(x).dims[1] != out:
        shortcut = b.conv(x, out, 1, stride=stride)
        shortcut = b.batchnorm(shortcut)
    else:
        shortcut = x
    y = b.add(y, shortcut)
    return b.relu(y)


def se_block(b: GraphBuilder, x: str, reduced: int) -> str:
    """Squeeze-and-excitation: gap -> 1x1 reduce -> 1x1 expand -> scale."""
    channels = b.graph.desc(x).dims[1]
    s = b.global_avgpool(x)
    s = b.conv(s, reduced, 1)
    s = b.relu(s)
    s = b.conv(s, channels, 1)
    s = b.sigmoid(s)
    return b.mul(x, s)


def mbconv_block(b: GraphBuilder, x: str, out_channels: int, kernel: int,
                 stride: int = 1, expand: int = 6,
                 se_ratio: float = 0.25) -> str:
    """EfficientNet MBConv: expand 1x1 - depthwise - SE - project 1x1."""
    in_channels = b.graph.desc(x).dims[1]
    mid = in_channels * expand
    y = x
    if expand != 1:
        y = conv_bn_act(b, y, mid, 1, act="Silu")
    y = conv_bn_act(b, y, mid, kernel, stride=stride, pad=kernel // 2,
                    group=mid, act="Silu")
    if se_ratio:
        y = se_block(b, y, max(1, int(in_channels * se_ratio)))
    y = b.conv(y, out_channels, 1)
    y = b.batchnorm(y)
    if stride == 1 and in_channels == out_channels:
        y = b.add(y, x)
    return y


def double_conv(b: GraphBuilder, x: str, channels: int) -> str:
    """UNet double 3x3 convolution."""
    y = conv_bn_act(b, x, channels, 3, pad=1)
    return conv_bn_act(b, y, channels, 3, pad=1)
