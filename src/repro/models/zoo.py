"""Model registry keyed by the paper's abbreviations (Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graph import Graph
from repro.models import detection, image_recognition, segmentation, \
    transformers

__all__ = ["ModelInfo", "MODEL_INFO", "build_model", "list_models"]


@dataclass(frozen=True)
class ModelInfo:
    """Table I row: abbreviation, full name, type and builder."""

    abbr: str
    full_name: str
    model_type: str
    paper_primitive_layers: int
    builder: Callable[[], Graph]


_MODELS = [
    ModelInfo("alex", "alexnet", "Img. Rec.", 5,
              image_recognition.alexnet),
    ModelInfo("vgg", "vgg16", "Img. Rec.", 16,
              image_recognition.vgg16),
    ModelInfo("res", "resnet34", "Img. Rec.", 14,
              image_recognition.resnet34),
    ModelInfo("reg", "regnet_y_800mf", "Img. Rec.", 28,
              image_recognition.regnet_y_800mf),
    ModelInfo("eff", "efficientnet_b7", "Img. Rec.", 58,
              image_recognition.efficientnet_b7),
    ModelInfo("rcnn", "faster_rcnn", "Obj. Det.", 16,
              detection.faster_rcnn),
    ModelInfo("ssd", "ssd300", "Obj. Det.", 27,
              detection.ssd300),
    ModelInfo("fcn", "fcn", "Sem. Seg.", 18,
              segmentation.fcn),
    ModelInfo("unet", "unet", "Sem. Seg.", 37,
              segmentation.unet),
    ModelInfo("vit", "vit_b_16", "ViT", 1,
              transformers.vit_b_16),
    ModelInfo("swin", "swin_b", "ViT", 1,
              transformers.swin_b),
    ModelInfo("swin2", "swin_v2_b", "ViT", 1,
              transformers.swin_v2_b),
]

MODEL_INFO: Dict[str, ModelInfo] = {}
for _info in _MODELS:
    MODEL_INFO[_info.abbr] = _info
    MODEL_INFO[_info.full_name] = _info


def list_models() -> List[str]:
    """The twelve abbreviations, in Table I order."""
    return [info.abbr for info in _MODELS]


def build_model(name: str) -> Graph:
    """Build a zoo model by abbreviation or full name."""
    try:
        info = MODEL_INFO[name]
    except KeyError:
        known = ", ".join(list_models())
        raise KeyError(f"unknown model {name!r}; known models: {known}") \
            from None
    return info.builder()
