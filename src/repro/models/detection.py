"""Object-detection models: Faster R-CNN and SSD300."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder
from repro.models.blocks import conv_bn_act

__all__ = ["faster_rcnn", "ssd300"]


def faster_rcnn() -> Graph:
    """Faster R-CNN with a VGG-style backbone, an RPN and a box head.

    Proposal generation/NMS is control flow the engine does not lower to
    kernels; the tensor program covers backbone, RPN heads and the
    RoI-pooled classification head.
    """
    b = GraphBuilder("faster_rcnn")
    x = b.input("x", (1, 3, 224, 224))
    y = x
    # VGG-style backbone truncated at conv5 (13 convs).
    for stage, (channels, repeats) in enumerate(
            [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]):
        for i in range(repeats):
            y = b.conv(y, channels, 3, pad=1, name=f"bb{stage + 1}_{i + 1}")
            y = b.relu(y)
        if stage < 4:
            y = b.maxpool(y, 2)
    features = y                                   # 512 x 14 x 14
    # Region proposal network.
    rpn = b.conv(features, 512, 3, pad=1, name="rpn_conv")
    rpn = b.relu(rpn)
    cls_logits = b.conv(rpn, 18, 1, name="rpn_cls")     # 9 anchors x 2
    bbox_pred = b.conv(rpn, 36, 1, name="rpn_bbox")     # 9 anchors x 4
    b.output(b.sigmoid(cls_logits))
    b.output(bbox_pred)
    # RoI head: 7x7 pooled features -> two FC layers -> class/box outputs.
    pooled = b.avgpool(features, 2, name="roi_pool")    # stand-in for RoIAlign
    head = b.flatten(pooled)
    head = b.gemm(head, 1024, name="head_fc1")
    head = b.relu(head)
    head = b.gemm(head, 1024, name="head_fc2")
    head = b.relu(head)
    scores = b.gemm(head, 91, name="cls_score")
    boxes = b.gemm(head, 364, name="bbox_pred")
    b.output(b.softmax(scores))
    b.output(boxes)
    return b.finish()


def ssd300() -> Graph:
    """SSD300: VGG backbone + extra feature layers + multibox heads."""
    b = GraphBuilder("ssd300")
    x = b.input("x", (1, 3, 300, 300))
    y = x
    sources = []
    for stage, (channels, repeats) in enumerate(
            [(64, 2), (128, 2), (256, 3), (512, 3)]):
        for i in range(repeats):
            y = b.conv(y, channels, 3, pad=1, name=f"bb{stage + 1}_{i + 1}")
            y = b.relu(y)
        if stage == 3:
            sources.append(y)                      # conv4_3: 38x38
        y = b.maxpool(y, 2, pad=(1, 1) if stage == 3 else 0)
    # conv5 block + converted fc6/fc7 (dilated).
    for i in range(3):
        y = b.conv(y, 512, 3, pad=1, name=f"bb5_{i + 1}")
        y = b.relu(y)
    y = b.conv(y, 1024, 3, pad=6, dilation=6, name="fc6")
    y = b.relu(y)
    y = b.conv(y, 1024, 1, name="fc7")
    y = b.relu(y)
    sources.append(y)                              # 19x19
    # Extra feature layers: 1x1 squeeze + 3x3 stride-2 reduce.
    extras = [(256, 512), (128, 256), (128, 256), (128, 256)]
    for index, (squeeze, expand) in enumerate(extras):
        y = b.conv(y, squeeze, 1, name=f"extra{index}_1")
        y = b.relu(y)
        stride = 2 if index < 2 else 1
        pad = 1 if index < 2 else 0
        y = b.conv(y, expand, 3, stride=stride, pad=pad, name=f"extra{index}_2")
        y = b.relu(y)
        sources.append(y)
    # Multibox heads: one cls + one loc 3x3 conv per source map.
    anchors = [4, 6, 6, 6, 4, 4]
    for index, (source, num_anchors) in enumerate(zip(sources, anchors)):
        loc = b.conv(source, num_anchors * 4, 3, pad=1, name=f"loc{index}")
        conf = b.conv(source, num_anchors * 21, 3, pad=1, name=f"conf{index}")
        b.output(loc)
        b.output(b.sigmoid(conf))
    return b.finish()
