"""Fluent builder for computation graphs.

The model zoo uses this to express networks concisely::

    b = GraphBuilder("toy")
    x = b.input("x", (1, 3, 224, 224))
    y = b.conv(x, out_channels=64, kernel=7, stride=2, pad=3)
    y = b.relu(y)
    b.output(b.gemm(b.flatten(b.global_avgpool(y)), out_features=1000))
    graph = b.finish()
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.graph.graph import Graph
from repro.graph.node import Node
from repro.tensors import DataType, Layout, TensorDesc

__all__ = ["GraphBuilder"]

_IntOrPair = Union[int, Tuple[int, int]]


class GraphBuilder:
    """Builds a :class:`~repro.graph.graph.Graph` node by node."""

    def __init__(self, name: str = "graph",
                 dtype: DataType = DataType.FP32,
                 layout: Layout = Layout.NCHW) -> None:
        self.graph = Graph(name)
        self.dtype = dtype
        self.layout = layout
        self._counter = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _emit(self, op: str, inputs: Sequence[str], name: Optional[str] = None,
              **attrs) -> str:
        node_name = name or self._fresh(op.lower())
        out = f"{node_name}_out"
        self.graph.add_node(Node(node_name, op, tuple(inputs), (out,), attrs))
        return out

    def input(self, name: str, dims: Tuple[int, ...],
              dtype: Optional[DataType] = None,
              layout: Optional[Layout] = None) -> str:
        """Declare a graph input."""
        desc = TensorDesc(dims, dtype or self.dtype, layout or self.layout)
        return self.graph.add_input(name, desc)

    def weight(self, name: str, dims: Tuple[int, ...],
               dtype: Optional[DataType] = None) -> str:
        """Declare a weight initializer."""
        desc = TensorDesc(dims, dtype or self.dtype, self.layout)
        return self.graph.add_initializer(name, desc)

    def output(self, tensor: str) -> str:
        """Mark ``tensor`` as a graph output."""
        self.graph.mark_output(tensor)
        return tensor

    def finish(self) -> Graph:
        """Validate and return the built graph."""
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def conv(self, x: str, out_channels: int, kernel: _IntOrPair,
             stride: _IntOrPair = 1, pad: _IntOrPair = 0,
             dilation: _IntOrPair = 1, group: int = 1,
             name: Optional[str] = None) -> str:
        """2-D convolution (weight initializer declared automatically)."""
        node_name = name or self._fresh("conv")
        in_channels = self.graph.desc(x).dims[1]
        k = kernel if isinstance(kernel, tuple) else (kernel, kernel)
        weight = self.weight(f"{node_name}_w",
                             (out_channels, in_channels // group, k[0], k[1]))
        out = f"{node_name}_out"
        self.graph.add_node(Node(node_name, "Conv", (x, weight), (out,), {
            "out_channels": out_channels, "kernel_shape": kernel,
            "strides": stride, "pads": pad, "dilations": dilation,
            "group": group,
        }))
        return out

    def maxpool(self, x: str, kernel: _IntOrPair = 2,
                stride: Optional[_IntOrPair] = None, pad: _IntOrPair = 0,
                name: Optional[str] = None) -> str:
        """2-D max pooling (stride defaults to the window size)."""
        return self._emit("MaxPool", [x], name, kernel_shape=kernel,
                          strides=stride if stride is not None else kernel,
                          pads=pad)

    def avgpool(self, x: str, kernel: _IntOrPair = 2,
                stride: Optional[_IntOrPair] = None, pad: _IntOrPair = 0,
                name: Optional[str] = None) -> str:
        """2-D average pooling (stride defaults to the window size)."""
        return self._emit("AveragePool", [x], name, kernel_shape=kernel,
                          strides=stride if stride is not None else kernel,
                          pads=pad)

    def global_avgpool(self, x: str, name: Optional[str] = None) -> str:
        """Global average pooling to 1x1 spatial extent."""
        return self._emit("GlobalAveragePool", [x], name)

    def activation(self, x: str, kind: str = "Relu",
                   name: Optional[str] = None) -> str:
        """Apply a named activation (Relu, Sigmoid, Silu, Gelu, ...)."""
        return self._emit(kind, [x], name)

    def relu(self, x: str, name: Optional[str] = None) -> str:
        """ReLU activation."""
        return self.activation(x, "Relu", name)

    def sigmoid(self, x: str, name: Optional[str] = None) -> str:
        """Sigmoid activation."""
        return self.activation(x, "Sigmoid", name)

    def silu(self, x: str, name: Optional[str] = None) -> str:
        """SiLU (swish) activation."""
        return self.activation(x, "Silu", name)

    def gelu(self, x: str, name: Optional[str] = None) -> str:
        """GELU activation (lowers to an engine kernel, not MIOpen)."""
        return self.activation(x, "Gelu", name)

    def batchnorm(self, x: str, name: Optional[str] = None) -> str:
        """Batch normalization (fusable into a preceding Conv)."""
        return self._emit("BatchNormalization", [x], name)

    def layernorm(self, x: str, name: Optional[str] = None) -> str:
        """Layer normalization."""
        return self._emit("LayerNormalization", [x], name)

    def softmax(self, x: str, name: Optional[str] = None) -> str:
        """Softmax over the last dimension."""
        return self._emit("Softmax", [x], name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise (broadcasting) addition."""
        return self._emit("Add", [a, b], name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Elementwise (broadcasting) multiplication."""
        return self._emit("Mul", [a, b], name)

    def concat(self, tensors: Sequence[str], axis: int = 1,
               name: Optional[str] = None) -> str:
        """Concatenate tensors along ``axis``."""
        return self._emit("Concat", list(tensors), name, axis=axis)

    def flatten(self, x: str, axis: int = 1, name: Optional[str] = None) -> str:
        """Flatten all dims from ``axis`` into one."""
        return self._emit("Flatten", [x], name, axis=axis)

    def reshape(self, x: str, shape: Tuple[int, ...],
                name: Optional[str] = None) -> str:
        """Reshape to ``shape`` (-1 infers one dimension)."""
        return self._emit("Reshape", [x], name, shape=shape)

    def transpose(self, x: str, perm: Optional[Tuple[int, ...]] = None,
                  name: Optional[str] = None) -> str:
        """Permute dimensions (defaults to full reversal)."""
        return self._emit("Transpose", [x], name, perm=perm)

    def gemm(self, x: str, out_features: int, name: Optional[str] = None) -> str:
        """Fully-connected layer (weight initializer declared automatically)."""
        node_name = name or self._fresh("gemm")
        in_features = self.graph.desc(x).dims[-1]
        weight = self.weight(f"{node_name}_w", (in_features, out_features))
        out = f"{node_name}_out"
        self.graph.add_node(Node(node_name, "Gemm", (x, weight), (out,),
                                 {"out_features": out_features}))
        return out

    def matmul(self, a: str, b: str, name: Optional[str] = None) -> str:
        """(Batched) matrix multiplication, served by the BLAS library."""
        return self._emit("MatMul", [a, b], name)

    def resize(self, x: str, scale: float = 2.0,
               name: Optional[str] = None) -> str:
        """Spatial upsampling by ``scale``."""
        return self._emit("Resize", [x], name, scale=scale)

    def slice(self, x: str, axis: int, size: int, offset: int = 0,
              name: Optional[str] = None) -> str:
        """Slice ``size`` elements from ``offset`` along ``axis``."""
        return self._emit("Slice", [x], name, axis=axis, size=size,
                          offset=offset)

    def reduce_mean(self, x: str, axes: Tuple[int, ...],
                    name: Optional[str] = None) -> str:
        """Mean-reduce over ``axes``."""
        return self._emit("ReduceMean", [x], name, axes=axes)

    def dropout(self, x: str, name: Optional[str] = None) -> str:
        """Dropout (an inference-time no-op, eliminated by passes)."""
        return self._emit("Dropout", [x], name)

    def identity(self, x: str, name: Optional[str] = None) -> str:
        """Identity (eliminated by passes unless a graph output)."""
        return self._emit("Identity", [x], name)
