"""Graph nodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["Node"]


@dataclass(frozen=True)
class Node:
    """One operator application in a computation graph.

    ``inputs``/``outputs`` are tensor names resolved against the owning
    :class:`~repro.graph.graph.Graph`.  ``attrs`` carries ONNX-style
    attributes (kernel shape, strides, ...).
    """

    name: str
    op: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node needs a non-empty name")
        if not self.op:
            raise ValueError(f"node {self.name!r} needs an op type")
        if not self.outputs:
            raise ValueError(f"node {self.name!r} produces no outputs")

    def attr(self, key: str, default: Any = None) -> Any:
        """Attribute lookup with default."""
        return self.attrs.get(key, default)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(self.inputs)
        outs = ", ".join(self.outputs)
        return f"{self.name}: {self.op}({ins}) -> {outs}"
