"""ONNX-like computation-graph representation.

Models are "submitted in the ONNX format containing multiple canonical
operators" (Sec. II-A).  This subpackage provides the canonical operator
set with shape inference and FLOP estimation, an immutable-node graph, and
a builder API used by the model zoo.
"""

from repro.graph.node import Node
from repro.graph.graph import Graph, GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.operators import (
    OpCategory,
    infer_shapes,
    node_flops,
    node_memory_bytes,
    op_category,
    supported_ops,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "OpCategory",
    "infer_shapes",
    "node_flops",
    "node_memory_bytes",
    "op_category",
    "supported_ops",
]
