"""Computation graph container with shape inference and validation."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.node import Node
from repro.graph.operators import infer_shapes
from repro.tensors import TensorDesc

__all__ = ["Graph", "GraphError"]


class GraphError(Exception):
    """Raised for structurally invalid graphs."""


class Graph:
    """An ONNX-like computation graph.

    Nodes are appended in topological order (each input must already have a
    producer or be a graph input/initializer); output shapes are inferred
    on insertion, so the graph is always shape-consistent.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.tensors: Dict[str, TensorDesc] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.initializers: Set[str] = set()
        self._producer: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, desc: TensorDesc) -> str:
        """Declare a graph input tensor."""
        self._declare_tensor(name, desc)
        self.inputs.append(name)
        return name

    def add_initializer(self, name: str, desc: TensorDesc) -> str:
        """Declare a weight/constant tensor baked into the model."""
        self._declare_tensor(name, desc)
        self.initializers.add(name)
        return name

    def add_node(self, node: Node) -> Node:
        """Append a node; infers and registers its output descriptors."""
        missing = [t for t in node.inputs if t not in self.tensors]
        if missing:
            raise GraphError(
                f"node {node.name!r} references undefined tensors {missing}")
        if any(n.name == node.name for n in self.nodes):
            raise GraphError(f"duplicate node name {node.name!r}")
        input_descs = [self.tensors[t] for t in node.inputs]
        output_descs = infer_shapes(node, input_descs)
        if len(output_descs) != len(node.outputs):
            raise GraphError(
                f"node {node.name!r} declares {len(node.outputs)} outputs but "
                f"shape inference produced {len(output_descs)}")
        for tensor_name, desc in zip(node.outputs, output_descs):
            self._declare_tensor(tensor_name, desc)
            self._producer[tensor_name] = node
        self.nodes.append(node)
        return node

    def mark_output(self, name: str) -> None:
        """Declare a graph output tensor."""
        if name not in self.tensors:
            raise GraphError(f"cannot mark unknown tensor {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)

    def _declare_tensor(self, name: str, desc: TensorDesc) -> None:
        if not name:
            raise GraphError("tensor needs a non-empty name")
        if name in self.tensors:
            raise GraphError(f"tensor {name!r} declared twice")
        self.tensors[name] = desc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def producer(self, tensor: str) -> Optional[Node]:
        """The node producing ``tensor`` (None for inputs/initializers)."""
        return self._producer.get(tensor)

    def consumers(self, tensor: str) -> List[Node]:
        """All nodes consuming ``tensor``."""
        return [n for n in self.nodes if tensor in n.inputs]

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in graph {self.name!r}")

    def desc(self, tensor: str) -> TensorDesc:
        """The descriptor of ``tensor``."""
        try:
            return self.tensors[tensor]
        except KeyError:
            raise KeyError(f"unknown tensor {tensor!r}") from None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # Validation / transformation support
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Full structural check; raises :class:`GraphError` on problems."""
        if not self.outputs:
            raise GraphError(f"graph {self.name!r} has no outputs")
        defined: Set[str] = set(self.inputs) | self.initializers
        for node in self.nodes:
            for tensor in node.inputs:
                if tensor not in defined:
                    raise GraphError(
                        f"node {node.name!r} uses {tensor!r} before definition")
            for tensor in node.outputs:
                if tensor in defined:
                    raise GraphError(f"tensor {tensor!r} defined twice")
                defined.add(tensor)
        for tensor in self.outputs:
            if tensor not in defined:
                raise GraphError(f"graph output {tensor!r} is never produced")

    def rebuild(self, nodes: Iterable[Node], name: Optional[str] = None) -> "Graph":
        """A fresh graph with the same inputs/initializers and new ``nodes``.

        Used by optimization passes: shapes are re-inferred, so an invalid
        transformation fails loudly.
        """
        out = Graph(name or self.name)
        for tensor in self.inputs:
            out.add_input(tensor, self.tensors[tensor])
        for tensor in sorted(self.initializers):
            out.add_initializer(tensor, self.tensors[tensor])
        for node in nodes:
            out.add_node(node)
        for tensor in self.outputs:
            out.mark_output(tensor)
        out.validate()
        return out

    def stats(self) -> Dict[str, Any]:
        """Summary counters (node count per op, tensor count)."""
        per_op: Dict[str, int] = {}
        for node in self.nodes:
            per_op[node.op] = per_op.get(node.op, 0) + 1
        return {
            "nodes": len(self.nodes),
            "tensors": len(self.tensors),
            "per_op": per_op,
        }

    def __repr__(self) -> str:
        return (f"<Graph {self.name!r} nodes={len(self.nodes)} "
                f"inputs={self.inputs} outputs={self.outputs}>")
