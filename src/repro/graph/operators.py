"""Canonical operator set: shape inference, FLOPs and memory estimates.

Each supported ONNX-style operator registers a shape-inference rule and a
cost rule.  The cost rules feed the kernel performance model in
:mod:`repro.primitive.perf_model`; they use the standard textbook FLOP
counts (e.g. 2*N*K*C*R*S*Ho*Wo for a convolution).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Sequence, Tuple

from repro.graph.node import Node
from repro.tensors import TensorDesc

__all__ = [
    "OpCategory",
    "infer_shapes",
    "node_flops",
    "node_memory_bytes",
    "op_category",
    "supported_ops",
]


class OpCategory(enum.Enum):
    """How the engine lowers an operator (which library serves it)."""

    CONV = "conv"              # MIOpen convolution primitive
    POOL = "pool"              # MIOpen pooling primitive
    ACTIVATION = "activation"  # MIOpen activation primitive
    GEMM = "gemm"              # BLAS library (hipBLAS) -- outside PASK reuse
    NORM = "norm"              # fused elementwise normalization kernels
    ELEMENTWISE = "elementwise"
    SHAPE = "shape"            # zero-cost metadata ops (reshape/flatten/...)
    REDUCE = "reduce"


_ShapeFn = Callable[[Node, Sequence[TensorDesc]], List[TensorDesc]]
_CostFn = Callable[[Node, Sequence[TensorDesc], Sequence[TensorDesc]], float]


class _OpDef:
    def __init__(self, category: OpCategory, shape_fn: _ShapeFn,
                 flops_fn: _CostFn) -> None:
        self.category = category
        self.shape_fn = shape_fn
        self.flops_fn = flops_fn


_REGISTRY: Dict[str, _OpDef] = {}


def _register(name: str, category: OpCategory, shape_fn: _ShapeFn,
              flops_fn: _CostFn) -> None:
    if name in _REGISTRY:
        raise ValueError(f"operator {name!r} registered twice")
    _REGISTRY[name] = _OpDef(category, shape_fn, flops_fn)


def supported_ops() -> List[str]:
    """Names of all registered operators."""
    return sorted(_REGISTRY)


def op_category(op: str) -> OpCategory:
    """The lowering category of ``op``."""
    return _lookup(op).category


def infer_shapes(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    """Output descriptors of ``node`` given its input descriptors."""
    return _lookup(node.op).shape_fn(node, inputs)


def node_flops(node: Node, inputs: Sequence[TensorDesc],
               outputs: Sequence[TensorDesc]) -> float:
    """Estimated floating-point operations performed by ``node``."""
    return _lookup(node.op).flops_fn(node, inputs, outputs)


def node_memory_bytes(node: Node, inputs: Sequence[TensorDesc],
                      outputs: Sequence[TensorDesc]) -> int:
    """Bytes moved: all inputs read once, all outputs written once."""
    return (sum(t.size_bytes for t in inputs)
            + sum(t.size_bytes for t in outputs))


def _lookup(op: str) -> _OpDef:
    try:
        return _REGISTRY[op]
    except KeyError:
        raise KeyError(f"unsupported operator {op!r}; "
                       f"supported: {', '.join(supported_ops())}") from None


# ----------------------------------------------------------------------
# Shape helpers
# ----------------------------------------------------------------------

def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _conv_out_dim(size: int, kernel: int, stride: int, pad: int,
                  dilation: int) -> int:
    out = (size + 2 * pad - dilation * (kernel - 1) - 1) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution/pooling output collapsed to {out} "
            f"(in={size}, k={kernel}, s={stride}, p={pad}, d={dilation})")
    return out


def _require_rank(op: str, tensor: TensorDesc, rank: int) -> None:
    if tensor.rank != rank:
        raise ValueError(f"{op} expects rank-{rank} input, got {tensor}")


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------

def _conv_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    _require_rank("Conv", x, 4)
    n, c, h, w = x.dims
    k = int(node.attr("out_channels"))
    r, s = _pair(node.attr("kernel_shape", 1))
    stride_h, stride_w = _pair(node.attr("strides", 1))
    pad_h, pad_w = _pair(node.attr("pads", 0))
    dil_h, dil_w = _pair(node.attr("dilations", 1))
    groups = int(node.attr("group", 1))
    if c % groups != 0 or k % groups != 0:
        raise ValueError(f"Conv {node.name!r}: channels {c}->{k} not divisible "
                         f"by groups {groups}")
    ho = _conv_out_dim(h, r, stride_h, pad_h, dil_h)
    wo = _conv_out_dim(w, s, stride_w, pad_w, dil_w)
    return [TensorDesc((n, k, ho, wo), x.dtype, x.layout)]


def _conv_flops(node: Node, inputs: Sequence[TensorDesc],
                outputs: Sequence[TensorDesc]) -> float:
    x, y = inputs[0], outputs[0]
    c = x.dims[1]
    r, s = _pair(node.attr("kernel_shape", 1))
    groups = int(node.attr("group", 1))
    # 2 * N * K * Ho * Wo * (C/groups) * R * S  (+ bias add, negligible)
    return 2.0 * y.numel * (c // groups) * r * s


_register("Conv", OpCategory.CONV, _conv_shape, _conv_flops)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def _pool_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    _require_rank(node.op, x, 4)
    n, c, h, w = x.dims
    r, s = _pair(node.attr("kernel_shape", 2))
    stride_h, stride_w = _pair(node.attr("strides", node.attr("kernel_shape", 2)))
    pad_h, pad_w = _pair(node.attr("pads", 0))
    ho = _conv_out_dim(h, r, stride_h, pad_h, 1)
    wo = _conv_out_dim(w, s, stride_w, pad_w, 1)
    return [TensorDesc((n, c, ho, wo), x.dtype, x.layout)]


def _pool_flops(node: Node, inputs: Sequence[TensorDesc],
                outputs: Sequence[TensorDesc]) -> float:
    r, s = _pair(node.attr("kernel_shape", 2))
    return float(outputs[0].numel * r * s)


def _global_pool_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    _require_rank(node.op, x, 4)
    n, c, _h, _w = x.dims
    return [TensorDesc((n, c, 1, 1), x.dtype, x.layout)]


def _global_pool_flops(node: Node, inputs: Sequence[TensorDesc],
                       outputs: Sequence[TensorDesc]) -> float:
    return float(inputs[0].numel)


_register("MaxPool", OpCategory.POOL, _pool_shape, _pool_flops)
_register("AveragePool", OpCategory.POOL, _pool_shape, _pool_flops)
_register("GlobalAveragePool", OpCategory.POOL, _global_pool_shape,
          _global_pool_flops)


# ----------------------------------------------------------------------
# Activations (MIOpen activation primitive)
# ----------------------------------------------------------------------

def _same_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    return [inputs[0]]


def _unary_flops(factor: float) -> _CostFn:
    def fn(node: Node, inputs: Sequence[TensorDesc],
           outputs: Sequence[TensorDesc]) -> float:
        return factor * inputs[0].numel
    return fn


for _name, _factor in [("Relu", 1.0), ("LeakyRelu", 2.0), ("Sigmoid", 4.0),
                       ("Tanh", 4.0), ("Clip", 2.0), ("HardSwish", 4.0),
                       ("Silu", 5.0), ("Gelu", 8.0), ("Elu", 4.0)]:
    _register(_name, OpCategory.ACTIVATION, _same_shape, _unary_flops(_factor))


# ----------------------------------------------------------------------
# GEMM / MatMul (BLAS library)
# ----------------------------------------------------------------------

def _gemm_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    a = inputs[0]
    if a.rank != 2:
        raise ValueError(f"Gemm expects rank-2 input, got {a}")
    m, k = a.dims
    n = int(node.attr("out_features"))
    return [TensorDesc((m, n), a.dtype, a.layout)]


def _gemm_flops(node: Node, inputs: Sequence[TensorDesc],
                outputs: Sequence[TensorDesc]) -> float:
    m, k = inputs[0].dims
    n = outputs[0].dims[-1]
    return 2.0 * m * n * k


def _matmul_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    a, b = inputs[0], inputs[1]
    if a.dims[-1] != b.dims[-2]:
        raise ValueError(f"MatMul inner dims mismatch: {a} @ {b}")
    batch = a.dims[:-2]
    return [TensorDesc(batch + (a.dims[-2], b.dims[-1]), a.dtype, a.layout)]


def _matmul_flops(node: Node, inputs: Sequence[TensorDesc],
                  outputs: Sequence[TensorDesc]) -> float:
    k = inputs[0].dims[-1]
    return 2.0 * outputs[0].numel * k


_register("Gemm", OpCategory.GEMM, _gemm_shape, _gemm_flops)
_register("MatMul", OpCategory.GEMM, _matmul_shape, _matmul_flops)


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------

_register("BatchNormalization", OpCategory.NORM, _same_shape, _unary_flops(4.0))
_register("LayerNormalization", OpCategory.NORM, _same_shape, _unary_flops(8.0))
_register("Softmax", OpCategory.NORM, _same_shape, _unary_flops(5.0))


# ----------------------------------------------------------------------
# Elementwise binary
# ----------------------------------------------------------------------

def _broadcast_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    a, b = inputs[0], inputs[1]
    ra, rb = a.dims[::-1], b.dims[::-1]
    out = []
    for i in range(max(len(ra), len(rb))):
        da = ra[i] if i < len(ra) else 1
        db = rb[i] if i < len(rb) else 1
        if da != db and da != 1 and db != 1:
            raise ValueError(f"{node.op} cannot broadcast {a} with {b}")
        out.append(max(da, db))
    return [TensorDesc(tuple(out[::-1]), a.dtype, a.layout)]


for _name in ["Add", "Sub", "Mul", "Div"]:
    _register(_name, OpCategory.ELEMENTWISE, _broadcast_shape,
              lambda node, inputs, outputs: float(outputs[0].numel))


# ----------------------------------------------------------------------
# Shape / data-movement ops
# ----------------------------------------------------------------------

def _flatten_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    axis = int(node.attr("axis", 1))
    lead = 1
    for d in x.dims[:axis]:
        lead *= d
    trail = 1
    for d in x.dims[axis:]:
        trail *= d
    return [TensorDesc((lead, trail), x.dtype, x.layout)]


def _reshape_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    target = tuple(int(d) for d in node.attr("shape"))
    if -1 in target:
        known = 1
        for d in target:
            if d != -1:
                known *= d
        if x.numel % known != 0:
            raise ValueError(f"cannot reshape {x} to {target}")
        target = tuple(x.numel // known if d == -1 else d for d in target)
    numel = 1
    for d in target:
        numel *= d
    if numel != x.numel:
        raise ValueError(f"reshape changes element count: {x} -> {target}")
    return [TensorDesc(target, x.dtype, x.layout)]


def _transpose_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    perm = node.attr("perm")
    if perm is None:
        perm = tuple(reversed(range(x.rank)))
    if sorted(perm) != list(range(x.rank)):
        raise ValueError(f"bad permutation {perm} for {x}")
    return [TensorDesc(tuple(x.dims[p] for p in perm), x.dtype, x.layout)]


def _concat_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    axis = int(node.attr("axis", 1))
    first = inputs[0]
    total = 0
    for t in inputs:
        if t.rank != first.rank:
            raise ValueError("Concat inputs must share rank")
        for i, (da, db) in enumerate(zip(first.dims, t.dims)):
            if i != axis % first.rank and da != db:
                raise ValueError(f"Concat mismatch off-axis: {first} vs {t}")
        total += t.dims[axis % first.rank]
    dims = list(first.dims)
    dims[axis % first.rank] = total
    return [TensorDesc(tuple(dims), first.dtype, first.layout)]


def _resize_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    _require_rank("Resize", x, 4)
    scale = float(node.attr("scale", 2.0))
    n, c, h, w = x.dims
    return [TensorDesc((n, c, int(h * scale), int(w * scale)),
                       x.dtype, x.layout)]


def _slice_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    dims = list(x.dims)
    axis = int(node.attr("axis", 0)) % x.rank
    size = int(node.attr("size"))
    if not 0 < size <= dims[axis]:
        raise ValueError(f"bad slice size {size} on axis {axis} of {x}")
    dims[axis] = size
    return [TensorDesc(tuple(dims), x.dtype, x.layout)]


def _zero_flops(node: Node, inputs: Sequence[TensorDesc],
                outputs: Sequence[TensorDesc]) -> float:
    return 0.0


def _copy_flops(node: Node, inputs: Sequence[TensorDesc],
                outputs: Sequence[TensorDesc]) -> float:
    return float(outputs[0].numel)


_register("Flatten", OpCategory.SHAPE, _flatten_shape, _zero_flops)
_register("Reshape", OpCategory.SHAPE, _reshape_shape, _zero_flops)
_register("Identity", OpCategory.SHAPE, _same_shape, _zero_flops)
_register("Dropout", OpCategory.SHAPE, _same_shape, _zero_flops)
_register("Transpose", OpCategory.SHAPE, _transpose_shape, _copy_flops)
_register("Concat", OpCategory.SHAPE, _concat_shape, _copy_flops)
_register("Resize", OpCategory.SHAPE, _resize_shape, _copy_flops)
_register("Slice", OpCategory.SHAPE, _slice_shape, _copy_flops)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def _reduce_mean_shape(node: Node, inputs: Sequence[TensorDesc]) -> List[TensorDesc]:
    x = inputs[0]
    axes = node.attr("axes")
    if axes is None:
        return [TensorDesc((1,), x.dtype, x.layout)]
    keep = [d for i, d in enumerate(x.dims)
            if i not in {a % x.rank for a in axes}]
    return [TensorDesc(tuple(keep) if keep else (1,), x.dtype, x.layout)]


_register("ReduceMean", OpCategory.REDUCE, _reduce_mean_shape,
          lambda node, inputs, outputs: float(inputs[0].numel))
