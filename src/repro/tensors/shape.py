"""Tensor shape descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from operator import mul
from typing import Tuple

from repro.tensors.dtype import DataType
from repro.tensors.layout import Layout

__all__ = ["TensorDesc"]


@dataclass(frozen=True)
class TensorDesc:
    """An immutable tensor descriptor: dims + dtype + layout.

    Matches what the serving framework passes to the primitive library when
    constructing a problem (image sizes, filter sizes, data types...).
    """

    dims: Tuple[int, ...]
    dtype: DataType = DataType.FP32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("tensor must have at least one dimension")
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"non-positive dimension in {self.dims}")

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def numel(self) -> int:
        """Total number of elements."""
        return reduce(mul, self.dims, 1)

    @property
    def size_bytes(self) -> int:
        """Total storage in bytes."""
        return self.numel * self.dtype.size_bytes

    def with_batch(self, batch: int) -> "TensorDesc":
        """A copy with the leading (batch) dimension replaced."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return TensorDesc((batch,) + self.dims[1:], self.dtype, self.layout)

    def with_layout(self, layout: Layout) -> "TensorDesc":
        """A copy in a different memory layout (same logical dims)."""
        return TensorDesc(self.dims, self.dtype, layout)

    def with_dtype(self, dtype: DataType) -> "TensorDesc":
        """A copy with a different element type."""
        return TensorDesc(self.dims, dtype, self.layout)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.dims)
        return f"{dims}:{self.dtype.label}:{self.layout.value}"
