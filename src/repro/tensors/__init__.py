"""Tensor descriptors: data types, memory layouts and shapes.

These describe the *problems* handed to the primitive library (Sec. II-A:
"sets the tensor descriptors needed by the primitive library with input
problem").  No tensor data is materialized -- the reproduction is a timing
simulation -- but sizes, dtypes and layouts drive the cost models and the
solution applicability constraints.
"""

from repro.tensors.dtype import DataType
from repro.tensors.layout import Layout, layout_transform_time
from repro.tensors.shape import TensorDesc

__all__ = ["DataType", "Layout", "TensorDesc", "layout_transform_time"]
