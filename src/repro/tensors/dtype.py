"""Numeric data types supported by the simulated stack."""

from __future__ import annotations

import enum

__all__ = ["DataType"]


class DataType(enum.Enum):
    """Tensor element types, with their storage width in bytes.

    Mixed-precision specialization (Sec. VI "More factors for kernel
    specialization") makes the dtype part of a solution's constraint set,
    so it must be part of the problem descriptor as well.
    """

    FP32 = ("fp32", 4)
    FP16 = ("fp16", 2)
    BF16 = ("bf16", 2)
    INT8 = ("int8", 1)
    INT32 = ("int32", 4)

    def __init__(self, label: str, size: int) -> None:
        self.label = label
        self.size_bytes = size

    @property
    def is_low_precision(self) -> bool:
        """Whether this dtype is narrower than 32 bits."""
        return self.size_bytes < 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label
