"""Tensor memory layouts and the cost of interchanging them.

Layout transforms (NCHW <-> NHWC) matter twice in the paper: they are the
overhead NNV12 optimizes away, and they are extra kernels a *solution* may
carry (footnote 2: a solution may contain kernels "to transform input/output
tensor layout/precision").
"""

from __future__ import annotations

import enum

__all__ = ["Layout", "layout_transform_time"]


class Layout(enum.Enum):
    """Supported 4-D tensor memory layouts."""

    NCHW = "NCHW"
    NHWC = "NHWC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def layout_transform_time(num_bytes: int, mem_bandwidth_gbps: float) -> float:
    """Seconds for one layout interchange of ``num_bytes`` of tensor data.

    A transform reads and writes every element once; effective bandwidth is
    derated because the access pattern is strided on one side.
    """
    if num_bytes < 0:
        raise ValueError(f"negative tensor size: {num_bytes}")
    if mem_bandwidth_gbps <= 0:
        raise ValueError(f"non-positive bandwidth: {mem_bandwidth_gbps}")
    effective_bw = mem_bandwidth_gbps * 1e9 * 0.35  # strided derating
    return 2.0 * num_bytes / effective_bw
