"""Lowered-program serialization (the ``.mgx`` file format equivalent).

Programs round-trip through plain JSON-compatible dictionaries so the
model registry can store them offline and the serving schemes can parse
them at request time.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.engine.instruction import EngineKernel, Instruction, InstrKind
from repro.engine.program import Program
from repro.primitive.problem import (
    ActivationProblem,
    ConvProblem,
    GemmProblem,
    PoolProblem,
    Problem,
)
from repro.tensors import DataType, Layout

__all__ = ["serialize_program", "deserialize_program"]

_DTYPES = {d.label: d for d in DataType}
_LAYOUTS = {l.value: l for l in Layout}


def _problem_to_dict(problem: Problem) -> Dict[str, Any]:
    if isinstance(problem, ConvProblem):
        return {"type": "conv", "batch": problem.batch,
                "in_channels": problem.in_channels,
                "height": problem.height, "width": problem.width,
                "out_channels": problem.out_channels,
                "kernel": list(problem.kernel), "stride": list(problem.stride),
                "pad": list(problem.pad), "dilation": list(problem.dilation),
                "group": problem.group, "dtype": problem.dtype.label,
                "layout": problem.layout.value}
    if isinstance(problem, PoolProblem):
        return {"type": "pool", "batch": problem.batch,
                "channels": problem.channels, "height": problem.height,
                "width": problem.width, "kernel": list(problem.kernel),
                "stride": list(problem.stride), "pad": list(problem.pad),
                "mode": problem.mode, "dtype": problem.dtype.label,
                "layout": problem.layout.value}
    if isinstance(problem, ActivationProblem):
        return {"type": "activation", "numel": problem.numel,
                "activation": problem.activation,
                "dtype": problem.dtype.label, "layout": problem.layout.value}
    if isinstance(problem, GemmProblem):
        return {"type": "gemm", "m": problem.m, "n": problem.n,
                "k": problem.k, "batch": problem.batch,
                "dtype": problem.dtype.label, "layout": problem.layout.value}
    raise TypeError(f"cannot serialize problem type {type(problem).__name__}")


def _problem_from_dict(data: Dict[str, Any]) -> Problem:
    dtype = _DTYPES[data["dtype"]]
    layout = _LAYOUTS[data["layout"]]
    kind = data["type"]
    if kind == "conv":
        return ConvProblem(data["batch"], data["in_channels"], data["height"],
                           data["width"], data["out_channels"],
                           tuple(data["kernel"]), tuple(data["stride"]),
                           tuple(data["pad"]), tuple(data["dilation"]),
                           data["group"], dtype, layout)
    if kind == "pool":
        return PoolProblem(data["batch"], data["channels"], data["height"],
                           data["width"], tuple(data["kernel"]),
                           tuple(data["stride"]), tuple(data["pad"]),
                           data["mode"], dtype, layout)
    if kind == "activation":
        return ActivationProblem(data["numel"], data["activation"], dtype,
                                 layout)
    if kind == "gemm":
        return GemmProblem(data["m"], data["n"], data["k"], data["batch"],
                           dtype, layout)
    raise ValueError(f"unknown problem type tag {kind!r}")


def serialize_program(program: Program) -> str:
    """Serialize ``program`` to a JSON string."""
    instructions = []
    for instr in program.instructions:
        entry: Dict[str, Any] = {
            "index": instr.index, "name": instr.name,
            "kind": instr.kind.value,
        }
        if instr.problem is not None:
            entry["problem"] = _problem_to_dict(instr.problem)
        if instr.solution_name is not None:
            entry["solution"] = instr.solution_name
        if instr.engine_kernel is not None:
            k = instr.engine_kernel
            entry["engine_kernel"] = {"op": k.op, "shape_sig": k.shape_sig,
                                      "flops": k.flops,
                                      "bytes_moved": k.bytes_moved}
        instructions.append(entry)
    return json.dumps({
        "format": "repro-mgx-v1",
        "name": program.name,
        "batch": program.batch,
        "metadata": program.metadata,
        "instructions": instructions,
    })


def deserialize_program(payload: str) -> Program:
    """Reconstruct a :class:`Program` from :func:`serialize_program` output."""
    data = json.loads(payload)
    if data.get("format") != "repro-mgx-v1":
        raise ValueError(f"unknown program format {data.get('format')!r}")
    instructions = []
    for entry in data["instructions"]:
        problem = (_problem_from_dict(entry["problem"])
                   if "problem" in entry else None)
        kernel = None
        if "engine_kernel" in entry:
            k = entry["engine_kernel"]
            kernel = EngineKernel(k["op"], k["shape_sig"], k["flops"],
                                  k["bytes_moved"])
        instructions.append(Instruction(
            index=entry["index"], name=entry["name"],
            kind=InstrKind(entry["kind"]), problem=problem,
            solution_name=entry.get("solution"), engine_kernel=kernel))
    return Program(name=data["name"], instructions=tuple(instructions),
                   batch=data["batch"], metadata=data.get("metadata", {}))
