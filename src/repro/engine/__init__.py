"""MIGraphX-like inference engine.

Offline preparation (Fig. 3): the engine receives an ONNX-like graph,
applies hardware-independent optimization passes (DCE, CSE, fusion),
lowers every node to an instruction -- choosing the optimal primitive
solution per layer via the library's find-db -- and serializes the result
as a *lowered model* stored in the model registry.  Online serving
schemes (:mod:`repro.core.schemes`) consume that lowered model.
"""

from repro.engine.instruction import EngineKernel, Instruction, InstrKind
from repro.engine.program import Program
from repro.engine.lowering import LoweringOptions, lower
from repro.engine.serialize import deserialize_program, serialize_program
from repro.engine.registry import ModelRegistry
from repro.engine.passes import default_passes, run_passes

__all__ = [
    "EngineKernel",
    "Instruction",
    "InstrKind",
    "LoweringOptions",
    "ModelRegistry",
    "Program",
    "default_passes",
    "deserialize_program",
    "lower",
    "run_passes",
    "serialize_program",
]
