"""Lowering: optimized graph -> instruction sequence.

For each node, the lowering decides which library serves it and -- for
MIOpen primitives -- runs the offline *find* step that determines the
optimal solution (Sec. II-A).  The find policy is configurable because
the evaluated schemes differ offline too: the baseline ranks by raw
kernel performance, while NNV12 restricts itself to layout-native
solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.instruction import EngineKernel, Instruction, InstrKind
from repro.engine.passes import run_passes
from repro.engine.program import Program
from repro.graph import Graph, Node, OpCategory, node_flops, \
    node_memory_bytes, op_category
from repro.primitive.library import MIOpenLibrary
from repro.primitive.problem import (
    ActivationProblem,
    ConvProblem,
    GemmProblem,
    PoolProblem,
)
from repro.primitive.solvers.activation import SPECIALIZED_ACTIVATIONS

__all__ = ["LoweringOptions", "lower"]

# Activations MIOpen's activation primitive implements; anything else
# (notably Gelu) becomes an engine kernel.
_MIOPEN_ACTIVATIONS = frozenset(SPECIALIZED_ACTIVATIONS)


@dataclass(frozen=True)
class LoweringOptions:
    """Offline policy knobs for lowering."""

    batch: int = 1
    include_transform_cost: bool = False   # NNV12: count cast time in find
    native_layout_only: bool = False       # NNV12: forbid cast-needing picks
    # NNV12's cold-start-aware kernel selection: when two or more layers
    # share a tuning bucket, select the shared bucket-level (spec <= 1)
    # solution for all of them so they load one binary instead of one
    # tuned binary each -- trading kernel efficiency for loading.
    consolidate_buckets: bool = False
    apply_passes: bool = True

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _shape_sig(dims: Tuple[int, ...]) -> str:
    return "x".join(str(d) for d in dims)


def lower(graph: Graph, library: MIOpenLibrary,
          options: Optional[LoweringOptions] = None) -> Program:
    """Lower ``graph`` into a :class:`Program` under ``options``."""
    options = options or LoweringOptions()
    if options.apply_passes:
        graph = run_passes(graph)
    overrides = (_bucket_consolidation(graph, library, options)
                 if options.consolidate_buckets else {})
    instructions: List[Instruction] = []
    for node in graph.nodes:
        instructions.append(_lower_node(graph, node, library, options,
                                        index=len(instructions),
                                        overrides=overrides))
    weight_bytes = sum(graph.desc(name).size_bytes
                       for name in graph.initializers)
    return Program(
        name=graph.name,
        instructions=tuple(instructions),
        batch=options.batch,
        metadata={
            "native_layout_only": options.native_layout_only,
            "include_transform_cost": options.include_transform_cost,
            "weight_bytes": weight_bytes,
        },
    )


def _primitive_problem(graph: Graph, node: Node, batch: int):
    """The MIOpen problem for ``node`` (None if not MIOpen-served)."""
    category = op_category(node.op)
    if category is OpCategory.CONV:
        return _conv_problem(graph, node, batch)
    if category is OpCategory.POOL:
        return _pool_problem(graph, node, batch)
    if category is OpCategory.ACTIVATION and node.op.lower() in _MIOPEN_ACTIVATIONS:
        x = graph.desc(node.inputs[0])
        return ActivationProblem(x.numel * batch, node.op.lower(),
                                 x.dtype, x.layout)
    return None


def _bucket_consolidation(graph: Graph, library: MIOpenLibrary,
                          options: LoweringOptions):
    """Cold-start-aware kernel selection (NNV12 policy).

    Groups primitive layers by the bucket-level solution that could serve
    them; groups of two or more adopt the shared bucket binary, so all of
    them together pay one load.
    """
    groups = {}
    for node in graph.nodes:
        problem = _primitive_problem(graph, node, options.batch)
        if problem is None:
            continue
        ranked = library.find_db.query(
            problem, include_transform_cost=options.include_transform_cost,
            native_layout_only=options.native_layout_only)
        shared = next((s for s in ranked if s.specialization <= 1), None)
        if shared is None:
            continue
        key = (shared.name, shared.signature(problem))
        groups.setdefault(key, []).append((node.name, shared))
    overrides = {}
    for members in groups.values():
        if len(members) >= 2:
            for node_name, solution in members:
                overrides[node_name] = solution.name
    return overrides


def _lower_node(graph: Graph, node: Node, library: MIOpenLibrary,
                options: LoweringOptions, index: int,
                overrides=None) -> Instruction:
    category = op_category(node.op)
    batch = options.batch
    problem = _primitive_problem(graph, node, batch)
    if problem is not None:
        forced = (overrides or {}).get(node.name)
        return _miopen_instruction(index, node, problem, library, options,
                                   forced_solution=forced)
    if category is OpCategory.GEMM:
        return Instruction(index, node.name, InstrKind.BLAS_GEMM,
                           problem=_gemm_problem(graph, node, batch))
    if category is OpCategory.SHAPE and node.op in ("Flatten", "Reshape"):
        return Instruction(index, node.name, InstrKind.NOOP)
    # Everything else (norms, elementwise, data movement, exotic
    # activations like Gelu) becomes a per-shape JIT engine kernel.
    inputs = [graph.desc(t) for t in node.inputs]
    outputs = [graph.desc(t) for t in node.outputs]
    kernel = EngineKernel(
        op=node.op,
        shape_sig=_shape_sig(outputs[0].dims),
        flops=node_flops(node, inputs, outputs),
        bytes_moved=node_memory_bytes(node, inputs, outputs),
    ).scaled(batch)
    return Instruction(index, node.name, InstrKind.ENGINE_KERNEL,
                       engine_kernel=kernel)


def _miopen_instruction(index: int, node: Node, problem, library,
                        options: LoweringOptions,
                        forced_solution: Optional[str] = None) -> Instruction:
    if forced_solution is not None:
        solution_name = forced_solution
    else:
        solution = library.find_best(
            problem,
            include_transform_cost=options.include_transform_cost,
            native_layout_only=options.native_layout_only)
        solution_name = solution.name
    return Instruction(index, node.name, InstrKind.MIOPEN_PRIMITIVE,
                       problem=problem, solution_name=solution_name)


def _conv_problem(graph: Graph, node: Node, batch: int) -> ConvProblem:
    x = graph.desc(node.inputs[0])
    n, c, h, w = x.dims
    return ConvProblem(
        batch=n * batch,
        in_channels=c, height=h, width=w,
        out_channels=int(node.attr("out_channels")),
        kernel=_pair(node.attr("kernel_shape", 1)),
        stride=_pair(node.attr("strides", 1)),
        pad=_pair(node.attr("pads", 0)),
        dilation=_pair(node.attr("dilations", 1)),
        group=int(node.attr("group", 1)),
        dtype=x.dtype, layout=x.layout,
    )


def _pool_problem(graph: Graph, node: Node, batch: int) -> PoolProblem:
    x = graph.desc(node.inputs[0])
    n, c, h, w = x.dims
    if node.op == "GlobalAveragePool":
        kernel = (h, w)
        stride = (1, 1)
        pad = (0, 0)
        mode = "avg"
    else:
        kernel = _pair(node.attr("kernel_shape", 2))
        stride = _pair(node.attr("strides", kernel))
        pad = _pair(node.attr("pads", 0))
        mode = "max" if node.op == "MaxPool" else "avg"
    return PoolProblem(batch=n * batch, channels=c, height=h, width=w,
                       kernel=kernel, stride=stride, pad=pad, mode=mode,
                       dtype=x.dtype, layout=x.layout)


def _gemm_problem(graph: Graph, node: Node, batch: int) -> GemmProblem:
    if node.op == "Gemm":
        x = graph.desc(node.inputs[0])
        w = graph.desc(node.inputs[1])
        return GemmProblem(m=x.dims[0] * batch, n=w.dims[1], k=x.dims[1],
                           dtype=x.dtype, layout=x.layout)
    a = graph.desc(node.inputs[0])
    b = graph.desc(node.inputs[1])
    leading = 1
    for dim in a.dims[:-2]:
        leading *= dim
    return GemmProblem(m=a.dims[-2], n=b.dims[-1], k=a.dims[-1],
                       batch=leading * batch, dtype=a.dtype, layout=a.layout)
