"""Lowered instructions: what the serving schemes execute.

Each instruction is one unit of online work.  Three executable kinds
exist, mirroring which library serves the layer:

- ``MIOPEN_PRIMITIVE``: conv/pool/activation problems with a solution
  determined at lowering time -- the layers PASK can proactively load and
  selectively reuse.
- ``BLAS_GEMM``: GEMM/MatMul served inside the BLAS library (reactive
  loading, outside PASK's control).
- ``ENGINE_KERNEL``: per-shape JIT-compiled fused elementwise / data
  movement kernels owned by the engine itself (proactively loadable, but
  never reusable: they are exact).

``NOOP`` instructions (reshape & friends) cost only parse time.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.gpu.codeobject import CodeObjectFile
from repro.primitive.problem import Problem

__all__ = ["InstrKind", "EngineKernel", "Instruction"]


class InstrKind(enum.Enum):
    """Which execution path an instruction takes."""

    MIOPEN_PRIMITIVE = "miopen"
    BLAS_GEMM = "blas"
    ENGINE_KERNEL = "engine"
    NOOP = "noop"


@dataclass(frozen=True)
class EngineKernel:
    """A per-shape JIT-compiled engine kernel (fused elementwise etc.)."""

    op: str
    shape_sig: str
    flops: float
    bytes_moved: int

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError(f"negative work in {self}")

    @property
    def name(self) -> str:
        """Unique kernel symbol name (op @ shape signature)."""
        return f"mgx_{self.op.lower()}@{self.shape_sig}"

    @property
    def code_object(self) -> CodeObjectFile:
        """The kernel's compiled binary (deterministic size)."""
        digest = hashlib.blake2b(self.name.encode(), digest_size=8).digest()
        fraction = int.from_bytes(digest, "big") / 2**64
        size = int(90_000 + 140_000 * fraction)
        return CodeObjectFile.single_kernel(self.name, size)

    def scaled(self, batch: int) -> "EngineKernel":
        """The same kernel at a different batch size."""
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return EngineKernel(self.op, f"{self.shape_sig}_b{batch}",
                            self.flops * batch, self.bytes_moved * batch)


# Parse (de-serialization) cost per instruction, by kind (seconds).
# Primitive instructions carry tensor descriptors, solution records and
# weight references, so they dominate; calibrated so that model parsing
# is several times faster than code loading per layer (Sec. III-A) while
# still a visible share of the cold start (Fig. 1(b)).
_PARSE_COST = {
    InstrKind.MIOPEN_PRIMITIVE: 100e-6,
    InstrKind.BLAS_GEMM: 60e-6,
    InstrKind.ENGINE_KERNEL: 40e-6,
    InstrKind.NOOP: 15e-6,
}


@dataclass(frozen=True)
class Instruction:
    """One lowered instruction of a program."""

    index: int
    name: str
    kind: InstrKind
    problem: Optional[Problem] = None          # MIOPEN / BLAS
    solution_name: Optional[str] = None        # MIOPEN: determined offline
    engine_kernel: Optional[EngineKernel] = None

    def __post_init__(self) -> None:
        if self.kind is InstrKind.MIOPEN_PRIMITIVE:
            if self.problem is None or self.solution_name is None:
                raise ValueError(
                    f"{self.name}: MIOpen instruction needs problem+solution")
        elif self.kind is InstrKind.BLAS_GEMM:
            if self.problem is None:
                raise ValueError(f"{self.name}: BLAS instruction needs problem")
        elif self.kind is InstrKind.ENGINE_KERNEL:
            if self.engine_kernel is None:
                raise ValueError(f"{self.name}: engine instruction needs kernel")

    @property
    def parse_cost_s(self) -> float:
        """Simulated cost of de-serializing this instruction at runtime."""
        return _PARSE_COST[self.kind]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"#{self.index} {self.name} [{self.kind.value}]"
