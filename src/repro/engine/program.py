"""Lowered programs: the engine's serialized execution artifact."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.engine.instruction import Instruction, InstrKind
from repro.gpu.codeobject import CodeObjectFile, KernelSymbol
from repro.primitive.problem import Problem

__all__ = ["Program"]


@dataclass(frozen=True)
class Program:
    """An ordered sequence of lowered instructions plus metadata.

    This is the ``.mgx``-file equivalent: the artifact the model registry
    stores offline and the serving schemes parse, load and execute online.
    """

    name: str
    instructions: Tuple[Instruction, ...]
    batch: int = 1
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"program {self.name!r} has no instructions")
        for position, instr in enumerate(self.instructions):
            if instr.index != position:
                raise ValueError(
                    f"instruction {instr.name!r} has index {instr.index}, "
                    f"expected {position}")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def of_kind(self, kind: InstrKind) -> List[Instruction]:
        """Instructions of one kind, in program order."""
        return [i for i in self.instructions if i.kind is kind]

    @property
    def primitive_instructions(self) -> List[Instruction]:
        """The MIOpen-served instructions (PASK's domain)."""
        return self.of_kind(InstrKind.MIOPEN_PRIMITIVE)

    @property
    def distinct_primitive_problems(self) -> Set[Problem]:
        """Unique primitive problems -- Table I's '# Primitive Layers'
        counts the distinct convolution problems."""
        return {i.problem for i in self.primitive_instructions}

    @property
    def distinct_conv_problems(self) -> Set[Problem]:
        """Unique convolution problems (the Table I metric)."""
        from repro.primitive.problem import ConvProblem
        return {p for p in self.distinct_primitive_problems
                if isinstance(p, ConvProblem)}

    @property
    def engine_bundle(self):
        """The per-model JIT bundle holding all engine kernels.

        The engine compiles its fused elementwise/data-movement kernels
        into one code object embedded in the lowered model file, so a
        model pays a single load for all of them.  Returns None when the
        program has no engine kernels.  Deterministic, so it is recomputed
        rather than serialized.
        """
        names = sorted({i.engine_kernel.name
                        for i in self.of_kind(InstrKind.ENGINE_KERNEL)})
        if not names:
            return None
        symbols = tuple(KernelSymbol(name) for name in names)
        size = 30_000 + 8_000 * len(symbols)
        return CodeObjectFile(f"mgx_jit_{self.name}@b{self.batch}", size,
                              symbols)

    @property
    def total_parse_cost_s(self) -> float:
        """Summed de-serialization cost of all instructions."""
        return sum(i.parse_cost_s for i in self.instructions)

    def stats(self) -> Dict[str, Any]:
        """Summary counters used by reports and tests."""
        per_kind = {kind: 0 for kind in InstrKind}
        for instr in self.instructions:
            per_kind[instr.kind] += 1
        return {
            "name": self.name,
            "batch": self.batch,
            "instructions": len(self.instructions),
            "per_kind": {k.value: v for k, v in per_kind.items()},
            "distinct_primitive_problems": len(self.distinct_primitive_problems),
            "distinct_conv_problems": len(self.distinct_conv_problems),
        }

    def __repr__(self) -> str:
        return (f"<Program {self.name!r} n={len(self.instructions)} "
                f"batch={self.batch}>")
