"""Model registry: stores lowered models for online serving.

Serving frameworks "maintain a model registry to store the lowered model
and directly load them when the request comes to avoid redundant
lowering" (Sec. II-A).  The registry stores the serialized form; loading
returns a parsed :class:`Program` (the per-instruction parse cost is
billed online by the executors, not here).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.lowering import LoweringOptions, lower
from repro.engine.program import Program
from repro.engine.serialize import deserialize_program, serialize_program
from repro.graph import Graph
from repro.primitive.library import MIOpenLibrary

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """In-memory store of serialized lowered models, keyed by name."""

    def __init__(self, library: MIOpenLibrary) -> None:
        self.library = library
        self._store: Dict[str, str] = {}

    def compile_and_register(self, graph: Graph, key: Optional[str] = None,
                             options: Optional[LoweringOptions] = None) -> str:
        """Offline preparation: lower ``graph`` and store the result."""
        program = lower(graph, self.library, options)
        key = key or program.name
        self._store[key] = serialize_program(program)
        return key

    def register(self, program: Program, key: Optional[str] = None) -> str:
        """Store an already-lowered program."""
        key = key or program.name
        self._store[key] = serialize_program(program)
        return key

    def load(self, key: str) -> Program:
        """Fetch and parse a registered model."""
        try:
            payload = self._store[key]
        except KeyError:
            known = ", ".join(sorted(self._store)) or "<empty>"
            raise KeyError(f"model {key!r} not registered; known: {known}") \
                from None
        return deserialize_program(payload)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def keys(self) -> List[str]:
        """Registered model names."""
        return sorted(self._store)
