"""Common subexpression elimination."""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.engine.passes.base import Pass
from repro.graph import Graph, Node

__all__ = ["CommonSubexpressionElimination"]


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class CommonSubexpressionElimination(Pass):
    """Merge structurally identical nodes operating on identical inputs."""

    name = "common-subexpression-elimination"

    def run(self, graph: Graph) -> Graph:
        """Merge duplicate nodes, remapping downstream inputs."""
        rename: Dict[str, str] = {}
        seen: Dict[Tuple, Node] = {}
        kept = []
        changed = False
        for node in graph.nodes:
            inputs = tuple(rename.get(t, t) for t in node.inputs)
            key = (node.op, inputs, _hashable(node.attrs))
            previous = seen.get(key)
            if previous is not None and not any(
                    out in graph.outputs for out in node.outputs):
                for old, new in zip(node.outputs, previous.outputs):
                    rename[old] = new
                changed = True
                continue
            if inputs != node.inputs:
                node = Node(node.name, node.op, inputs, node.outputs,
                            dict(node.attrs))
                changed = True
            seen.setdefault(key, node)
            kept.append(node)
        if not changed:
            return graph
        return graph.rebuild(kept)
