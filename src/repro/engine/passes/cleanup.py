"""Identity / Dropout elimination."""

from __future__ import annotations

from typing import Dict

from repro.engine.passes.base import Pass
from repro.graph import Graph, Node

__all__ = ["IdentityElimination"]

_PASS_THROUGH_OPS = frozenset({"Identity", "Dropout"})


class IdentityElimination(Pass):
    """Drop inference-time no-ops, rewiring consumers to their input."""

    name = "identity-elimination"

    def run(self, graph: Graph) -> Graph:
        """Drop pass-through nodes and rewire their consumers."""
        rename: Dict[str, str] = {}
        kept = []
        changed = False
        for node in graph.nodes:
            inputs = tuple(rename.get(t, t) for t in node.inputs)
            if (node.op in _PASS_THROUGH_OPS
                    and not any(out in graph.outputs for out in node.outputs)):
                rename[node.outputs[0]] = inputs[0]
                changed = True
                continue
            if inputs != node.inputs:
                node = Node(node.name, node.op, inputs, node.outputs,
                            dict(node.attrs))
                changed = True
            kept.append(node)
        if not changed:
            return graph
        return graph.rebuild(kept)
