"""Graph-level optimization passes.

The engine applies "a series of hardware-independent graph-level
optimization passes like dead code elimination and common subexpression
elimination" (Sec. II-A) before lowering.  The default pipeline is:

1. identity elimination (drop Identity/Dropout pass-throughs),
2. common subexpression elimination,
3. dead code elimination,
4. conv + batchnorm + activation fusion (MIOpen fused epilogues).
"""

from typing import List

from repro.engine.passes.base import Pass
from repro.engine.passes.cleanup import IdentityElimination
from repro.engine.passes.cse import CommonSubexpressionElimination
from repro.engine.passes.dce import DeadCodeElimination
from repro.engine.passes.fusion import ConvFusion
from repro.graph import Graph

__all__ = [
    "CommonSubexpressionElimination",
    "ConvFusion",
    "DeadCodeElimination",
    "IdentityElimination",
    "Pass",
    "default_passes",
    "run_passes",
]


def default_passes() -> List[Pass]:
    """The standard optimization pipeline, in application order."""
    return [
        IdentityElimination(),
        CommonSubexpressionElimination(),
        DeadCodeElimination(),
        ConvFusion(),
    ]


def run_passes(graph: Graph, passes=None) -> Graph:
    """Apply ``passes`` (default pipeline if None) left to right."""
    for opt in (default_passes() if passes is None else passes):
        graph = opt.run(graph)
    return graph
