"""Dead code elimination."""

from __future__ import annotations

from typing import Set

from repro.engine.passes.base import Pass
from repro.graph import Graph

__all__ = ["DeadCodeElimination"]


class DeadCodeElimination(Pass):
    """Remove nodes whose results cannot reach any graph output."""

    name = "dead-code-elimination"

    def run(self, graph: Graph) -> Graph:
        """Drop nodes that cannot reach any graph output."""
        live: Set[str] = set(graph.outputs)
        kept = []
        for node in reversed(graph.nodes):
            if any(out in live for out in node.outputs):
                kept.append(node)
                live.update(node.inputs)
        kept.reverse()
        if len(kept) == len(graph.nodes):
            return graph
        return graph.rebuild(kept)
