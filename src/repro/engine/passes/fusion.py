"""Conv + BatchNorm + activation fusion.

MIOpen executes batch-norm folding and activation epilogues inside the
convolution kernel; the engine therefore fuses ``Conv -> BatchNorm ->
<activation>`` chains into one Conv node carrying ``fused_batchnorm`` /
``fused_activation`` attributes.  Fusion requires the intermediate tensor
to have a single consumer and not be a graph output.
"""

from __future__ import annotations

from repro.engine.passes.base import Pass
from repro.graph import Graph, Node

__all__ = ["ConvFusion", "FUSABLE_ACTIVATIONS"]

FUSABLE_ACTIVATIONS = frozenset({
    "Relu", "LeakyRelu", "Clip", "Sigmoid", "Tanh", "Silu", "HardSwish",
    "Elu",
})


class ConvFusion(Pass):
    """Fuse BatchNorm and activation epilogues into preceding Convs."""

    name = "conv-fusion"

    def run(self, graph: Graph) -> Graph:
        """Fuse Conv -> BatchNorm -> activation chains in place."""
        consumed_by = {}
        for node in graph.nodes:
            for tensor in node.inputs:
                consumed_by.setdefault(tensor, []).append(node)

        def sole_consumer(tensor: str):
            consumers = consumed_by.get(tensor, [])
            if len(consumers) == 1 and tensor not in graph.outputs:
                return consumers[0]
            return None

        fused_away = set()
        replacements = {}
        for node in graph.nodes:
            if node.op != "Conv" or node.name in fused_away:
                continue
            attrs = dict(node.attrs)
            tail = node
            follower = sole_consumer(tail.outputs[0])
            if (follower is not None
                    and follower.op == "BatchNormalization"
                    and "fused_batchnorm" not in attrs):
                attrs["fused_batchnorm"] = True
                fused_away.add(follower.name)
                tail = follower
                follower = sole_consumer(tail.outputs[0])
            if (follower is not None
                    and follower.op in FUSABLE_ACTIVATIONS
                    and "fused_activation" not in attrs):
                attrs["fused_activation"] = follower.op.lower()
                fused_away.add(follower.name)
                tail = follower
            if tail is not node:
                replacements[node.name] = Node(
                    node.name, "Conv", node.inputs, tail.outputs, attrs)

        if not replacements:
            return graph
        kept = []
        for node in graph.nodes:
            if node.name in fused_away:
                continue
            kept.append(replacements.get(node.name, node))
        return graph.rebuild(kept)
