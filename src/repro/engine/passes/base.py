"""Optimization pass interface."""

from __future__ import annotations

import abc

from repro.graph import Graph

__all__ = ["Pass"]


class Pass(abc.ABC):
    """A graph-to-graph transformation.

    Passes must return a *valid* graph (``rebuild`` re-validates); they
    may return the input graph unchanged when nothing applies.
    """

    name: str = "pass"

    @abc.abstractmethod
    def run(self, graph: Graph) -> Graph:
        """Apply the transformation."""

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"
