"""Sharded optimistic-parallel fleet replay (time-warp semantics).

:func:`run_fleet_sharded` partitions a :class:`FleetSimulator` replay
by region across the runner's process pool and merges the shard
outputs so the result is **byte-identical** to the serial
``FleetSimulator.run`` — same latencies, counters, fault dictionaries,
trace records and tenant accounting (equivalence-pinned by
``tests/test_fleet_parallel.py`` and the ``repro fleet
--verify-serial`` CI gate).

The only cross-region coupling in a fleet replay is the *routing
decision*: ``idle_tick`` / ``observe_arrival`` / shedding / serving all
mutate the routed region alone.  That observation yields three
execution modes, picked automatically:

- **delegated** — a single-cluster fleet takes the existing delegation
  path untouched (cluster fast-forward included).
- **static** — routing that never reads region state (``single``,
  ``round-robin``, or a lone routable region) is precomputed exactly
  from the drain windows.  Every region then replays its own
  sub-stream in one shot; regions under ``fixed`` / ``scale-to-zero``
  autoscaling with no fault plan ride an analytic min-heap fast path
  (the fleet twin of the cluster fast-forward, warm floor / restore
  billing / shedding included).  Zero rollbacks by construction — this
  is the 1e7–1e8-request throughput path.
- **time-warp** — state-coupled routing (``least-queue`` /
  ``warm-first`` across >= 2 routable regions).  Shards simulate
  optimistically under a guessed assignment while recording the
  observation vector the router would have queried (predicted wait +
  warm-idle flag per arrival); the coordinator replays the router over
  those observations, verifies the longest correct prefix, rolls every
  shard back to its newest checkpoint at or before the first
  divergence (straggler message), and re-runs the tail under the
  corrected guess.  The verified prefix grows strictly every round, so
  the loop terminates; in a warm steady state one round usually
  suffices.

Workers regenerate the arrival stream from a :class:`TraceSpec` when
one is supplied, so scaling to 1e8 requests never ships hundreds of
megabytes of arrivals through pickles.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from heapq import heappop, heappush, heapreplace
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

from repro.fleet.autoscale import AutoscalePolicy
from repro.fleet.fleet import (FleetConfig, FleetSimulator, FleetStats,
                               FleetTrace, RegionConfig, RegionStats,
                               TenantStats, _QueueDepthTracker,
                               _RegionState, _emit_prewarm, _emit_route,
                               _emit_scale_down, _emit_scale_up,
                               _emit_shed, _emit_unroutable,
                               _feed_region_metrics, _feed_tenant_metrics,
                               _server_for)
from repro.fleet.routing import RouterState, RoutingPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitors import SLOMonitorSet, emit_alert_spans
from repro.serving.cluster import ClusterConfig, ClusterSimulator, _Instance
from repro.serving.requests import RequestTrace, poisson_trace
from repro.sim.trace import TraceRecorder

__all__ = ["TraceSpec", "ShardReport", "run_fleet_sharded",
           "equivalence_problems"]

DEFAULT_CHECKPOINT_EVERY = 2048

# Per-arrival outcome codes a shard reports back for tenant accounting.
# The detailed completed codes (cold / restore) let the coordinator
# replay SLO monitor observations without re-deriving billing; plain
# _COMPLETED remains what the undetailed stepping path emits.
_COMPLETED, _FAILED, _SHED = 0, 1, 2
_COMPLETED_COLD, _COMPLETED_RESTORE = 3, 4

# Control-plane event codes a shard logs (as ``(k, code, a, b)`` tuples)
# when the coordinator needs to replay decision spans.  Only logged when
# spans are on — the off path appends nothing.
_EV_SCALE_DOWN, _EV_SCALE_UP, _EV_PREWARM, _EV_SHED = 0, 1, 2, 3


@dataclass(frozen=True)
class TraceSpec:
    """Seeded recipe for a single-tenant Poisson :class:`FleetTrace`.

    Shipping a spec instead of the materialized arrivals keeps worker
    payloads O(1) in the request count — each shard regenerates the
    identical trace locally (Poisson generation is seeded).
    """

    model: str = "res"
    rate_hz: float = 200.0
    duration_s: float = 60.0
    seed: int = 0
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def materialize(self) -> FleetTrace:
        return FleetTrace.from_request_trace(
            poisson_trace(self.model, self.rate_hz, self.duration_s,
                          seed=self.seed),
            tenant=self.tenant)


@dataclass
class ShardReport:
    """How a sharded replay executed (the results are in the stats)."""

    mode: str    # "delegated" | "static" | "time-warp" | "serial" (packs)
    jobs: int
    shards: int                # regions replayed as parallel shards
    rounds: int = 0            # optimistic rounds (time-warp only)
    rollbacks: int = 0         # shard re-simulations after a divergence
    analytic_served: Dict[str, int] = field(default_factory=dict)
    region_wall_s: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    # --- flight telemetry (zeroed outside time-warp mode, so profile
    # output stays stable to parse) --------------------------------
    max_rollback_depth: int = 0   # deepest per-shard re-simulation
    resimulated: int = 0          # arrivals re-simulated across rollbacks
    round_wall_s: List[float] = field(default_factory=list)

    @property
    def analytic_total(self) -> int:
        """Requests served by the analytic heap fast path, fleet-wide."""
        return sum(self.analytic_served.values())


# ----------------------------------------------------------------------
# Assignment encodings
# ----------------------------------------------------------------------
# An assignment maps every global arrival index to the region that
# serves it (-1: unroutable, shed by the coordinator).  Encodings keep
# the common cases O(1): ("constant", i), ("modulo", n_regions), or
# ("explicit", signed-byte array).

def _membership(assignment):
    """``k -> region code`` accessor for an assignment encoding."""
    kind, value = assignment
    if kind == "constant":
        return lambda k: value
    if kind == "modulo":
        return lambda k: k % value
    codes = array("b")
    codes.frombytes(value)
    return codes.__getitem__

def _assigned(assignment, region_index: int, n: int):
    """The global arrival indices owned by ``region_index``, in order."""
    kind, value = assignment
    if kind == "constant":
        return range(n) if value == region_index else range(0)
    if kind == "modulo":
        return range(region_index, n, value)
    codes = array("b")
    codes.frombytes(value)
    return [k for k in range(n) if codes[k] == region_index]


class _DrainProxy:
    """Region stand-in exposing only the drain-window query — the part
    of the routing surface that is a pure function of the config."""

    __slots__ = ("windows",)

    def __init__(self, windows) -> None:
        self.windows = windows

    def routable(self, now: float) -> bool:
        return not any(start <= now < end for start, end in self.windows)


class _ObsProxy(_DrainProxy):
    """Region stand-in answering router queries from a shard's recorded
    observation vector (indexed by the coordinator via ``k``)."""

    __slots__ = ("waits", "warms", "k")

    def __init__(self, windows, waits, warms) -> None:
        super().__init__(windows)
        self.waits = waits
        self.warms = warms
        self.k = 0

    def predicted_wait(self, now: float) -> float:
        return self.waits[self.k]

    def has_warm_idle(self, now: float) -> bool:
        return bool(self.warms[self.k])


def _static_assignment(config: FleetConfig, trace: FleetTrace):
    """The exact assignment when routing never reads region state.

    Returns an encoding, or ``None`` when the policy is state-coupled
    (``least-queue`` / ``warm-first`` with >= 2 routable regions at
    some arrival) and the time-warp rounds must resolve it.
    """
    kind = config.routing.kind
    n_regions = len(config.regions)
    windows = [region.drain_windows for region in config.regions]
    state_free = kind in ("single", "round-robin") or n_regions == 1
    if not any(windows):
        if kind == "single" or n_regions == 1:
            return ("constant", 0)
        if kind == "round-robin":
            return ("modulo", n_regions)
        return None
    proxies = [_DrainProxy(w) for w in windows]
    router = RouterState(config.routing)
    codes = array("b")
    for t in trace.arrivals:
        if not state_free:
            # least-queue / warm-first stay static only through the
            # router's lone-candidate shortcut.
            if sum(p.routable(t) for p in proxies) > 1:
                return None
        choice = router.choose(proxies, t)
        codes.append(-1 if choice is None else choice)
    return ("explicit", codes.tobytes())


# ----------------------------------------------------------------------
# Shard workers (module-level: they cross the process boundary)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Checkpoint:
    """Rollback point: everything a region's evolution depends on."""

    index: int                 # state after arrivals [0, index)
    instances: Tuple[Tuple[float, float, bool], ...]
    cap: int
    rate: float
    last_arrival: Optional[float]
    last_prewarm: Optional[float]
    ever_warm: bool
    draws: Optional[Dict[str, int]]


@dataclass(frozen=True)
class _RegionJob:
    """One shard's worth of work: a region plus its assigned arrivals."""

    region_index: int
    config: RegionConfig
    policy: AutoscalePolicy
    shed_wait_s: Optional[float]
    retention: Optional[str]
    ring: int
    trace: Optional[FleetTrace]      # explicit arrivals, or ...
    spec: Optional[TraceSpec]        # ... regenerated in-worker
    assignment: tuple
    checkpoint_every: int = 0        # 0: no checkpoints (final pass)
    restart: Optional[_Checkpoint] = None
    # --- telemetry knobs (final pass only) ----------------------------
    collect_metrics: bool = False    # feed a fresh registry, ship a dump
    want_events: bool = False        # log control-plane event tuples
    detail: bool = False             # detailed completed codes (SLO)
    routing_kind: str = "single"     # the fleet_routed_total policy label


@dataclass
class _RegionResult:
    """A shard's final-pass output, ready for the deterministic merge."""

    stats: RegionStats
    trace_state: Optional[dict]
    outcomes: bytes
    analytic: int
    wall_s: float
    metrics: Optional[dict] = None   # per-shard MetricsRegistry dump
    events: Optional[list] = None    # (k, code, a, b) control-plane log


def _job_trace(job: _RegionJob) -> FleetTrace:
    return job.trace if job.trace is not None else job.spec.materialize()


def _build_state(job: _RegionJob, trace: FleetTrace) -> _RegionState:
    region = job.config
    sim = ClusterSimulator(
        _server_for(region.device, None),
        ClusterConfig(scheme=region.scheme,
                      max_instances=region.max_instances,
                      keep_alive_s=region.keep_alive_s))
    return _RegionState(region, sim, job.policy, trace.model, trace.batch,
                        job.retention, job.ring)


def _snapshot(state: _RegionState, index: int) -> _Checkpoint:
    scaler = state.scaler
    return _Checkpoint(
        index=index,
        instances=tuple((i.busy_until, i.last_used, i.warm)
                        for i in state.instances),
        cap=scaler.cap,
        rate=scaler._rate,
        last_arrival=scaler._last_arrival,
        last_prewarm=scaler._last_prewarm,
        ever_warm=state.ever_warm,
        draws=(dict(state.injector._draws)
               if state.injector is not None else None))


def _restore(state: _RegionState, checkpoint: _Checkpoint) -> None:
    state.instances[:] = [
        _Instance(busy_until=busy, last_used=last, warm=warm)
        for busy, last, warm in checkpoint.instances]
    scaler = state.scaler
    scaler.cap = checkpoint.cap
    scaler._rate = checkpoint.rate
    scaler._last_arrival = checkpoint.last_arrival
    scaler._last_prewarm = checkpoint.last_prewarm
    state.ever_warm = checkpoint.ever_warm
    if state.injector is not None:
        state.injector._draws.clear()
        state.injector._draws.update(checkpoint.draws)


def _observe_region(job: _RegionJob):
    """Optimistic round: simulate under the guessed assignment and
    record the observation vector the router would have queried.

    Stats collected here are scratch — only the observations, the
    checkpoints and the (rolled-back) state evolution matter.  The
    queries are evaluated exactly where the serial loop evaluates them:
    after the region's own idle tick, before any serve at that arrival.
    """
    trace = _job_trace(job)
    state = _build_state(job, trace)
    start = 0
    if job.restart is not None:
        _restore(state, job.restart)
        start = job.restart.index
    arrivals = trace.arrivals
    mine = job.region_index
    member = _membership(job.assignment)
    shed_wait = job.shed_wait_s
    scaler = state.scaler
    every = job.checkpoint_every
    waits = array("d")
    warms = bytearray()
    checkpoints: List[_Checkpoint] = []
    for k in range(start, len(arrivals)):
        if every and k > start and k % every == 0:
            checkpoints.append(_snapshot(state, k))
        t = arrivals[k]
        scaler.idle_tick(state, t)
        waits.append(state.predicted_wait(t))
        warms.append(1 if state.has_warm_idle(t) else 0)
        if member(k) != mine:
            continue
        if shed_wait is not None and state.predicted_wait(t) > shed_wait:
            continue  # shed: no state change
        extra = scaler.observe_arrival(state, t)
        if extra:
            state.prewarm(extra, t)
        state.serve(t)
    return start, waits.tobytes(), bytes(warms), checkpoints


def _serve_one(state: _RegionState, t: float, shed_wait: Optional[float],
               append) -> None:
    """Serial per-arrival sequence for the routed region: shed check,
    autoscaler observation, pre-warm, serve — in that order."""
    if shed_wait is not None and state.predicted_wait(t) > shed_wait:
        state.stats.shed += 1
        append(_SHED)
        return
    extra = state.scaler.observe_arrival(state, t)
    if extra:
        state.prewarm(extra, t)
    append(_COMPLETED if state.serve(t) else _FAILED)


def _serve_one_obs(state: _RegionState, t: float,
                   shed_wait: Optional[float], append, k: int,
                   events: Optional[list]) -> None:
    """:func:`_serve_one` with telemetry: detailed completed codes and
    (when ``events`` is a list) the control-plane deltas the
    coordinator replays into decision spans.  Deltas are detected
    exactly the way the serial loop detects them, and the values keep
    their Python types so replayed span attrs compare byte-equal."""
    stats = state.stats
    if shed_wait is not None:
        wait = state.predicted_wait(t)
        if wait > shed_wait:
            stats.shed += 1
            append(_SHED)
            if events is not None:
                events.append((k, _EV_SHED, wait, 0))
            return
    if events is None:
        extra = state.scaler.observe_arrival(state, t)
        if extra:
            state.prewarm(extra, t)
    else:
        ups = stats.scale_ups
        extra = state.scaler.observe_arrival(state, t)
        if stats.scale_ups > ups:
            events.append((k, _EV_SCALE_UP, stats.scale_ups - ups,
                           state.scaler.cap))
        if extra:
            spawned = stats.prewarm_spawns
            restored = stats.prewarm_restores
            state.prewarm(extra, t)
            spawned = stats.prewarm_spawns - spawned
            if spawned:
                events.append((k, _EV_PREWARM, spawned,
                               stats.prewarm_restores - restored))
    colds = stats.cold_starts
    restores = stats.restores
    if state.serve(t):
        if stats.cold_starts > colds:
            append(_COMPLETED_COLD)
        elif stats.restores > restores:
            append(_COMPLETED_RESTORE)
        else:
            append(_COMPLETED)
    else:
        append(_FAILED)


def _serve_stepping(state: _RegionState, arrivals, job: _RegionJob,
                    outcomes, events: Optional[list] = None) -> None:
    mine = job.region_index
    shed_wait = job.shed_wait_s
    append = outcomes.append
    obs = events is not None or job.detail
    if state.policy.kind == "reactive":
        # Reactive capacity breathes on *global* quiet time: the scaler
        # ticks at every fleet arrival, routed here or not.
        member = _membership(job.assignment)
        scaler = state.scaler
        stats = state.stats
        for k, t in enumerate(arrivals):
            if events is None:
                scaler.idle_tick(state, t)
            else:
                downs = stats.scale_downs
                scaler.idle_tick(state, t)
                if stats.scale_downs > downs:
                    events.append((k, _EV_SCALE_DOWN,
                                   stats.scale_downs - downs, scaler.cap))
            if member(k) == mine:
                if obs:
                    _serve_one_obs(state, t, shed_wait, append, k, events)
                else:
                    _serve_one(state, t, shed_wait, append)
    elif obs:
        for k in _assigned(job.assignment, mine, len(arrivals)):
            _serve_one_obs(state, arrivals[k], shed_wait, append, k,
                           events)
    else:
        for k in _assigned(job.assignment, mine, len(arrivals)):
            _serve_one(state, arrivals[k], shed_wait, append)


def _serve_analytic(state: _RegionState, arrivals, indices,
                    shed_wait: Optional[float], outcomes,
                    events: Optional[list] = None) -> int:
    """Heap-analytic sub-stream replay: the fleet twin of the cluster
    fast-forward.

    Eligible when the region's evolution is closed-form: no fault plan
    (every serve succeeds), no recorder, and a ``fixed`` /
    ``scale-to-zero`` autoscaler (constant cap, inert ticks, the only
    observable scaler effect is the keep-alive override already folded
    into ``state.keep_alive``).  Instances live in a min-heap of finish
    times — for all-warm pools ``busy_until == last_used``, so heap
    order is both the reclaim order and the pick order.  Reclaims stop
    at the warm floor (keeping the newest-expired instances, exactly
    the ``_live`` backfill), spawns bill a cold start or — under
    ``checkpoint_restore`` once anything ran — a restore, and the shed
    predicate mirrors ``predicted_wait`` bit for bit.
    """
    pool: List[float] = []
    size = 0
    cap = state.scaler.cap
    floor = min(state.policy.min_instances, cap)
    keep_alive = state.keep_alive
    warm_time = state.warm
    cold_time = state.cold
    restore_cost = state.restore_cost
    restore_service = restore_cost + warm_time
    use_restore = state.policy.checkpoint_restore
    ever_warm = state.ever_warm
    stats = state.stats
    latencies = stats.latencies
    queue_waits = stats.queue_waits
    tracker = state.queue_depth
    append = outcomes.append
    served = 0
    for k in indices:
        t = arrivals[k]
        while size > floor and t - pool[0] > keep_alive:
            heappop(pool)
            size -= 1
        if shed_wait is not None:
            if (size and pool[0] <= t) or size < cap:
                wait = 0.0
            else:
                front = pool[0]
                wait = front - t if front > t else 0.0
            if wait > shed_wait:
                stats.shed += 1
                append(_SHED)
                if events is not None:
                    events.append((k, _EV_SHED, wait, 0))
                continue
        if size and pool[0] <= t:
            # Warm hit on the longest-idle free instance (the root).
            start = t
            finish = t + warm_time
            heapreplace(pool, finish)
            stats.warm_hits += 1
            code = _COMPLETED
        elif size < cap:
            # Spawn: a fresh instance (busy since 0.0) serves cold, or
            # from a checkpoint once the region has ever been warm.
            start = t if t > 0.0 else 0.0
            if use_restore and ever_warm:
                finish = start + restore_service
                stats.restores += 1
                stats.restore_s += restore_cost
                code = _COMPLETED_RESTORE
            else:
                finish = start + cold_time
                stats.cold_starts += 1
                code = _COMPLETED_COLD
            heappush(pool, finish)
            size += 1
        else:
            # Queue on the earliest-free (warm) instance.
            busy = pool[0]
            start = busy if busy > t else t
            finish = start + warm_time
            heapreplace(pool, finish)
            stats.warm_hits += 1
            code = _COMPLETED
        ever_warm = True
        queue_waits.append(start - t)
        if tracker is not None:
            tracker.observe(t, start)
        latencies.append(finish - t)
        append(code)
        served += 1
    state.ever_warm = ever_warm
    return served


def _finalize_region(job: _RegionJob) -> _RegionResult:
    """Full-stats pass: replay the shard's sub-stream under the
    verified assignment, producing the exact serial RegionStats."""
    trace = _job_trace(job)
    state = _build_state(job, trace)
    if job.collect_metrics:
        state.queue_depth = _QueueDepthTracker()
    arrivals = trace.arrivals
    outcomes = array("b")
    events: Optional[list] = [] if job.want_events else None
    analytic = 0
    began = perf_counter()
    if (job.retention is None and state.injector is None
            and state.policy.kind in ("fixed", "scale-to-zero")):
        analytic = _serve_analytic(
            state, arrivals,
            _assigned(job.assignment, job.region_index, len(arrivals)),
            job.shed_wait_s, outcomes, events)
    else:
        _serve_stepping(state, arrivals, job, outcomes, events)
    wall = perf_counter() - began
    trace_state = (state.recorder.state_dict()
                   if state.recorder is not None else None)
    stats = state.stats
    stats.trace = None  # recorders travel as state dicts
    metrics_dump = None
    if job.collect_metrics:
        registry = MetricsRegistry()
        _feed_region_metrics(registry, stats, job.routing_kind,
                             state.queue_depth.peak)
        metrics_dump = registry.to_json()
    return _RegionResult(stats=stats, trace_state=trace_state,
                         outcomes=outcomes.tobytes(), analytic=analytic,
                         wall_s=wall, metrics=metrics_dump, events=events)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

def _converge_assignment(config: FleetConfig, trace: FleetTrace,
                         spec: Optional[TraceSpec],
                         policy: AutoscalePolicy, checkpoint_every: int,
                         pool, report: ShardReport, run_shards,
                         flight=None):
    """Time-warp rounds: iterate optimistic simulation + router replay
    until the guessed assignment is verified end to end."""
    n = len(trace)
    n_regions = len(config.regions)
    arrivals = trace.arrivals
    drains = [_DrainProxy(r.drain_windows) for r in config.regions]
    # Initial guess: spread routable arrivals round-robin — cheap, and
    # close to what both balanced policies converge to.
    seeder = RouterState(RoutingPolicy("round-robin"))
    guess = array("b")
    for t in arrivals:
        choice = seeder.choose(drains, t)
        guess.append(-1 if choice is None else choice)
    waits = [array("d", bytes(8 * n)) for _ in range(n_regions)]
    warms = [bytearray(n) for _ in range(n_regions)]
    proxies = [_ObsProxy(drains[i].windows, waits[i], warms[i])
               for i in range(n_regions)]
    checkpoints: List[List[_Checkpoint]] = [[] for _ in range(n_regions)]
    restarts: List[Optional[_Checkpoint]] = [None] * n_regions
    router = RouterState(config.routing)
    verified = 0
    while True:
        round_index = report.rounds
        report.rounds += 1
        round_began = perf_counter()
        starts = [restarts[i].index if restarts[i] is not None else 0
                  for i in range(n_regions)]
        verified_before = verified
        jobs = [_RegionJob(region_index=i, config=region, policy=policy,
                           shed_wait_s=config.shed_wait_s, retention=None,
                           ring=config.trace_ring,
                           trace=None if spec is not None else trace,
                           spec=spec,
                           assignment=("explicit", guess.tobytes()),
                           checkpoint_every=checkpoint_every,
                           restart=restarts[i])
                for i, region in enumerate(config.regions)]
        for i, (start, wait_bytes, warm_bytes, fresh) in enumerate(
                run_shards(_observe_region, jobs, pool=pool)):
            chunk = array("d")
            chunk.frombytes(wait_bytes)
            waits[i][start:] = chunk
            warms[i][start:] = warm_bytes
            checkpoints[i].extend(fresh)
        # Replay the router over the recorded observations.  Up to the
        # first divergence every shard processed exactly the serial
        # arrival set, so those observations — and the decisions they
        # imply — are the serial ones (induction on the prefix).
        mismatch = None
        for k in range(verified, n):
            for proxy in proxies:
                proxy.k = k
            choice = router.choose(proxies, arrivals[k])
            code = -1 if choice is None else choice
            if code != guess[k]:
                mismatch = k
                guess[k] = code
                break
        if mismatch is None:
            report.round_wall_s.append(perf_counter() - round_began)
            if flight is not None:
                flight.record_round(round_index, starts, n, None,
                                    verified_before)
            return ("explicit", guess.tobytes())
        verified = mismatch + 1
        # Re-guess the tail from the (stale but informed) observations.
        for k in range(verified, n):
            for proxy in proxies:
                proxy.k = k
            choice = router.choose(proxies, arrivals[k])
            guess[k] = -1 if choice is None else choice
        # Straggler message: roll every shard back to its newest
        # checkpoint at or before the divergence; later checkpoints
        # were built on a wrong assignment and are dropped.
        for i in range(n_regions):
            keep = [cp for cp in checkpoints[i] if cp.index <= mismatch]
            checkpoints[i] = keep
            restarts[i] = keep[-1] if keep else None
        report.rollbacks += n_regions
        restart_indices = [restarts[i].index if restarts[i] is not None
                           else 0 for i in range(n_regions)]
        for restart in restart_indices:
            depth = n - restart
            if depth > report.max_rollback_depth:
                report.max_rollback_depth = depth
            report.resimulated += depth
        report.round_wall_s.append(perf_counter() - round_began)
        if flight is not None:
            flight.record_round(round_index, starts, n, mismatch,
                                verified_before,
                                restarts=restart_indices)


def _merge(config: FleetConfig, trace: FleetTrace, assignment,
           results: List[_RegionResult], report: ShardReport,
           spans=None,
           monitors: Optional[SLOMonitorSet] = None) -> FleetStats:
    """Deterministic merge: rebuild the serial FleetStats from shard
    outputs, walking tenants in global arrival order.

    With ``spans`` the walk also replays the shards' recorded
    control-plane event tuples — interleaved with the route /
    unroutable decisions only the coordinator sees — in the exact
    order the serial loop emits them, so the sharded span list is
    byte-identical to the serial one.  With ``monitors`` it feeds the
    SLO monitor set from the detailed outcome codes and the merged
    latency stream (again the serial observation order)."""
    stats = FleetStats(offered=len(trace))
    for region, result in zip(config.regions, results):
        region_stats = result.stats
        if result.trace_state is not None:
            region_stats.trace = TraceRecorder.from_state(result.trace_state)
        stats.regions[region.name] = region_stats
        report.analytic_served[region.name] = result.analytic
        report.region_wall_s[region.name] = result.wall_s
    tenants = [TenantStats(name=name) for name in trace.tenant_names]
    kind, value = assignment
    n = len(trace)
    if (spans is None and monitors is None
            and len(tenants) == 1 and kind in ("constant", "modulo")
            and all(r.stats.failed == 0 and r.stats.shed == 0
                    for r in results)):
        # Fast merge: one tenant, nothing shed or failed, no unroutable
        # arrivals — per-region latency lists interleave by slice.
        tenant = tenants[0]
        tenant.offered = n
        if kind == "constant":
            tenant.latencies = list(results[value].stats.latencies)
        else:
            merged = [0.0] * n
            for i, result in enumerate(results):
                merged[i::value] = result.stats.latencies
            tenant.latencies = merged
    else:
        member = _membership(assignment)
        outcome_iters = [iter(r.outcomes) for r in results]
        latency_iters = [iter(r.stats.latencies) for r in results]
        arrivals = trace.arrivals
        names = [region.name for region in config.regions]
        routing_kind = config.routing.kind
        events = [r.events if r.events is not None else []
                  for r in results]
        positions = [0] * len(results)
        for k, tenant_index in enumerate(trace.tenants):
            tenant = tenants[tenant_index]
            tenant.offered += 1
            t = arrivals[k]
            if spans is not None:
                # Serial order: every region's idle tick fires before
                # the routing decision, in region order.
                for i, name in enumerate(names):
                    log, p = events[i], positions[i]
                    if (p < len(log) and log[p][0] == k
                            and log[p][1] == _EV_SCALE_DOWN):
                        _emit_scale_down(spans, name, t, log[p][2],
                                         log[p][3])
                        positions[i] = p + 1
            code = member(k)
            if code < 0:
                stats.shed_unroutable += 1
                tenant.shed += 1
                if spans is not None:
                    _emit_unroutable(spans, t, tenant.name)
                continue
            outcome = next(outcome_iters[code])
            if outcome == _SHED:
                tenant.shed += 1
                if spans is not None:
                    log, p = events[code], positions[code]
                    _emit_shed(spans, names[code], t, log[p][2])
                    positions[code] = p + 1
                continue
            if spans is not None:
                _emit_route(spans, names[code], t, routing_kind,
                            tenant.name)
                log, p = events[code], positions[code]
                if (p < len(log) and log[p][0] == k
                        and log[p][1] == _EV_SCALE_UP):
                    _emit_scale_up(spans, names[code], t, log[p][2],
                                   log[p][3])
                    p += 1
                if (p < len(log) and log[p][0] == k
                        and log[p][1] == _EV_PREWARM):
                    _emit_prewarm(spans, names[code], t, log[p][2],
                                  log[p][3])
                    p += 1
                positions[code] = p
            if outcome == _FAILED:
                tenant.failed += 1
                fresh = (monitors.observe_failed(t)
                         if monitors is not None else None)
            else:
                latency = next(latency_iters[code])
                tenant.latencies.append(latency)
                fresh = (monitors.observe_completed(
                    t, latency, outcome == _COMPLETED_COLD)
                    if monitors is not None else None)
            if spans is not None and fresh:
                emit_alert_spans(spans, fresh)
    for tenant in tenants:
        stats.tenants[tenant.name] = tenant
    return stats


def run_fleet_sharded(config: FleetConfig,
                      trace: Union[RequestTrace, FleetTrace, None] = None,
                      jobs: int = 1, *,
                      trace_spec: Optional[TraceSpec] = None,
                      checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                      metrics: Optional[MetricsRegistry] = None,
                      spans=None, slo=None, flight=None
                      ) -> Tuple[FleetStats, ShardReport]:
    """Replay ``trace`` sharded by region; byte-identical to serial.

    ``jobs <= 1`` runs every shard in-process through the identical
    code path (no pool), which is how the equivalence tests stay fast.
    ``trace_spec`` — when the trace is a seeded Poisson stream — lets
    workers regenerate arrivals locally instead of unpickling them; if
    both ``trace`` and ``trace_spec`` are given they must describe the
    same stream (the spec is purely a shipping optimization).
    ``checkpoint_every`` bounds time-warp rollback cost: shards
    snapshot their full evolution (instances, autoscaler cursors, fault
    draws) every that-many arrivals.

    Telemetry mirrors :class:`FleetSimulator`: ``metrics`` /
    ``spans`` / ``slo`` produce dumps, span lists and monitor
    summaries byte-identical to a serial run with the same sinks
    (workers feed fresh per-shard registries whose dumps merge
    associatively; control-plane spans replay on the coordinator).
    ``flight`` — a :class:`~repro.obs.flight.FlightRecorder` — captures
    the optimistic rounds / rollbacks for the Perfetto flight view.
    """
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    began = perf_counter()
    # Validates config combinations; also the delegated-path runner.
    simulator = FleetSimulator(config, metrics=metrics, spans=spans,
                               slo=slo)
    if trace is None:
        if trace_spec is None:
            raise ValueError("need a trace or a trace_spec")
        trace = trace_spec.materialize()
    if isinstance(trace, RequestTrace):
        trace = FleetTrace.from_request_trace(trace)
    jobs = max(1, jobs)
    region_names = [region.name for region in config.regions]
    if config.is_single_cluster and len(trace.tenant_names) == 1:
        if flight is not None:
            flight.begin("delegated", region_names, trace.arrivals)
            flight.record_final(len(trace))
        stats = simulator.run(trace)
        return stats, ShardReport(mode="delegated", jobs=jobs, shards=0,
                                  wall_s=perf_counter() - began)
    if config.packs is not None:
        # The pack hierarchy couples regions through the registry
        # fabric (cross-region failover reads every region's outage
        # windows), so the general path runs the serial simulator.
        # ``packs=None`` fleets shard exactly as before.
        stats = simulator.run(trace)
        return stats, ShardReport(mode="serial", jobs=jobs, shards=0,
                                  wall_s=perf_counter() - began)
    if spans is not None and config.trace_retention is not None:
        raise ValueError(
            "sharded span capture does not compose with trace retention "
            "(request-level recorders bind to the span recorder "
            "in-region); run the serial FleetSimulator for that combo")
    n_regions = len(config.regions)
    policy = (config.autoscale if config.autoscale is not None
              else AutoscalePolicy())
    monitors = SLOMonitorSet(slo) if slo is not None else None
    report = ShardReport(mode="static", jobs=jobs, shards=n_regions)
    assignment = _static_assignment(config, trace)
    from repro.runner.engine import run_shards  # local: avoids a cycle
    pool = None
    try:
        if jobs > 1 and n_regions > 1:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, n_regions))
        # Regenerating from the spec only pays off across a process
        # boundary; in-process shards share the materialized arrivals.
        ship_spec = trace_spec if pool is not None else None
        if assignment is None:
            report.mode = "time-warp"
            if flight is not None:
                flight.begin("time-warp", region_names, trace.arrivals)
            assignment = _converge_assignment(
                config, trace, ship_spec, policy, checkpoint_every,
                pool, report, run_shards, flight)
        elif flight is not None:
            flight.begin("static", region_names, trace.arrivals)
        final_jobs = [
            _RegionJob(region_index=i, config=region, policy=policy,
                       shed_wait_s=config.shed_wait_s,
                       retention=config.trace_retention,
                       ring=config.trace_ring,
                       trace=None if ship_spec is not None else trace,
                       spec=ship_spec, assignment=assignment,
                       collect_metrics=metrics is not None,
                       want_events=spans is not None,
                       detail=monitors is not None,
                       routing_kind=config.routing.kind)
            for i, region in enumerate(config.regions)]
        results = run_shards(_finalize_region, final_jobs, pool=pool)
        stats = _merge(config, trace, assignment, results, report,
                       spans=spans, monitors=monitors)
        if flight is not None:
            flight.record_final(len(trace))
        if monitors is not None:
            stats.monitors = monitors.summary()
        if metrics is not None:
            for result in results:
                if result.metrics:
                    metrics.merge(result.metrics)
            _feed_tenant_metrics(metrics, stats)
    finally:
        if pool is not None:
            pool.shutdown()
    report.wall_s = perf_counter() - began
    return stats, report


# ----------------------------------------------------------------------
# Equivalence audit (tests + the `repro fleet --verify-serial` CI gate)
# ----------------------------------------------------------------------

_REGION_FIELDS = ("cold_starts", "warm_hits", "restores", "restore_s",
                  "failed", "shed", "prewarm_spawns", "prewarm_restores",
                  "prewarm_s", "scale_ups", "scale_downs",
                  "fast_forwarded", "pack_restores")
_TENANT_FIELDS = ("offered", "failed", "shed", "latencies")


def equivalence_problems(serial: FleetStats,
                         sharded: FleetStats) -> List[str]:
    """Field-by-field audit of sharded vs serial replay; empty when the
    two are byte-equal (latencies, counters, faults, traces, tenants)."""
    problems: List[str] = []

    def check(label, expected, got):
        if expected != got:
            problems.append(f"{label}: serial {expected!r} "
                            f"!= sharded {got!r}")

    check("offered", serial.offered, sharded.offered)
    check("shed_unroutable", serial.shed_unroutable,
          sharded.shed_unroutable)
    check("delegated", serial.delegated, sharded.delegated)
    check("regions", list(serial.regions), list(sharded.regions))
    for name, region in serial.regions.items():
        other = sharded.regions.get(name)
        if other is None:
            continue
        for field_name in _REGION_FIELDS:
            check(f"{name}.{field_name}", getattr(region, field_name),
                  getattr(other, field_name))
        check(f"{name}.latencies", region.latencies, other.latencies)
        check(f"{name}.queue_waits", region.queue_waits,
              other.queue_waits)
        check(f"{name}.faults", region.faults.as_dict(),
              other.faults.as_dict())
        check(f"{name}.packs",
              None if region.packs is None else region.packs.as_dict(),
              None if other.packs is None else other.packs.as_dict())
        mine = None if region.trace is None else list(region.trace.records)
        theirs = None if other.trace is None else list(other.trace.records)
        check(f"{name}.trace", mine, theirs)
        if region.trace is not None and other.trace is not None:
            check(f"{name}.trace.record_count",
                  region.trace.record_count, other.trace.record_count)
    check("monitors", serial.monitors, sharded.monitors)
    check("tenants", list(serial.tenants), list(sharded.tenants))
    for name, tenant in serial.tenants.items():
        other = sharded.tenants.get(name)
        if other is None:
            continue
        for field_name in _TENANT_FIELDS:
            check(f"tenant {name}.{field_name}",
                  getattr(tenant, field_name),
                  getattr(other, field_name))
    return problems
