"""Fleet layer: multi-region serving with routing and autoscaling.

Composes :class:`~repro.serving.cluster.ClusterSimulator`-equivalent
regions into one deterministic fleet replay.  See docs/FLEET.md.
"""

from repro.fleet.autoscale import AUTOSCALE_KINDS, AutoscalePolicy
from repro.fleet.fleet import FleetConfig, FleetSimulator, FleetStats, \
    FleetTrace, RegionConfig, RegionStats, TenantStats, merge_traces
from repro.fleet.routing import ROUTING_POLICIES, RouterState, RoutingPolicy
from repro.fleet.parallel import (ShardReport, TraceSpec,
                                  equivalence_problems, run_fleet_sharded)

__all__ = [
    "AUTOSCALE_KINDS",
    "AutoscalePolicy",
    "FleetConfig",
    "FleetSimulator",
    "FleetStats",
    "FleetTrace",
    "ROUTING_POLICIES",
    "RegionConfig",
    "RegionStats",
    "RouterState",
    "RoutingPolicy",
    "ShardReport",
    "TenantStats",
    "TraceSpec",
    "equivalence_problems",
    "merge_traces",
    "run_fleet_sharded",
]
