"""Multi-region fleet simulator: routing + autoscaling above clusters.

The paper's economic claim — PASK-style proactive kernel loading makes
cold starts cheap enough to change how aggressively capacity can be
scaled down — is only measurable *above* the single-cluster level.
:class:`FleetSimulator` composes several regions (each the moral
equivalent of one :class:`~repro.serving.cluster.ClusterSimulator`
pool, possibly on a different device), routes a merged multi-tenant
arrival stream across them (:mod:`repro.fleet.routing`), and lets an
autoscaling policy (:mod:`repro.fleet.autoscale`) manage per-region
capacity — with every scale-up billed through the existing cold-start /
checkpoint-restore accounting.

Two execution paths, one contract
---------------------------------
- **Delegation**: a single-region fleet under inert routing/autoscaling
  (:attr:`FleetConfig.is_single_cluster`) with a single tenant is run by
  handing the trace straight to ``ClusterSimulator`` — byte-identical to
  the bare cluster by construction, fast-forward and resilience
  included (golden-pinned).
- **General**: anything else replays arrival-by-arrival.  The
  per-region scheduling arithmetic mirrors the cluster stepping loop
  operation-for-operation, so a single-region fleet on the general path
  produces the same latencies/counters as
  ``ClusterSimulator(fast_forward=False)`` (equivalence-pinned).

Accounting invariant (property-pinned): every offered request is
exactly one of completed, failed, or shed —
``stats.offered == stats.completed + stats.failed + stats.shed``.

Scope notes: non-inert :class:`ResiliencePolicy` is a cluster-level
feature and is honoured on the delegation path only (the general path
rejects it rather than silently dropping guarantees); crashed instances
always restart *cold* — checkpoint restore applies to autoscaler
spawns, restore-on-crash belongs to the resilience layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.schemes import Scheme
from repro.fleet.autoscale import AutoscalePolicy, AutoscalerState
from repro.fleet.routing import RouterState, RoutingPolicy
from repro.obs.monitors import SLOMonitorSet, SLOPolicy, emit_alert_spans
from repro.packs.artifact import KernelPack, pack_for
from repro.packs.store import (PackPolicy, PackStoreState,
                               PackTransferCounters, RegistryFabric,
                               feed_pack_metrics)
from repro.serving.cluster import ClusterConfig, ClusterSimulator, \
    ClusterStats, _Instance
from repro.serving.metrics import percentile as nearest_rank_percentile
from repro.serving.requests import RequestTrace
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultInjector, FaultPlan
from repro.sim.trace import RETENTION_POLICIES, Phase, TraceRecorder

__all__ = ["RegionConfig", "FleetConfig", "FleetTrace", "merge_traces",
           "RegionStats", "TenantStats", "FleetStats", "FleetSimulator"]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RegionConfig:
    """One region: an autoscaled instance pool on one device."""

    name: str
    device: str = "MI100"
    scheme: Scheme = Scheme.BASELINE
    max_instances: int = 8
    keep_alive_s: float = 10.0
    faults: Optional[FaultPlan] = None
    # Maintenance drains: half-open [start, end) windows during which
    # the region accepts no new requests (the router must send traffic
    # elsewhere — the no-starvation property).
    drain_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region needs a name")
        if self.max_instances <= 0:
            raise ValueError("need at least one instance")
        if self.keep_alive_s < 0:
            raise ValueError("keep-alive must be non-negative")
        for window in self.drain_windows:
            if len(window) != 2 or window[0] < 0 or window[1] <= window[0]:
                raise ValueError(f"bad drain window {window!r}; "
                                 "need 0 <= start < end")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet policy knobs."""

    regions: Tuple[RegionConfig, ...]
    routing: RoutingPolicy = RoutingPolicy()
    autoscale: Optional[AutoscalePolicy] = None
    # Load shedding: reject an arrival whose routed region predicts a
    # queueing delay above this bound (well-defined error, counted as
    # shed — same contract as admission control in the resilience
    # layer).  ``None`` disables shedding.
    shed_wait_s: Optional[float] = None
    trace_retention: Optional[str] = None
    trace_ring: int = 1024
    fast_forward: bool = True
    # Honoured on the delegation path only (see module docstring).
    resilience: Optional[ResiliencePolicy] = None
    # Kernel-pack fetch hierarchy (repro.packs), fleet-wide: each region
    # runs its own ladder against its *own* registry (dark during that
    # region's ``registry_outage_windows``) and fails over to the first
    # lit remote registry at a cross-region penalty before degrading to
    # cold load.  ``None`` (default) is byte-inert.
    packs: Optional[PackPolicy] = None

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("fleet needs at least one region")
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        if self.shed_wait_s is not None and self.shed_wait_s < 0:
            raise ValueError("shed_wait_s must be non-negative")
        if (self.trace_retention is not None
                and self.trace_retention not in RETENTION_POLICIES):
            raise ValueError(
                f"unknown trace retention {self.trace_retention!r}; "
                f"expected None or one of {RETENTION_POLICIES}")
        if self.trace_ring <= 0:
            raise ValueError("trace_ring must be positive")

    @property
    def is_single_cluster(self) -> bool:
        """Whether this fleet is observationally a bare cluster: one
        region, no drains, inert routing and autoscaling, no shedding —
        the delegation-path precondition."""
        return (len(self.regions) == 1
                and not self.regions[0].drain_windows
                and self.routing.is_inert
                and (self.autoscale is None or self.autoscale.is_inert)
                and self.shed_wait_s is None)


# ----------------------------------------------------------------------
# Multi-tenant traces
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FleetTrace:
    """A merged arrival stream tagged with per-request tenant indices."""

    model: str
    arrivals: Tuple[float, ...]
    tenants: Tuple[int, ...]
    tenant_names: Tuple[str, ...] = ("default",)
    batch: int = 1

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ValueError("a trace needs at least one request")
        if len(self.tenants) != len(self.arrivals):
            raise ValueError("tenants must tag every arrival")
        if any(t < 0 for t in self.arrivals):
            raise ValueError("negative arrival time")
        if list(self.arrivals) != sorted(self.arrivals):
            raise ValueError("arrivals must be sorted")
        if not self.tenant_names:
            raise ValueError("need at least one tenant name")
        if len(set(self.tenant_names)) != len(self.tenant_names):
            raise ValueError(f"duplicate tenant names: {self.tenant_names}")
        n = len(self.tenant_names)
        if any(not 0 <= t < n for t in self.tenants):
            raise ValueError("tenant index out of range")
        if self.batch <= 0:
            raise ValueError("batch must be positive")

    def __len__(self) -> int:
        return len(self.arrivals)

    @classmethod
    def from_request_trace(cls, trace: RequestTrace,
                           tenant: str = "default") -> "FleetTrace":
        return cls(trace.model, trace.arrivals,
                   (0,) * len(trace.arrivals), (tenant,), trace.batch)

    def to_request_trace(self) -> RequestTrace:
        return RequestTrace(self.model, self.arrivals, self.batch)


def merge_traces(named: Sequence[Tuple[str, RequestTrace]]) -> FleetTrace:
    """Merge per-tenant traces into one :class:`FleetTrace`.

    Ordering is total and deterministic: by arrival time, then by the
    tenant's position in ``named``, then by sequence within the tenant's
    own trace — so replays are stable even when tenants collide on the
    same timestamp (every seeded trace starts at t=0).
    """
    if not named:
        raise ValueError("need at least one (tenant, trace) pair")
    model = named[0][1].model
    batch = named[0][1].batch
    for name, trace in named:
        if trace.model != model or trace.batch != batch:
            raise ValueError("all tenant traces must share model and batch")
    merged = sorted(
        ((t, tenant_index, seq)
         for tenant_index, (_, trace) in enumerate(named)
         for seq, t in enumerate(trace.arrivals)),
        key=lambda item: item)
    return FleetTrace(model,
                      tuple(item[0] for item in merged),
                      tuple(item[1] for item in merged),
                      tuple(name for name, _ in named),
                      batch)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------

@dataclass
class RegionStats:
    """Outcome of one replay as seen by a single region."""

    name: str
    device: str
    latencies: List[float] = field(default_factory=list)
    cold_starts: int = 0
    warm_hits: int = 0
    restores: int = 0          # scale-up spawns served from a checkpoint
    restore_s: float = 0.0     # total restore spin-up paid on-path
    queue_waits: List[float] = field(default_factory=list)
    failed: int = 0
    shed: int = 0              # load-shed at this region (fleet policy)
    prewarm_spawns: int = 0    # predictive spawns off the request path
    prewarm_restores: int = 0  # ... of which came from a checkpoint
    prewarm_s: float = 0.0     # off-path spin-up time the fleet paid
    scale_ups: int = 0
    scale_downs: int = 0
    faults: FaultCounters = field(default_factory=FaultCounters)
    trace: Optional[TraceRecorder] = None
    fast_forwarded: int = 0
    # Cold spawns restored from a kernel pack (request path), and the
    # fetch-hierarchy ledger (None unless FleetConfig.packs is set).
    pack_restores: int = 0
    packs: Optional[PackTransferCounters] = None

    @classmethod
    def from_cluster(cls, name: str, device: str,
                     stats: ClusterStats) -> "RegionStats":
        return cls(name=name, device=device, latencies=stats.latencies,
                   cold_starts=stats.cold_starts,
                   warm_hits=stats.warm_hits,
                   queue_waits=stats.queue_waits, failed=stats.failed,
                   shed=stats.shed, faults=stats.faults,
                   trace=stats.trace,
                   fast_forwarded=stats.fast_forwarded,
                   pack_restores=stats.pack_restores,
                   packs=stats.packs)

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def requests(self) -> int:
        return len(self.latencies) + self.failed + self.shed

    @property
    def availability(self) -> float:
        finished = self.completed + self.failed
        if not finished:
            return 1.0
        return self.completed / finished

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if not self.latencies:
            return 0.0
        return nearest_rank_percentile(self.latencies, q)


@dataclass
class TenantStats:
    """Per-traffic-class outcome accounting."""

    name: str
    offered: int = 0
    failed: int = 0
    shed: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def availability(self) -> float:
        finished = self.completed + self.failed
        if not finished:
            return 1.0
        return self.completed / finished

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if not self.latencies:
            return 0.0
        return nearest_rank_percentile(self.latencies, q)


@dataclass
class FleetStats:
    """Outcome of one fleet replay: per-region, per-tenant, aggregate."""

    offered: int = 0
    regions: Dict[str, RegionStats] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    # Arrivals dropped because *no* region was routable (all drained);
    # distinct from per-region load shedding.
    shed_unroutable: int = 0
    # Whether the replay took the single-cluster delegation path.
    delegated: bool = False
    # SLO monitor digest (SLOMonitorSet.summary()) when a policy was
    # attached; None otherwise.  Sharded replays reproduce this
    # byte-identically (equivalence-pinned).
    monitors: Optional[Dict[str, Any]] = None

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.regions.values())

    @property
    def failed(self) -> int:
        return sum(r.failed for r in self.regions.values())

    @property
    def shed(self) -> int:
        return (sum(r.shed for r in self.regions.values())
                + self.shed_unroutable)

    @property
    def cold_starts(self) -> int:
        return sum(r.cold_starts for r in self.regions.values())

    @property
    def warm_hits(self) -> int:
        return sum(r.warm_hits for r in self.regions.values())

    @property
    def restores(self) -> int:
        return sum(r.restores for r in self.regions.values())

    @property
    def pack_restores(self) -> int:
        return sum(r.pack_restores for r in self.regions.values())

    @property
    def prewarm_spawns(self) -> int:
        return sum(r.prewarm_spawns for r in self.regions.values())

    @property
    def prewarm_s(self) -> float:
        return sum(r.prewarm_s for r in self.regions.values())

    @property
    def fast_forwarded(self) -> int:
        return sum(r.fast_forwarded for r in self.regions.values())

    @property
    def latencies(self) -> List[float]:
        out: List[float] = []
        for region in self.regions.values():
            out.extend(region.latencies)
        return out

    @property
    def conserved(self) -> bool:
        """The fleet accounting invariant: every offered request is
        exactly one of completed, failed, or shed."""
        return self.offered == self.completed + self.failed + self.shed

    @property
    def availability(self) -> float:
        """Shed-adjusted availability (same contract as
        :attr:`~repro.serving.cluster.ClusterStats.availability`)."""
        finished = self.completed + self.failed
        if not finished:
            return 1.0
        return self.completed / finished

    @property
    def mean_latency(self) -> float:
        total = n = 0
        acc = 0.0
        for region in self.regions.values():
            acc += sum(region.latencies)
            n += len(region.latencies)
        return acc / n if n else 0.0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        merged = self.latencies
        if not merged:
            return 0.0
        return nearest_rank_percentile(merged, q)


# ----------------------------------------------------------------------
# Control-plane telemetry
# ----------------------------------------------------------------------
#
# Decision spans and fleet metrics are emitted through the module-level
# helpers below so the serial loop and the sharded coordinator replay
# (repro.fleet.parallel) call the *same* code with the same arguments —
# that is what makes telemetry-on sharded span/metrics dumps
# byte-identical to telemetry-on serial.

class _QueueDepthTracker:
    """Peak number of concurrently queued requests in one region.

    Fed the ``(arrival, start)`` pair of every first scheduling attempt
    (the same stream that produces ``queue_waits``, which the sharded
    equivalence audit pins — so stepping and analytic replays agree).
    Only allocated when metrics are on.
    """

    __slots__ = ("_starts", "peak")

    def __init__(self) -> None:
        self._starts: List[float] = []   # min-heap of pending start times
        self.peak = 0

    def observe(self, arrival: float, start: float) -> None:
        starts = self._starts
        while starts and starts[0] <= arrival:
            heappop(starts)
        if start > arrival:
            heappush(starts, start)
            if len(starts) > self.peak:
                self.peak = len(starts)


def _emit_scale_down(spans, name: str, t: float, count: int,
                     cap: int) -> None:
    spans.event("fleet:scale-down", t, actor=f"region:{name}",
                count=count, cap=cap)


def _emit_scale_up(spans, name: str, t: float, count: int,
                   cap: int) -> None:
    spans.event("fleet:scale-up", t, actor=f"region:{name}",
                count=count, cap=cap)


def _emit_prewarm(spans, name: str, t: float, spawned: int,
                  restores: int) -> None:
    spans.event("fleet:prewarm", t, actor=f"region:{name}",
                spawned=spawned, restores=restores)


def _emit_shed(spans, name: str, t: float, wait: float) -> None:
    spans.event("fleet:shed", t, actor=f"region:{name}", wait=wait)


def _emit_unroutable(spans, t: float, tenant: str) -> None:
    spans.event("fleet:shed", t, actor="fleet", reason="unroutable",
                tenant=tenant)


def _emit_route(spans, name: str, t: float, policy: str,
                tenant: str) -> None:
    spans.event("fleet:route", t, actor=f"region:{name}", policy=policy,
                tenant=tenant)


_REQUESTS_HELP = "Fleet requests by outcome and region"
_SCALE_HELP = "Autoscaler actions by kind and region"
_LATENCY_HELP = "Fleet end-to-end request latency"
_ROUTED_HELP = "Requests routed to a region, labelled by routing policy"
_AUTOSCALE_HELP = "Autoscale transitions by action and region"
_QUEUE_DEPTH_HELP = "Peak concurrently queued requests per region"
_TENANT_HELP = "Per-tenant fleet requests by outcome"


def _feed_region_metrics(registry, region: "RegionStats",
                         routing_kind: str,
                         queue_peak: Optional[int]) -> None:
    """Feed one region's slice of the fleet metrics into ``registry``.

    Shared by the serial fed-at-the-end path and the sharded workers
    (each worker feeds a fresh registry for its own region; the
    coordinator merges the dumps).  Per-region label sets are disjoint
    and ``to_json`` sorts, so merged output is byte-identical to
    serial.
    """
    name = region.name
    requests = registry.counter("fleet_requests_total", _REQUESTS_HELP)
    scale = registry.counter("fleet_scale_events_total", _SCALE_HELP)
    latency = registry.histogram("fleet_latency_seconds", _LATENCY_HELP)
    routed = registry.counter("fleet_routed_total", _ROUTED_HELP)
    autoscale = registry.counter("fleet_autoscale_total", _AUTOSCALE_HELP)
    depth = registry.gauge("fleet_queue_depth", _QUEUE_DEPTH_HELP)
    for outcome, value in (("warm", region.warm_hits),
                           ("cold", region.cold_starts),
                           ("restore", region.restores),
                           ("pack", region.pack_restores),
                           ("failed", region.failed),
                           ("shed", region.shed)):
        if value:
            requests.inc(value, outcome=outcome, region=name)
    for kind, value in (("up", region.scale_ups),
                        ("down", region.scale_downs),
                        ("prewarm", region.prewarm_spawns)):
        if value:
            scale.inc(value, kind=kind, region=name)
    series = latency.labels(region=name)
    for value in region.latencies:
        series.observe(value)
    if region.requests:
        routed.inc(region.requests, policy=routing_kind, region=name)
    # Restore-vs-cold billing of capacity transitions.  Live keep-alive
    # reclaims are intentionally absent: stepping and analytic replays
    # may coalesce them differently, and only *billed* transitions are
    # equivalence-pinned.
    for action, value in (("scale-up", region.scale_ups),
                          ("scale-down", region.scale_downs),
                          ("prewarm", region.prewarm_spawns),
                          ("prewarm-restore", region.prewarm_restores),
                          ("restore", region.restores),
                          ("pack-restore", region.pack_restores),
                          ("cold-spawn", region.cold_starts)):
        if value:
            autoscale.inc(value, action=action, region=name)
    if queue_peak is not None:
        depth.set(queue_peak, region=name)
    if region.packs is not None:
        feed_pack_metrics(registry, region.packs, region=name)


def _feed_tenant_metrics(registry, stats: "FleetStats") -> None:
    """Feed the fleet-level (non-region) metrics: per-tenant outcomes
    plus the unroutable-shed counter.  The sharded coordinator calls
    this after merging the per-region worker dumps."""
    tenant_counter = registry.counter("fleet_tenant_requests_total",
                                      _TENANT_HELP)
    for name, tenant in stats.tenants.items():
        for outcome, value in (("completed", tenant.completed),
                               ("failed", tenant.failed),
                               ("shed", tenant.shed)):
            if value:
                tenant_counter.inc(value, outcome=outcome, tenant=name)
    if stats.shed_unroutable:
        registry.counter("fleet_requests_total", _REQUESTS_HELP).inc(
            stats.shed_unroutable, outcome="unroutable", region="-")


def _feed_fleet_metrics(registry, stats: "FleetStats", routing_kind: str,
                        queue_peaks: Optional[Dict[str, int]]) -> None:
    """Feed a whole fleet replay's metrics (regions + tenants)."""
    for name, region in stats.regions.items():
        peak = queue_peaks.get(name) if queue_peaks is not None else None
        _feed_region_metrics(registry, region, routing_kind, peak)
    _feed_tenant_metrics(registry, stats)


# ----------------------------------------------------------------------
# Region runtime state
# ----------------------------------------------------------------------

class _RegionState:
    """Mutable per-replay state of one region.

    The scheduling arithmetic in :meth:`serve` mirrors the cluster
    stepping loop (`ClusterSimulator.run`) operation-for-operation —
    same reclaim predicate, same instance pick, same ``max(now,
    busy_until)`` start, same crash/reroute bookkeeping — so that a
    single-region fleet on the general path reproduces the bare
    cluster's numbers exactly.  On top it adds what the fleet layer
    owns: an autoscaled instance cap, a keep-alive override, a warm
    floor (``min_instances``), checkpoint-restore billing for scale-up
    spawns, and off-path pre-warming.
    """

    def __init__(self, config: RegionConfig, sim: ClusterSimulator,
                 policy: AutoscalePolicy, model: str, batch: int,
                 retention: Optional[str], ring: int,
                 pack_policy: Optional[PackPolicy] = None,
                 pack: Optional[KernelPack] = None,
                 region_index: int = 0,
                 fabric: Optional[RegistryFabric] = None) -> None:
        self.config = config
        self.actor = f"region:{config.name}"
        self.cold = sim._cold_time(model, batch)
        self.warm = sim._warm_time(model, batch)
        self.cold_extra = (self.cold - self.warm
                           if self.cold > self.warm else 0.0)
        self.restore_cost = (policy.restore_overhead_s
                             + self.cold_extra / policy.restore_speedup)
        self.policy = policy
        self.scaler = AutoscalerState(policy, config.max_instances)
        self.keep_alive = self.scaler.keep_alive(config.keep_alive_s)
        self.injector: Optional[FaultInjector] = (
            config.faults.injector() if config.faults is not None else None)
        self.instances: List[_Instance] = []
        self.ever_warm = False   # a checkpoint exists once anything ran
        self.stats = RegionStats(name=config.name, device=config.device)
        if self.injector is not None:
            self.stats.faults = self.injector.counters
        self.recorder: Optional[TraceRecorder] = None
        if retention is not None:
            self.recorder = TraceRecorder(retention=retention,
                                          ring_size=ring)
            self.stats.trace = self.recorder
        # Kernel-pack fetch ladder: this region's store, running against
        # its own registry (dark during its outage windows) with
        # cross-region failover through ``fabric``.
        self.pack_state: Optional[PackStoreState] = None
        if pack_policy is not None:
            self.pack_state = PackStoreState(
                pack_policy, pack, self.injector, self.recorder,
                actor=self.actor, region_index=region_index,
                fabric=fabric)
            self.stats.packs = self.pack_state.counters
        # Attached by the fleet loop (or a sharded worker) when metrics
        # are on; None keeps the serve hot path allocation-free.
        self.queue_depth: Optional[_QueueDepthTracker] = None

    # -- deterministic query surface (used by routing + autoscaling) ---

    def drained(self, now: float) -> bool:
        return any(start <= now < end
                   for start, end in self.config.drain_windows)

    def routable(self, now: float) -> bool:
        """A region is routable unless drained: capacity can always be
        spawned (the arrival pays the cold start), so only an explicit
        drain takes a region out of rotation."""
        return not self.drained(now)

    def _live(self, now: float) -> List[_Instance]:
        """The instances that survive a reclaim at ``now`` (non-mutating
        twin of :meth:`_reclaim`, including the warm floor)."""
        keep = [i for i in self.instances
                if i.busy_until > now
                or now - i.last_used <= self.keep_alive]
        floor = min(self.policy.min_instances, self.scaler.cap)
        if len(keep) < floor and len(self.instances) > len(keep):
            kept = set(map(id, keep))
            expired = [i for i in self.instances if id(i) not in kept]
            expired.sort(key=lambda i: i.last_used, reverse=True)
            kept.update(map(id, expired[:floor - len(keep)]))
            keep = [i for i in self.instances if id(i) in kept]
        return keep

    def live_count(self, now: float) -> int:
        return len(self._live(now))

    def has_warm_idle(self, now: float) -> bool:
        return any(i.busy_until <= now and i.warm for i in self._live(now))

    def predicted_wait(self, now: float) -> float:
        """Queueing delay the next arrival would see: zero when an idle
        warm instance or a spawn slot exists, else the wait for the
        earliest instance to free up."""
        live = self._live(now)
        if any(i.busy_until <= now and i.warm for i in live):
            return 0.0
        if len(live) < self.scaler.cap:
            return 0.0
        earliest = min(i.busy_until for i in live)
        return earliest - now if earliest > now else 0.0

    # -- mutation ------------------------------------------------------

    def _reclaim(self, now: float) -> None:
        self.instances[:] = self._live(now)

    def prewarm(self, count: int, now: float) -> None:
        """Spawn ``count`` instances off the request path.  The fleet
        (not any request) pays the spin-up — the full cold-start extra,
        or the checkpoint restore cost when one exists — and the
        instance joins the pool warm, busy until the spin-up ends."""
        for _ in range(count):
            if len(self.instances) >= self.scaler.cap:
                break
            from_checkpoint = (self.policy.checkpoint_restore
                               and self.ever_warm)
            if from_checkpoint:
                cost = self.restore_cost
            elif self.pack_state is not None:
                # Off-path spawns walk the same pack ladder; the fleet
                # pays the fetch (or the bounded ladder walk plus the
                # cold spin-up when the hierarchy is dark).
                peer = any(i.warm for i in self.instances)
                fetch = self.pack_state.fetch(now, peer)
                if fetch.hit:
                    cost = fetch.elapsed_s + self.pack_state.apply_s
                else:
                    cost = fetch.elapsed_s + self.cold_extra
            else:
                cost = self.cold_extra
            instance = _Instance(busy_until=now + cost,
                                 last_used=now + cost, warm=True)
            self.instances.append(instance)
            self.ever_warm = True
            self.stats.prewarm_spawns += 1
            self.stats.prewarm_s += cost
            if from_checkpoint:
                self.stats.prewarm_restores += 1
            if self.recorder is not None:
                self.recorder.record(now, now + cost, self.actor,
                                     Phase.LOAD, "prewarm")

    def serve(self, arrival: float) -> bool:
        """Schedule one request; returns True iff it completed.

        Mirrors the cluster stepping loop, with two fleet extensions:
        the spawn cap is the autoscaler's breathing cap (not the static
        ``max_instances``), and a spawn backed by a warm-state
        checkpoint serves at restore cost instead of the full cold
        start (billed as a *restore*, never as a cold start).
        """
        stats = self.stats
        recorder = self.recorder
        injector = self.injector
        plan = self.config.faults
        now = arrival
        attempts = 0
        while True:
            self._reclaim(now)
            instance = self._pick(now)
            restored = False
            if instance is None:
                if len(self.instances) < self.scaler.cap:
                    instance = _Instance()
                    self.instances.append(instance)
                    restored = (self.policy.checkpoint_restore
                                and self.ever_warm)
                else:
                    instance = min(self.instances,
                                   key=lambda i: i.busy_until)
            start = max(now, instance.busy_until)
            if attempts == 0:
                stats.queue_waits.append(start - arrival)
                if self.queue_depth is not None:
                    self.queue_depth.observe(arrival, start)
            warm_attempt = instance.warm
            pack_tier: Optional[str] = None
            if warm_attempt:
                service = self.warm
            elif restored:
                # A checkpoint restore already ships this instance's
                # warm state; it takes precedence over the pack ladder.
                service = self.restore_cost + self.warm
            elif self.pack_state is not None:
                peer = any(other.warm for other in self.instances
                           if other is not instance)
                fetch = self.pack_state.fetch(start, peer)
                if fetch.hit:
                    pack_tier = fetch.tier
                    service = (fetch.elapsed_s
                               + self.pack_state.apply_s + self.warm)
                else:
                    service = fetch.elapsed_s + self.cold
            else:
                service = self.cold
            crash_at = (injector.crash_point(service)
                        if injector is not None else None)
            if crash_at is None:
                if warm_attempt:
                    stats.warm_hits += 1
                elif restored:
                    stats.restores += 1
                    stats.restore_s += self.restore_cost
                elif pack_tier is not None:
                    stats.pack_restores += 1
                else:
                    stats.cold_starts += 1
                finish = start + service
                instance.busy_until = finish
                instance.last_used = finish
                instance.warm = True
                self.ever_warm = True
                stats.latencies.append(finish - arrival)
                if recorder is not None:
                    if warm_attempt:
                        recorder.record(start, finish, self.actor,
                                        Phase.EXEC, "serve")
                    else:
                        boundary = start + (service - self.warm
                                            if service > self.warm else 0.0)
                        if restored:
                            load_name = "restore"
                        elif pack_tier is not None:
                            load_name = f"pack-restore/{pack_tier}"
                        else:
                            load_name = "cold-start"
                        recorder.record(start, boundary, self.actor,
                                        Phase.LOAD, load_name)
                        recorder.record(boundary, finish, self.actor,
                                        Phase.EXEC, "serve")
                if injector is not None:
                    stats.faults.completed_requests += 1
                return True
            stats.faults.crashes += 1
            crash_time = start + crash_at
            instance.busy_until = crash_time + plan.restart_delay_s
            instance.last_used = instance.busy_until
            instance.warm = False
            if recorder is not None:
                recorder.record(start, crash_time, self.actor,
                                Phase.FAULT, "crash")
            attempts += 1
            if attempts > plan.max_reroutes:
                stats.failed += 1
                stats.faults.failed_requests += 1
                return False
            stats.faults.reroutes += 1
            now = crash_time

    def _pick(self, now: float) -> Optional[_Instance]:
        """The warm instance free at ``now`` that has idled longest
        (identical to ``ClusterSimulator._pick_instance``)."""
        free = [i for i in self.instances
                if i.busy_until <= now and i.warm]
        if not free:
            return None
        return min(free, key=lambda i: i.last_used)


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------

# Per-device server cache: fleets instantiate regions by device name;
# building one InferenceServer per device per process keeps replays fast
# and lets the cluster-level service-time memo (_SERVICE_TIMES) be
# shared across every fleet and cluster in the process.
_FLEET_SERVERS: Dict[str, InferenceServer] = {}


def _server_for(device: str,
                override: Optional[Dict[str, InferenceServer]]) -> \
        InferenceServer:
    if override is not None and device in override:
        return override[device]
    if device not in _FLEET_SERVERS:
        _FLEET_SERVERS[device] = InferenceServer(device)
    return _FLEET_SERVERS[device]


class FleetSimulator:
    """Replays a (multi-tenant) trace against a multi-region fleet."""

    def __init__(self, config: FleetConfig, metrics=None, spans=None,
                 slo: Optional[SLOPolicy] = None,
                 servers: Optional[Dict[str, InferenceServer]] = None
                 ) -> None:
        self.config = config
        self.metrics = metrics
        self.spans = spans
        self.slo = slo
        self._servers = servers
        if (config.resilience is not None
                and not config.resilience.is_inert
                and not config.is_single_cluster):
            raise ValueError(
                "a non-inert resilience policy is honoured on the "
                "single-cluster delegation path only; attach it to the "
                "regions' ClusterSimulator runs or use one region with "
                "inert routing/autoscaling")

    def run(self, trace) -> FleetStats:
        """Replay ``trace`` (a :class:`RequestTrace` or
        :class:`FleetTrace`) and collect fleet statistics."""
        if isinstance(trace, RequestTrace):
            trace = FleetTrace.from_request_trace(trace)
        config = self.config
        if config.is_single_cluster and len(trace.tenant_names) == 1:
            return self._run_delegated(trace)
        return self._run_general(trace)

    # -- delegation path ----------------------------------------------

    def _run_delegated(self, trace: FleetTrace) -> FleetStats:
        region = self.config.regions[0]
        # SLO monitors need the per-request stepping stream; disabling
        # fast-forward changes only ``stats.fast_forwarded`` — the
        # ff==stepping byte-identity contract guarantees every other
        # stat is unchanged (golden-pinned).
        monitors = SLOMonitorSet(self.slo) if self.slo is not None \
            else None
        cluster_config = ClusterConfig(
            scheme=region.scheme,
            max_instances=region.max_instances,
            keep_alive_s=region.keep_alive_s,
            faults=region.faults,
            trace_retention=self.config.trace_retention,
            trace_ring=self.config.trace_ring,
            fast_forward=(self.config.fast_forward
                          and monitors is None),
            resilience=self.config.resilience,
            packs=self.config.packs)
        sim = ClusterSimulator(_server_for(region.device, self._servers),
                               cluster_config, metrics=None,
                               spans=self.spans, monitors=monitors)
        cluster_stats = sim.run(trace.to_request_trace())
        stats = FleetStats(offered=len(trace), delegated=True)
        stats.regions[region.name] = RegionStats.from_cluster(
            region.name, region.device, cluster_stats)
        tenant = TenantStats(name=trace.tenant_names[0],
                             offered=len(trace),
                             failed=cluster_stats.failed,
                             shed=cluster_stats.shed,
                             latencies=cluster_stats.latencies)
        stats.tenants[tenant.name] = tenant
        if monitors is not None:
            stats.monitors = monitors.summary()
        self._feed_metrics(stats, queue_peaks=None)
        return stats

    # -- general path --------------------------------------------------

    def _run_general(self, trace: FleetTrace) -> FleetStats:
        config = self.config
        spans = self.spans
        monitors = SLOMonitorSet(self.slo) if self.slo is not None \
            else None
        policy = config.autoscale if config.autoscale is not None \
            else AutoscalePolicy()
        routing_kind = config.routing.kind
        # Region registries for the pack hierarchy: each region's own
        # outage windows, shared so every store can find the first lit
        # remote registry for cross-region failover.
        fabric: Optional[RegistryFabric] = None
        if config.packs is not None:
            fabric = RegistryFabric([
                rc.faults.registry_outage_windows
                if rc.faults is not None else ()
                for rc in config.regions])
        regions: List[_RegionState] = []
        for region_index, region_config in enumerate(config.regions):
            server = _server_for(region_config.device, self._servers)
            sim = ClusterSimulator(
                server,
                ClusterConfig(scheme=region_config.scheme,
                              max_instances=region_config.max_instances,
                              keep_alive_s=region_config.keep_alive_s))
            pack: Optional[KernelPack] = None
            if config.packs is not None:
                pack = pack_for(server, trace.model, region_config.scheme,
                                trace.batch)
            state = _RegionState(region_config, sim, policy,
                                 trace.model, trace.batch,
                                 config.trace_retention, config.trace_ring,
                                 pack_policy=config.packs, pack=pack,
                                 region_index=region_index, fabric=fabric)
            if spans is not None and state.recorder is not None:
                spans.bind(state.recorder)
            if self.metrics is not None:
                state.queue_depth = _QueueDepthTracker()
            regions.append(state)
        stats = FleetStats(offered=len(trace))
        tenants = [TenantStats(name=name) for name in trace.tenant_names]
        router = RouterState(config.routing)
        for arrival, tenant_index in zip(trace.arrivals, trace.tenants):
            tenant = tenants[tenant_index]
            tenant.offered += 1
            if spans is None:
                for region in regions:
                    region.scaler.idle_tick(region, arrival)
            else:
                for region in regions:
                    downs = region.stats.scale_downs
                    region.scaler.idle_tick(region, arrival)
                    delta = region.stats.scale_downs - downs
                    if delta:
                        _emit_scale_down(spans, region.config.name,
                                         arrival, delta,
                                         region.scaler.cap)
            choice = router.choose(regions, arrival)
            if choice is None:
                stats.shed_unroutable += 1
                tenant.shed += 1
                if spans is not None:
                    _emit_unroutable(spans, arrival, tenant.name)
                continue
            region = regions[choice]
            if config.shed_wait_s is not None:
                wait = region.predicted_wait(arrival)
                if wait > config.shed_wait_s:
                    region.stats.shed += 1
                    tenant.shed += 1
                    if spans is not None:
                        _emit_shed(spans, region.config.name, arrival,
                                   wait)
                    continue
            if spans is None:
                extra = region.scaler.observe_arrival(region, arrival)
                if extra:
                    region.prewarm(extra, arrival)
            else:
                _emit_route(spans, region.config.name, arrival,
                            routing_kind, tenant.name)
                ups = region.stats.scale_ups
                extra = region.scaler.observe_arrival(region, arrival)
                if region.stats.scale_ups > ups:
                    _emit_scale_up(spans, region.config.name, arrival,
                                   region.stats.scale_ups - ups,
                                   region.scaler.cap)
                if extra:
                    spawned = region.stats.prewarm_spawns
                    restored = region.stats.prewarm_restores
                    region.prewarm(extra, arrival)
                    spawned = region.stats.prewarm_spawns - spawned
                    if spawned:
                        _emit_prewarm(
                            spans, region.config.name, arrival, spawned,
                            region.stats.prewarm_restores - restored)
            if monitors is None:
                if region.serve(arrival):
                    tenant.latencies.append(region.stats.latencies[-1])
                else:
                    tenant.failed += 1
            else:
                colds = region.stats.cold_starts
                if region.serve(arrival):
                    latency = region.stats.latencies[-1]
                    tenant.latencies.append(latency)
                    fresh = monitors.observe_completed(
                        arrival, latency,
                        region.stats.cold_starts > colds)
                else:
                    tenant.failed += 1
                    fresh = monitors.observe_failed(arrival)
                if spans is not None and fresh:
                    emit_alert_spans(spans, fresh)
        for region in regions:
            stats.regions[region.config.name] = region.stats
        for tenant in tenants:
            stats.tenants[tenant.name] = tenant
        if monitors is not None:
            stats.monitors = monitors.summary()
        queue_peaks = None
        if self.metrics is not None:
            queue_peaks = {region.config.name: region.queue_depth.peak
                           for region in regions}
        self._feed_metrics(stats, queue_peaks)
        return stats

    # -- telemetry -----------------------------------------------------

    def _feed_metrics(self, stats: FleetStats,
                      queue_peaks: Optional[Dict[str, int]]) -> None:
        """Feed the metrics registry once from the collected stats (the
        same fed-at-the-end pattern the cluster uses, so the scheduling
        loops stay untouched)."""
        if self.metrics is None:
            return
        _feed_fleet_metrics(self.metrics, stats, self.config.routing.kind,
                            queue_peaks)
