"""Warm-pool-aware request routing across fleet regions.

A :class:`RoutingPolicy` decides, for each arriving request, which
region serves it.  Policies see only deterministic region-state queries
(drained?, idle warm instance available?, predicted start delay), so a
seeded fleet replay is fully reproducible regardless of policy.

Policies
--------
- ``single`` — everything goes to region 0.  The *inert* policy: a
  single-region fleet under it is byte-identical to the bare
  :class:`~repro.serving.cluster.ClusterSimulator` (golden-pinned).
- ``round-robin`` — cycle through the routable regions in declaration
  order, skipping drained ones.
- ``least-queue`` — the routable region with the smallest predicted
  start delay (idle warm capacity or a free spawn slot counts as zero);
  ties break toward the lowest region index.
- ``warm-first`` — prefer regions that can serve the request on an idle
  *warm* instance right now (avoiding both queueing and a cold spawn);
  among several, the least-loaded wins.  Falls back to least-queue when
  no region has warm headroom — this is the policy that exploits
  PASK-style cheap cold starts least and a warm pool most.

The starvation invariant (property-pinned): a policy never dispatches
to a region that is unroutable (drained, or scaled to zero with no live
capacity) while another routable region exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["RoutingPolicy", "RouterState", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("single", "round-robin", "least-queue", "warm-first")


@dataclass(frozen=True)
class RoutingPolicy:
    """Which routing discipline the fleet runs."""

    kind: str = "single"

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {self.kind!r}; "
                             f"expected one of {ROUTING_POLICIES}")

    @property
    def is_inert(self) -> bool:
        """Whether the policy can never spread load (always region 0)."""
        return self.kind == "single"


class RouterState:
    """Per-replay mutable routing cursor (round-robin position)."""

    def __init__(self, policy: RoutingPolicy) -> None:
        self.policy = policy
        self._rr_next = 0

    def choose(self, regions: Sequence, now: float) -> Optional[int]:
        """Index of the region that serves an arrival at ``now``.

        ``regions`` expose the deterministic query surface documented in
        :class:`repro.fleet.fleet._RegionState`.  Returns ``None`` only
        when *no* region is routable (every region drained) — the fleet
        sheds the request with a well-defined error rather than
        violating a drain.
        """
        routable: List[int] = [i for i, region in enumerate(regions)
                               if region.routable(now)]
        if not routable:
            return None
        kind = self.policy.kind
        if kind == "single" or len(routable) == 1:
            return routable[0]
        if kind == "round-robin":
            # Advance past the previous pick, then take the first
            # routable region at or after the cursor (wrapping).
            n = len(regions)
            for offset in range(n):
                index = (self._rr_next + offset) % n
                if regions[index].routable(now):
                    self._rr_next = index + 1
                    return index
            return routable[0]  # unreachable: routable is non-empty
        if kind == "least-queue":
            return min(routable,
                       key=lambda i: (regions[i].predicted_wait(now), i))
        # warm-first
        warm = [i for i in routable if regions[i].has_warm_idle(now)]
        pool = warm if warm else routable
        return min(pool, key=lambda i: (regions[i].predicted_wait(now), i))
