"""Autoscaling policies for fleet regions.

The interesting science of the fleet layer (ROADMAP): how PASK-style
proactive loading changes the autoscaling frontier — how aggressively a
region can scale to zero when cold starts are cheap.  Every scale-up
here is billed through the *existing* cold-start accounting: a fresh
instance either pays the configured scheme's full cold start, or — when
the policy keeps warm-state checkpoints (PR 5's restore billing) — the
checkpoint restore cost ``restore_overhead_s + cold_extra /
restore_speedup``.

Policy kinds
------------
- ``fixed`` — the region's configured capacity, untouched.  With
  ``min_instances == 0`` and no ``idle_timeout_s`` this is the *inert*
  policy: attaching it changes nothing (golden-pinned).
- ``scale-to-zero`` — idle instances are reclaimed after
  ``idle_timeout_s`` (overriding the region keep-alive); traffic
  returning to an empty pool pays the scale-up bill.  The knob the
  frontier experiment sweeps.
- ``reactive`` — the region's instance cap breathes with demand: grows
  by one when an arrival's predicted queueing delay exceeds
  ``scale_up_wait_s`` (the scale-up cost rides that request as a cold
  start or restore), shrinks after ``scale_down_idle_s`` of quiet.
- ``predictive`` — an EWMA of the region's arrival rate sizes a warm
  target (``rate * warm_time * prewarm_headroom``); instances beyond
  current live capacity are pre-warmed *off the request path* (the
  fleet pays ``prewarm_s``; requests never see the spin-up).  Hysteresis
  via ``prewarm_cooldown_s``.

``min_instances`` pins a warm floor in any kind: the keep-alive reclaim
never drops a region below it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["AutoscalePolicy", "AutoscalerState", "AUTOSCALE_KINDS"]

AUTOSCALE_KINDS = ("fixed", "scale-to-zero", "reactive", "predictive")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs for one region-level autoscaler (shared by every region)."""

    kind: str = "fixed"
    min_instances: int = 0
    # Keep-alive override: how long an idle instance survives before the
    # scaler reclaims it.  Required for ``scale-to-zero`` (it *is* the
    # scale-down aggressiveness); optional elsewhere.
    idle_timeout_s: Optional[float] = None
    # --- reactive -----------------------------------------------------
    scale_up_wait_s: float = 0.0
    scale_down_idle_s: float = 1.0
    # --- predictive ---------------------------------------------------
    ewma_alpha: float = 0.3
    prewarm_headroom: float = 1.0
    prewarm_cooldown_s: float = 1.0
    # --- scale-up billing (PR 5's checkpoint/restore accounting) ------
    checkpoint_restore: bool = False
    restore_overhead_s: float = 0.002
    restore_speedup: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in AUTOSCALE_KINDS:
            raise ValueError(f"unknown autoscale kind {self.kind!r}; "
                             f"expected one of {AUTOSCALE_KINDS}")
        if self.min_instances < 0:
            raise ValueError("min_instances must be non-negative")
        if self.idle_timeout_s is not None and self.idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be non-negative")
        if self.kind == "scale-to-zero" and self.idle_timeout_s is None:
            raise ValueError("scale-to-zero needs an idle_timeout_s")
        for name in ("scale_up_wait_s", "scale_down_idle_s",
                     "prewarm_cooldown_s", "restore_overhead_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.prewarm_headroom <= 0:
            raise ValueError("prewarm_headroom must be positive")
        if self.restore_speedup < 1.0:
            raise ValueError("restore_speedup must be >= 1")

    @property
    def is_inert(self) -> bool:
        """Whether attaching this policy can never change a replay."""
        return (self.kind == "fixed" and self.min_instances == 0
                and self.idle_timeout_s is None
                and not self.checkpoint_restore)


class AutoscalerState:
    """Per-region mutable autoscaler cursor.

    Owns the breathing instance cap (reactive), the EWMA rate estimate
    (predictive) and the prewarm/scale hysteresis clocks.  All inputs
    are deterministic region-state queries, so a seeded fleet replay
    with any policy stays fully reproducible.
    """

    def __init__(self, policy: AutoscalePolicy, max_instances: int) -> None:
        self.policy = policy
        self.max_instances = max_instances
        if policy.kind == "reactive":
            self.cap = min(max_instances, max(policy.min_instances, 1))
        else:
            self.cap = max_instances
        self._floor = min(max_instances, max(policy.min_instances, 1))
        self._rate: float = 0.0
        self._last_arrival: Optional[float] = None
        self._last_prewarm: Optional[float] = None

    def keep_alive(self, default: float) -> float:
        """Effective idle reclaim timeout for the region."""
        if self.policy.idle_timeout_s is not None:
            return self.policy.idle_timeout_s
        return default

    # ------------------------------------------------------------------
    # Hooks driven by the fleet loop
    # ------------------------------------------------------------------
    def idle_tick(self, region, now: float) -> None:
        """Periodic (per fleet arrival) idle check: reactive scale-down."""
        if self.policy.kind != "reactive" or self.cap <= self._floor:
            return
        last = self._last_arrival
        if last is not None and now - last > self.policy.scale_down_idle_s:
            self.cap -= 1
            region.stats.scale_downs += 1
            # One step per quiet period: restart the idle clock so a
            # long silence drains capacity gradually, not instantly.
            self._last_arrival = now

    def observe_arrival(self, region, now: float) -> int:
        """An arrival was routed to ``region`` at ``now``.

        Updates the demand estimate, grows the reactive cap, and returns
        the number of instances to pre-warm *in addition to* whatever
        the arriving request itself spawns (predictive kind only) — the
        reservation of the arrival's own slot is what guarantees a lone
        request after scale-down bills exactly one cold start (or one
        restore), never two.
        """
        policy = self.policy
        prewarm = 0
        if policy.kind == "reactive":
            if (self.cap < self.max_instances
                    and region.predicted_wait(now) > policy.scale_up_wait_s):
                self.cap += 1
                region.stats.scale_ups += 1
        elif policy.kind == "predictive":
            if self._last_arrival is not None:
                gap = now - self._last_arrival
                if gap > 0:
                    instant = 1.0 / gap
                    self._rate = (policy.ewma_alpha * instant
                                  + (1.0 - policy.ewma_alpha) * self._rate)
            target = math.ceil(self._rate * region.warm
                               * policy.prewarm_headroom)
            want = min(self.cap, target) - region.live_count(now) - 1
            if want > 0 and (self._last_prewarm is None
                             or now - self._last_prewarm
                             >= policy.prewarm_cooldown_s):
                prewarm = want
                self._last_prewarm = now
        self._last_arrival = now
        return prewarm
