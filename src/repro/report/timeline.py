"""ASCII timeline (Gantt) rendering of an execution trace.

Visualizes the interleaved pipeline: one row per actor (parser, loader,
issuer, gpu, host), time bucketed into fixed-width columns, each cell
showing the phase that dominates the bucket.  This makes the paper's
Fig. 5 dynamics directly observable: the parser finishing early, the
loader running continuously, and the GPU ticking along behind it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import Phase, TraceRecorder, merge_intervals

__all__ = ["render_timeline"]

# One character per phase; uppercase for the busiest phases.
_PHASE_CHARS = {
    Phase.PARSE: "p",
    Phase.LOAD: "L",
    Phase.ISSUE: "i",
    Phase.EXEC: "X",
    Phase.CHECK: "c",
    Phase.OVERHEAD: "o",
    Phase.OTHER: ".",
    Phase.FAULT: "!",
    Phase.RETRY: "r",
    Phase.CHECKPOINT: "k",
    Phase.RESTORE: "R",
    Phase.DRAIN: "d",
}

_DEFAULT_ACTOR_ORDER = ("parser", "loader", "issuer", "host", "gpu")


def render_timeline(trace: TraceRecorder, width: int = 72,
                    total_time: Optional[float] = None,
                    actors: Optional[Sequence[str]] = None) -> str:
    """Render ``trace`` as an ASCII Gantt chart.

    Each column covers ``total_time / width`` seconds; a cell shows the
    phase occupying the largest share of that bucket for that actor
    (space when idle).  A legend and the time scale are appended.
    """
    if width < 10:
        raise ValueError(f"width too small: {width}")
    if not trace.records:
        return "(empty trace)"
    start, end = trace.span()
    if total_time is not None:
        end = start + total_time
    span = end - start
    if span <= 0:
        return "(zero-length trace)"

    present = {r.actor for r in trace.records}
    if actors is None:
        actors = ([a for a in _DEFAULT_ACTOR_ORDER if a in present]
                  + sorted(present - set(_DEFAULT_ACTOR_ORDER)))
    label_width = max(len(a) for a in actors)
    bucket = span / width

    lines: List[str] = []
    for actor in actors:
        per_phase: Dict[Phase, List[Tuple[float, float]]] = {}
        for record in trace.records:
            if record.actor != actor:
                continue
            per_phase.setdefault(record.phase, []).append(
                (record.start, record.end))
        merged = {phase: merge_intervals(items)
                  for phase, items in per_phase.items()}
        row = []
        for column in range(width):
            lo = start + column * bucket
            hi = lo + bucket
            best_phase = None
            best_cover = 0.0
            for phase, intervals in merged.items():
                cover = _coverage(intervals, lo, hi)
                if cover > best_cover:
                    best_cover = cover
                    best_phase = phase
            if best_phase is None or best_cover <= 0:
                row.append(" ")
            else:
                row.append(_PHASE_CHARS.get(best_phase, "?"))
        lines.append(f"{actor.rjust(label_width)} |{''.join(row)}|")

    scale = (f"{' ' * label_width}  0 ms{' ' * (width - 12)}"
             f"{span * 1e3:6.1f} ms")
    legend = ("legend: p=parse L=load i=issue X=gpu-exec c=check "
              "o=overhead .=other !=fault r=retry")
    return "\n".join(lines + [scale, legend])


def _coverage(intervals: Sequence[Tuple[float, float]], lo: float,
              hi: float) -> float:
    """Measure of ``intervals`` inside the bucket [lo, hi)."""
    total = 0.0
    for s, e in intervals:
        total += max(0.0, min(e, hi) - max(s, lo))
    return total
