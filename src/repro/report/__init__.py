"""Plain-text rendering of experiment results (tables and bar charts)."""

from repro.report.tables import format_table
from repro.report.figures import bar_chart, grouped_bars
from repro.report.timeline import render_timeline

__all__ = ["bar_chart", "format_table", "grouped_bars", "render_timeline"]
