"""ASCII table formatting."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``precision`` decimals; everything else via
    ``str``.  Column widths adapt to content.
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match header count")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    separator = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(separator)
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
