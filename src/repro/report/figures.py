"""ASCII bar charts for figure-style results."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["bar_chart", "grouped_bars"]

_BAR = "#"


def bar_chart(values: Dict[str, float], title: Optional[str] = None,
              width: int = 40, precision: int = 2) -> str:
    """One horizontal bar per key, scaled to the maximum value."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    peak = max(values.values())
    label_width = max(len(k) for k in values)
    out = []
    if title:
        out.append(title)
    for key, value in values.items():
        length = 0 if peak <= 0 else int(round(width * value / peak))
        out.append(f"{key.rjust(label_width)} | "
                   f"{_BAR * length:<{width}} {value:.{precision}f}")
    return "\n".join(out)


def grouped_bars(groups: Dict[str, Dict[str, float]],
                 title: Optional[str] = None, width: int = 30,
                 precision: int = 2) -> str:
    """Bars grouped by an outer key (e.g. per-model, one bar per scheme)."""
    if not groups:
        raise ValueError("grouped_bars needs at least one group")
    peak = max(v for inner in groups.values() for v in inner.values())
    series = max((len(k) for inner in groups.values() for k in inner),
                 default=0)
    out = []
    if title:
        out.append(title)
    for group, inner in groups.items():
        out.append(f"{group}:")
        for key, value in inner.items():
            length = 0 if peak <= 0 else int(round(width * value / peak))
            out.append(f"  {key.rjust(series)} | "
                       f"{_BAR * length:<{width}} {value:.{precision}f}")
    return "\n".join(out)
