"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``models`` — list the Table I model zoo.
- ``serve MODEL`` — one cold (or hot) run, with scheme/batch/device knobs.
- ``experiment NAME`` — regenerate a figure/table (fig1a ... fig9, all).
- ``session MODEL`` — consecutive requests on one instance, with or
  without Sec. VI interval preloading.
- ``cluster MODEL`` — replay a Poisson trace against an autoscaled pool.
- ``fleet MODEL`` — replay arrivals across a multi-region fleet with
  warm-pool routing, per-tenant traffic classes and autoscaling;
  ``--frontier`` runs the scale-to-zero frontier sweep instead
  (Baseline vs PaSK vs PaSK+restore, gated on the p99 SLO).
- ``chaos MODEL`` — the same stack under seeded fault injection:
  load/launch faults with retry, loader stalls with reactive fallback,
  and instance crash/restart churn during a trace replay.
  ``--resilience`` runs the curated chaos comparison instead (crash-
  heavy and overload scenarios without/with the resilience policy),
  gated on availability and p99.
- ``bench`` — run a curated benchmark grid through the parallel engine
  (``--jobs``) with the on-disk result cache, emit a machine-readable
  ``BENCH_<timestamp>.json`` and optionally gate against a baseline.
- ``profile`` — measure simulator throughput: wall-clock per simulated
  request on a cluster replay, peak retained trace records, raw
  event-kernel throughput, and the causal-span telemetry overhead
  (off vs on wall-clock).
- ``trace export`` — run one instrumented cold start and write a
  Chrome/Perfetto ``trace.json`` (open in https://ui.perfetto.dev),
  optionally with the cold-start attribution report.
- ``metrics`` — run an instrumented cold serve plus a small cluster
  replay and dump the merged metrics registry as Prometheus text or
  JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.schemes import Scheme
from repro.models import MODEL_INFO, list_models
from repro.report import format_table
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.experiments import DEFAULT_BATCHES, ExperimentSuite
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer

__all__ = ["main", "build_parser"]

_SCHEMES = {s.label.lower(): s for s in Scheme}
_EXPERIMENTS = ("fig1a", "fig1b", "fig6a", "fig6b", "table2", "fig7",
                "fig8", "fig9")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PASK (DAC 2025) reproduction: cold-start experiments "
                    "on a simulated GPU inference stack.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table I model zoo")

    serve = sub.add_parser("serve", help="run one cold (or hot) request")
    serve.add_argument("model", help="model abbreviation (e.g. res)")
    serve.add_argument("--scheme", default="baseline",
                       choices=sorted(_SCHEMES),
                       help="serving scheme (default: baseline)")
    serve.add_argument("--batch", type=int, default=1)
    serve.add_argument("--device", default="MI100",
                       choices=["MI100", "A100", "6900XT"])
    serve.add_argument("--hot", action="store_true",
                       help="run a successive-iteration (hot) request")
    serve.add_argument("--timeline", action="store_true",
                       help="render an ASCII Gantt of the execution")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper figure/table")
    experiment.add_argument("name", choices=_EXPERIMENTS + ("all",))
    experiment.add_argument("--device", default="MI100",
                            choices=["MI100", "A100", "6900XT"])
    experiment.add_argument("--jobs", type=int, default=1,
                            help="prewarm the experiment grid through the "
                                 "parallel runner with this many worker "
                                 "processes (default: serial)")
    experiment.add_argument("--cache-dir", default=None,
                            help="reuse/populate an on-disk result cache "
                                 "at this path while prewarming")

    session = sub.add_parser("session",
                             help="consecutive requests on one instance")
    session.add_argument("model")
    session.add_argument("--requests", type=int, default=3)
    session.add_argument("--interval-ms", type=float, default=50.0)
    session.add_argument("--no-preload", action="store_true",
                         help="disable Sec. VI interval preloading")
    session.add_argument("--device", default="MI100",
                         choices=["MI100", "A100", "6900XT"])

    cluster = sub.add_parser("cluster",
                             help="replay a Poisson trace on a pool")
    cluster.add_argument("model")
    cluster.add_argument("--scheme", default="baseline",
                         choices=sorted(_SCHEMES))
    cluster.add_argument("--rate", type=float, default=20.0,
                         help="requests per second")
    cluster.add_argument("--duration", type=float, default=4.0)
    cluster.add_argument("--keep-alive", type=float, default=0.5)
    cluster.add_argument("--instances", type=int, default=4)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--device", default="MI100",
                         choices=["MI100", "A100", "6900XT"])
    cluster.add_argument("--trace-retention", default=None,
                         choices=["full", "aggregate"],
                         help="record request-level trace intervals "
                              "(aggregate keeps streaming metrics plus a "
                              "bounded ring of recent records)")
    cluster.add_argument("--no-fast-forward", action="store_true",
                         help="disable the steady-state fast path "
                              "(results are identical; this is a perf "
                              "comparison knob)")

    fleet = sub.add_parser(
        "fleet", help="replay a trace across a multi-region fleet with "
                      "routing and autoscaling (--frontier runs the "
                      "scale-to-zero frontier sweep instead)")
    fleet.add_argument("model", nargs="?", default="res")
    fleet.add_argument("--scheme", default="pask", choices=sorted(_SCHEMES))
    fleet.add_argument("--devices", default="MI100,A100",
                       help="comma-separated region devices, one region "
                            "per entry (default: MI100,A100)")
    fleet.add_argument("--routing", default="warm-first",
                       choices=["single", "round-robin", "least-queue",
                                "warm-first"])
    fleet.add_argument("--autoscale", default="none",
                       choices=["none", "fixed", "scale-to-zero",
                                "reactive", "predictive"],
                       help="autoscaling policy kind (default: none)")
    fleet.add_argument("--idle-timeout", type=float, default=None,
                       help="idle reclaim timeout override in seconds "
                            "(required for scale-to-zero)")
    fleet.add_argument("--min-instances", type=int, default=0,
                       help="warm floor pinned during reclaim")
    fleet.add_argument("--checkpoint-restore", action="store_true",
                       help="scale-up spawns restore a warm-state "
                            "checkpoint instead of cold-starting")
    fleet.add_argument("--arrival", default="poisson",
                       choices=["poisson", "diurnal", "bursty"])
    fleet.add_argument("--rate", type=float, default=4.0,
                       help="base arrival rate in requests per second")
    fleet.add_argument("--peak-rate", type=float, default=None,
                       help="diurnal peak / bursty burst rate "
                            "(default: derived from --rate)")
    fleet.add_argument("--period", type=float, default=None,
                       help="diurnal period / burst spacing in seconds")
    fleet.add_argument("--burst", type=float, default=None,
                       help="burst duration in seconds (bursty arrival)")
    fleet.add_argument("--duration", type=float, default=30.0)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--tenants", type=int, default=1,
                       help="split traffic into N tenant classes "
                            "(independent seeded substreams at rate/N)")
    fleet.add_argument("--instances", type=int, default=2,
                       help="max instances per region")
    fleet.add_argument("--keep-alive", type=float, default=0.5)
    fleet.add_argument("--shed-wait", type=float, default=None,
                       help="shed arrivals whose predicted queueing "
                            "delay exceeds this bound")
    fleet.add_argument("--crash-rate", type=float, default=0.0,
                       help="per-second instance crash rate in every "
                            "region (seeded)")
    fleet.add_argument("--frontier", action="store_true",
                       help="run the scale-to-zero frontier sweep "
                            "(Baseline vs PaSK vs PaSK+restore) instead "
                            "of a single scenario")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes: shards the replay by "
                            "region (results byte-identical to serial) "
                            "and parallelizes the --frontier sweep")
    fleet.add_argument("--verify-serial", action="store_true",
                       help="also run the serial simulator and check the "
                            "sharded replay is byte-identical (CI gate)")
    fleet.add_argument("--telemetry", action="store_true",
                       help="record control-plane decision spans and "
                            "evaluate SLO burn-rate monitors during the "
                            "replay (simulated results are unchanged)")
    fleet.add_argument("--slo-availability", type=float, default=0.999,
                       metavar="FRAC",
                       help="availability SLO target for --telemetry "
                            "(default: 0.999)")
    fleet.add_argument("--slo-p99-ms", type=float, default=None,
                       help="p99 latency SLO in milliseconds; adds the "
                            "p99 monitor (--telemetry)")
    fleet.add_argument("--slo-cold-rate", type=float, default=None,
                       metavar="FRAC",
                       help="cold-serve rate SLO; adds the cold-rate "
                            "monitor (--telemetry)")
    fleet.add_argument("--slo-window", type=float, default=5.0,
                       help="sliding monitor window in simulated seconds "
                            "(default: 5)")
    fleet.add_argument("--slo-burn", type=float, default=1.0,
                       help="availability burn-rate firing threshold "
                            "(default: 1.0 = burning exactly the budget)")
    fleet.add_argument("--metrics", default=None,
                       choices=["prom", "json"],
                       help="collect labeled fleet metrics and dump the "
                            "registry in this format")
    fleet.add_argument("--metrics-output", default=None, metavar="FILE",
                       help="write the --metrics dump here instead of "
                            "stdout")
    fleet.add_argument("--device", default="MI100",
                       choices=["MI100", "A100", "6900XT"],
                       help="device for the --frontier sweep")
    fleet.add_argument("--output", default=None, metavar="FILE",
                       help="write the --frontier report (BENCH-shaped "
                            "JSON with a 'fleet_frontier' section) here")

    validate = sub.add_parser(
        "validate", help="check the reproduction's acceptance criteria")
    validate.add_argument("--device", default="MI100",
                          choices=["MI100", "A100", "6900XT"])

    chaos = sub.add_parser(
        "chaos", help="run the serving stack under seeded fault injection")
    chaos.add_argument("model")
    chaos.add_argument("--scheme", default="pask", choices=sorted(_SCHEMES))
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--load-failure-rate", type=float, default=0.15)
    chaos.add_argument("--launch-failure-rate", type=float, default=0.05)
    chaos.add_argument("--stall-rate", type=float, default=0.20,
                       help="loader-thread stall probability per layer")
    chaos.add_argument("--stall-ms", type=float, default=2.0)
    chaos.add_argument("--load-timeout-ms", type=float, default=1.0,
                       help="loader gives up and falls back to the "
                            "reactive path beyond this stall")
    chaos.add_argument("--crash-rate", type=float, default=0.08,
                       help="instance crash probability per request")
    chaos.add_argument("--rate", type=float, default=20.0,
                       help="cluster replay: requests per second")
    chaos.add_argument("--duration", type=float, default=4.0)
    chaos.add_argument("--instances", type=int, default=4)
    chaos.add_argument("--keep-alive", type=float, default=0.5)
    chaos.add_argument("--device", default="MI100",
                       choices=["MI100", "A100", "6900XT"])
    chaos.add_argument("--timeline", action="store_true",
                       help="render the faulted cold start as a Gantt")
    chaos.add_argument("--resilience", action="store_true",
                       help="run the curated chaos comparison instead: "
                            "crash-heavy and overload scenarios without/"
                            "with the resilience policy, gated on "
                            "availability and p99")
    chaos.add_argument("--packs", action="store_true",
                       help="run the kernel-pack degradation ladder "
                            "instead: no-packs/healthy/registry-outage/"
                            "fully-degraded legs, gated on cold-start "
                            "reduction, lossless degradation and byte "
                            "conservation")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --resilience/--packs "
                            "(default: 1, serial)")
    chaos.add_argument("--min-availability", type=float, default=None,
                       metavar="FRAC",
                       help="override the availability gate for "
                            "--resilience/--packs (default: 0.999)")
    chaos.add_argument("--output", default=None, metavar="FILE",
                       help="write the --resilience/--packs comparison "
                            "report (BENCH-shaped JSON with a 'chaos'/"
                            "'packs' section) to this path")

    bench = sub.add_parser(
        "bench", help="run the benchmark grid through the parallel engine "
                      "and emit a BENCH_<timestamp>.json perf report")
    bench.add_argument("--quick", action="store_true",
                       help="run the small smoke grid instead of the full "
                            "device/model/scheme/batch grid")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1, serial)")
    bench.add_argument("--no-cache", action="store_true",
                       help="bypass cache reads (results are still "
                            "written back)")
    bench.add_argument("--cache-dir", default=".repro-cache",
                       help="on-disk result cache location "
                            "(default: .repro-cache)")
    bench.add_argument("--output", default=".", metavar="DIR",
                       help="directory for the BENCH_*.json report "
                            "(default: current directory)")
    bench.add_argument("--no-report", action="store_true",
                       help="skip writing the BENCH_*.json file")
    bench.add_argument("--baseline", default=None, metavar="FILE",
                       help="compare against this BENCH_*.json and exit "
                            "nonzero on regression beyond the tolerance")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="relative regression tolerance for --baseline "
                            "(default: 0.05)")
    bench.add_argument("--trace-retention", default=None,
                       choices=["full", "aggregate"],
                       help="record request-level traces on the cluster "
                            "cells (default: off)")
    bench.add_argument("--cluster-scale", type=float, default=1.0,
                       help="multiply the cluster cells' trace duration, "
                            "scaling the simulated request count "
                            "(default: 1.0)")
    bench.add_argument("--metrics", action="store_true",
                       help="collect telemetry metrics per cell and add "
                            "a merged 'metrics' section to the report")
    bench.add_argument("--resilience", action="store_true",
                       help="add the resilience dimension: every cluster "
                            "cell also runs with the default "
                            "ResiliencePolicy attached ('/rz' cells)")
    bench.add_argument("--fleet", action="store_true",
                       help="add the fleet dimension: multi-region "
                            "scale-to-zero cells over a bursty arrival "
                            "process ('fleet/' cells)")
    bench.add_argument("--slo", action="store_true",
                       help="attach SLO burn-rate monitors to the fleet "
                            "cells (needs --fleet) and add a 'monitors' "
                            "section to the report")

    profile = sub.add_parser(
        "profile", help="measure simulator throughput: wall-clock per "
                        "simulated request, peak retained trace records "
                        "and event-kernel throughput")
    profile.add_argument("model", nargs="?", default="res")
    profile.add_argument("--scheme", default="pask",
                         choices=sorted(_SCHEMES))
    profile.add_argument("--requests", type=int, default=100_000,
                         help="target simulated request count "
                              "(default: 100000)")
    profile.add_argument("--rate", type=float, default=20.0,
                         help="requests per second (default: 20)")
    profile.add_argument("--instances", type=int, default=4)
    profile.add_argument("--keep-alive", type=float, default=0.5)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--trace-retention", default="aggregate",
                         choices=["none", "full", "aggregate"],
                         help="trace retention during the replay "
                              "(default: aggregate)")
    profile.add_argument("--no-fast-forward", action="store_true",
                         help="disable the steady-state fast path for "
                              "comparison")
    profile.add_argument("--events", type=int, default=100_000,
                         help="timeout-chain length for the event-kernel "
                              "microbench (default: 100000)")
    profile.add_argument("--device", default="MI100",
                         choices=["MI100", "A100", "6900XT"])
    profile.add_argument("--telemetry-requests", type=int, default=3,
                         help="cold serves per leg of the telemetry "
                              "off-vs-on overhead comparison "
                              "(default: 3; 0 skips it); with --fleet: "
                              "fleet arrivals per leg (floor 2000)")
    profile.add_argument("--fleet", action="store_true",
                         help="profile the sharded fleet replay instead "
                              "of the single-cluster path")
    profile.add_argument("--packs", action="store_true",
                         help="profile spin-up strategies instead: "
                              "pack restore vs checkpoint restore vs "
                              "cold load on a scale-to-zero replay")
    profile.add_argument("--scale", type=int, default=1_000_000,
                         help="target request count for --fleet "
                              "(default: 1000000)")
    profile.add_argument("--regions", type=int, default=4,
                         help="fleet regions for --fleet (default: 4)")
    profile.add_argument("--jobs", type=int, default=1,
                         help="shard worker processes for --fleet")
    profile.add_argument("--routing", default="round-robin",
                         choices=["single", "round-robin", "least-queue",
                                  "warm-first"],
                         help="fleet routing policy for --fleet")
    profile.add_argument("--compare-serial", action="store_true",
                         help="also time the serial fleet replay and "
                              "report the sharded speedup (--fleet)")

    trace = sub.add_parser(
        "trace", help="causal-span telemetry: export Perfetto traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="run one instrumented cold start and write a "
                       "Chrome/Perfetto trace.json")
    export.add_argument("model", nargs="?", default="res",
                        help="model abbreviation (default: res)")
    export.add_argument("--scheme", default="pask",
                        choices=sorted(_SCHEMES))
    export.add_argument("--batch", type=int, default=1)
    export.add_argument("--device", default="MI100",
                        choices=["MI100", "A100", "6900XT"])
    export.add_argument("--output", default="trace.json", metavar="FILE",
                        help="output path (default: trace.json)")
    export.add_argument("--validate", action="store_true",
                        help="structurally validate the exported payload "
                             "and exit nonzero on problems")
    export.add_argument("--attribution", action="store_true",
                        help="print the cold-start attribution report "
                             "(per-phase critical path, load bytes)")
    export.add_argument("--fleet", action="store_true",
                        help="export the time-warp flight-recorder view "
                             "of a sharded two-region fleet replay "
                             "instead of a cold start (one Perfetto "
                             "track per shard: optimistic / rolled-back "
                             "/ committed windows)")
    export.add_argument("--rate", type=float, default=120.0,
                        help="fleet arrival rate for --fleet "
                             "(default: 120)")
    export.add_argument("--duration", type=float, default=4.0,
                        help="fleet trace duration for --fleet "
                             "(default: 4)")
    export.add_argument("--seed", type=int, default=0,
                        help="arrival stream seed for --fleet")

    metrics = sub.add_parser(
        "metrics", help="run an instrumented serve + cluster replay and "
                        "dump the metrics registry")
    metrics.add_argument("model", nargs="?", default="res")
    metrics.add_argument("--scheme", default="pask",
                         choices=sorted(_SCHEMES))
    metrics.add_argument("--device", default="MI100",
                         choices=["MI100", "A100", "6900XT"])
    metrics.add_argument("--rate", type=float, default=20.0,
                         help="cluster replay requests per second")
    metrics.add_argument("--duration", type=float, default=2.0)
    metrics.add_argument("--instances", type=int, default=4)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--format", default="prom",
                         choices=["prom", "json"],
                         help="dump format (default: prom, the "
                              "Prometheus text exposition)")
    metrics.add_argument("--output", default=None, metavar="FILE",
                         help="write the dump here instead of stdout")
    return parser


def _cmd_models(out) -> int:
    rows = []
    for abbr in list_models():
        info = MODEL_INFO[abbr]
        rows.append([abbr, info.full_name, info.model_type,
                     info.paper_primitive_layers])
    out(format_table(["abbr", "model", "type", "# primitive layers (paper)"],
                     rows, title="Table I model zoo"))
    return 0


def _cmd_serve(args, out) -> int:
    server = InferenceServer(args.device)
    if args.hot:
        result = server.serve_hot(args.model, args.batch)
        out(f"{args.model} hot run on {args.device}: "
            f"{result.total_time * 1e3:.2f} ms")
        return 0
    scheme = _SCHEMES[args.scheme]
    result = server.serve_cold(args.model, scheme, args.batch)
    out(f"{args.model} cold start under {scheme.label} on {args.device} "
        f"(batch {args.batch}): {result.total_time * 1e3:.2f} ms")
    out(f"  loads: {result.loads}  gpu utilization: "
        f"{result.gpu_utilization:.1%}")
    if result.cache_stats and result.cache_stats.queries:
        out(f"  reuse: {result.reused_layers} layers, hit rate "
            f"{result.cache_stats.hit_rate:.0%}, "
            f"{result.cache_stats.lookups_per_query:.2f} lookups/query, "
            f"milestone layer {result.milestone}")
    if args.timeline:
        from repro.report import render_timeline
        out("")
        out(render_timeline(result.trace, total_time=result.total_time))
    return 0


def _render_experiment(suite: ExperimentSuite, name: str, out) -> None:
    if name == "fig1a":
        data = suite.fig1a()
        models = suite.models + ["average"]
        rows = [[m] + [data[d][m] for d in data] for m in models]
        out(format_table(["model"] + list(data), rows,
                         title="Fig 1(a): cold/hot slowdown", precision=1))
        return
    if name == "table2":
        data = suite.table2(batches=DEFAULT_BATCHES)
        rows = [[s] + [data[s][b] for b in DEFAULT_BATCHES] for s in data]
        out(format_table(["scheme"] + [str(b) for b in DEFAULT_BATCHES],
                         rows, title="Table II: speedup vs batch size"))
        return
    runner = getattr(suite, name)
    data = runner()
    if name in ("fig6a", "fig6b", "fig8"):
        models = suite.models + ["average"]
        rows = [[m] + [data[s][m] for s in data] for m in models]
        out(format_table(["model"] + list(data), rows, title=name,
                         precision=3 if name == "fig6b" else 2))
        return
    # fig1b / fig7 / fig9: per-model dicts of metrics.
    metrics = list(next(iter(data.values())))
    rows = [[m] + [data[m][k] for k in metrics] for m in data]
    out(format_table(["model"] + metrics, rows, title=name, precision=3))


def _cmd_experiment(args, out) -> int:
    suite = ExperimentSuite(args.device)
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    if jobs > 1 or cache_dir is not None:
        from repro.runner import ResultCache
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        stats = suite.prewarm(jobs=jobs, cache=cache)
        out(f"prewarmed {stats.tasks} cells with {stats.jobs} jobs in "
            f"{stats.wall_s:.2f}s ({stats.hits} cache hits, "
            f"{stats.executed} executed)")
        out("")
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        _render_experiment(suite, name, out)
        out("")
    return 0


def _cmd_bench(args, out) -> int:
    from repro.runner import run_bench
    resilience = None
    if args.resilience:
        from repro.serving.resilience import ResiliencePolicy
        resilience = ResiliencePolicy()
    slo = None
    if args.slo:
        if not args.fleet:
            out("--slo needs --fleet (monitors attach to the fleet cells)")
            return 2
        from repro.obs.monitors import SLOPolicy
        # Tight enough that a Baseline fleet cell's cold starts show up
        # as burn-rate alerts while PASK stays quiet.
        slo = SLOPolicy(p99_target_s=1.0, cold_rate_target=0.5,
                        window_s=2.0)
    report = run_bench(
        grid="quick" if args.quick else "full",
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        out_dir=args.output,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        write=not args.no_report,
        trace_retention=args.trace_retention,
        cluster_scale=args.cluster_scale,
        collect_metrics=args.metrics,
        resilience=resilience,
        fleet=args.fleet,
        slo=slo,
        echo=out,
    )
    return 0 if report.ok else 1


def _cmd_profile_packs(args, out) -> int:
    from repro.runner import profile_packs
    profile = profile_packs(
        device=args.device, model=args.model,
        scheme=_SCHEMES[args.scheme],
        requests=min(args.requests, 50_000), rate_hz=args.rate,
        instances=args.instances, seed=args.seed)
    out(f"spin-up profile: {profile.requests} requests of "
        f"{args.model!r} under {_SCHEMES[args.scheme].label} on "
        f"{args.device}, scale-to-zero pool")
    out(f"  cold load:          wall {profile.wall_cold_s:.3f}s, "
        f"{profile.cold_starts} cold starts, mean latency "
        f"{profile.mean_latency_cold_s * 1e3:.3f} ms")
    out(f"  checkpoint restore: wall {profile.wall_checkpoint_s:.3f}s, "
        f"{profile.checkpoint_restores} restores, mean latency "
        f"{profile.mean_latency_checkpoint_s * 1e3:.3f} ms")
    out(f"  pack restore:       wall {profile.wall_pack_s:.3f}s, "
        f"{profile.pack_restores} restores "
        f"({profile.pack_bytes:,} bytes verified), mean latency "
        f"{profile.mean_latency_pack_s * 1e3:.3f} ms")
    out(f"  modeled speedup: {profile.modeled_speedup_vs_cold:.2f}x vs "
        f"cold, {profile.modeled_speedup_vs_checkpoint:.2f}x vs "
        f"checkpoint")
    return 0


def _cmd_profile(args, out) -> int:
    from repro.runner import profile_cluster, profile_event_kernel
    if args.fleet:
        return _cmd_profile_fleet(args, out)
    if args.packs:
        return _cmd_profile_packs(args, out)
    retention = (None if args.trace_retention == "none"
                 else args.trace_retention)
    cluster = profile_cluster(
        device=args.device, model=args.model,
        scheme=_SCHEMES[args.scheme], requests=args.requests,
        rate_hz=args.rate, instances=args.instances,
        keep_alive_s=args.keep_alive, seed=args.seed,
        trace_retention=retention,
        fast_forward=not args.no_fast_forward)
    out(f"cluster replay: {cluster.requests} requests of {args.model!r} "
        f"under {_SCHEMES[args.scheme].label} on {args.device}")
    out(f"  wall-clock: {cluster.wall_s:.3f}s total, "
        f"{cluster.wall_per_request_s * 1e6:.2f} us/request "
        f"({cluster.requests_per_s:,.0f} requests/s)")
    out(f"  fast-forwarded: {cluster.fast_forwarded} requests "
        f"({cluster.fast_forward_fraction:.1%}); "
        f"cold starts: {cluster.cold_starts}")
    out(f"  trace: {cluster.trace_records} records, peak retained "
        f"{cluster.peak_retained_records} "
        f"(retention {args.trace_retention})")
    out(f"  mean latency: {cluster.mean_latency_s * 1e3:.3f} ms")
    kernel = profile_event_kernel(events=args.events)
    out(f"event kernel: {kernel.events} events in {kernel.wall_s:.3f}s "
        f"({kernel.events_per_s:,.0f} events/s)")
    if args.telemetry_requests > 0:
        from repro.runner import profile_telemetry
        telemetry = profile_telemetry(
            device=args.device, model=args.model,
            scheme=_SCHEMES[args.scheme],
            requests=args.telemetry_requests)
        out(f"telemetry overhead ({telemetry.requests} cold serves "
            f"per leg):")
        out(f"  off: {telemetry.per_request_off_s * 1e3:.2f} ms/request  "
            f"on: {telemetry.per_request_on_s * 1e3:.2f} ms/request "
            f"({telemetry.overhead_fraction:+.1%}, "
            f"{telemetry.spans_per_request} spans/request)")
    return 0


def _cmd_profile_fleet(args, out) -> int:
    from repro.runner import profile_fleet
    fleet = profile_fleet(
        device=args.device, model=args.model,
        scheme=_SCHEMES[args.scheme], requests=args.scale,
        rate_hz=args.rate, regions=args.regions,
        instances=args.instances, keep_alive_s=args.keep_alive,
        routing=args.routing, seed=args.seed, jobs=args.jobs,
        compare_serial=args.compare_serial)
    out(f"fleet replay: {fleet.requests} requests of {args.model!r} "
        f"under {_SCHEMES[args.scheme].label} across {fleet.regions} "
        f"region(s), {args.routing} routing, {fleet.jobs} job(s) "
        f"({fleet.mode} mode)")
    out(f"  wall-clock: {fleet.wall_s:.3f}s total, "
        f"{fleet.wall_per_request_s * 1e6:.2f} us/request "
        f"({fleet.requests_per_s:,.0f} requests/s)")
    out(f"  fast-forwarded: {fleet.fast_forwarded} requests "
        f"({fleet.fast_forward_fraction:.1%}); "
        f"rounds {fleet.rounds}, rollbacks {fleet.rollbacks}")
    if fleet.mode == "time-warp":
        rounds = ", ".join(f"{wall * 1e3:.1f}" for wall in fleet.round_wall_s)
        out(f"  flight recorder: max rollback depth "
            f"{fleet.max_rollback_depth}, resimulated "
            f"{fleet.resimulated} requests, round wall [{rounds}] ms")
    if fleet.region_wall_s:
        shards = ", ".join(f"{name} {wall:.3f}s"
                           for name, wall in fleet.region_wall_s.items())
        out(f"  shard wall-clock: {shards}")
    out(f"  mean latency: {fleet.mean_latency_s * 1e3:.3f} ms")
    if args.compare_serial:
        out(f"  serial replay: {fleet.serial_wall_s:.3f}s "
            f"({fleet.speedup:.1f}x speedup sharded)")
    if args.telemetry_requests > 0:
        from repro.runner import profile_fleet_telemetry
        requests = max(2000, args.telemetry_requests)
        telemetry = profile_fleet_telemetry(
            device=args.device, model=args.model,
            scheme=_SCHEMES[args.scheme], requests=requests,
            rate_hz=args.rate, regions=args.regions,
            instances=args.instances,
            keep_alive_s=args.keep_alive, routing=args.routing,
            seed=args.seed, jobs=args.jobs)
        out(f"fleet telemetry overhead ({telemetry.requests} requests "
            f"per leg, {telemetry.mode} mode):")
        out(f"  off: {telemetry.per_request_off_s * 1e6:.2f} us/request  "
            f"on: {telemetry.per_request_on_s * 1e6:.2f} us/request "
            f"({telemetry.overhead_fraction:+.1%}; {telemetry.spans} "
            f"spans, {telemetry.alerts} alerts)")
    return 0


def _cmd_trace_fleet(args, out) -> int:
    """``trace export --fleet``: the flight-recorder Perfetto view of a
    sharded two-region time-warp replay."""
    from repro.fleet import (FleetConfig, RegionConfig, RoutingPolicy,
                             run_fleet_sharded)
    from repro.obs import FlightRecorder, validate_trace, write_trace

    scheme = _SCHEMES[args.scheme]
    config = FleetConfig(
        regions=(RegionConfig(name="us-east", device=args.device,
                              scheme=scheme, max_instances=4),
                 RegionConfig(name="eu-west", device="MI100",
                              scheme=scheme, max_instances=2)),
        routing=RoutingPolicy("warm-first"))
    trace = poisson_trace(args.model, args.rate, args.duration,
                          seed=args.seed)
    flight = FlightRecorder()
    stats, report = run_fleet_sharded(config, trace, flight=flight)
    payload = write_trace(
        args.output, flight.to_spans(), device="fleet",
        metadata={"model": args.model, "scheme": scheme.label,
                  "mode": report.mode, "rounds": report.rounds,
                  "rollbacks": report.rollbacks,
                  "resimulated": report.resimulated,
                  "requests": stats.offered})
    summary = flight.summary()
    out(f"fleet flight recorder: {stats.offered} requests across "
        f"{len(config.regions)} regions ({report.mode} mode)")
    out(f"  rounds {summary['rounds']}, rollbacks {summary['rollbacks']}, "
        f"max rollback depth {summary['max_rollback_depth']}, "
        f"resimulated {summary['resimulated']}; "
        f"verified prefix per round {summary['verified_prefix']}")
    out(f"  wrote {args.output}: {len(payload['traceEvents'])} events "
        f"(one track per shard: optimistic / rolled-back / committed)")
    out("  open in https://ui.perfetto.dev or chrome://tracing")
    if args.validate:
        problems = validate_trace(payload)
        if problems:
            out("")
            out("  INVALID trace:")
            for problem in problems:
                out(f"    {problem}")
            return 1
        out("  trace validated: required keys, monotonic ts per tid, "
            "matched flow pairs")
    return 0


def _cmd_trace(args, out) -> int:
    # Only subcommand so far: export.
    if args.fleet:
        return _cmd_trace_fleet(args, out)
    from repro.obs import (SpanRecorder, attribute_request, spans_summary,
                           validate_trace, write_trace)
    scheme = _SCHEMES[args.scheme]
    server = InferenceServer(args.device)
    spans = SpanRecorder()
    result = server.serve_cold(args.model, scheme, args.batch, spans=spans)
    payload = write_trace(
        args.output, list(spans), device=args.device,
        metadata={"model": args.model, "scheme": scheme.label,
                  "batch": args.batch,
                  "total_time_s": result.total_time})
    counts = spans_summary(spans)
    out(f"{args.model} cold start under {scheme.label} on {args.device}: "
        f"{result.total_time * 1e3:.2f} ms")
    out(f"  wrote {args.output}: {len(payload['traceEvents'])} events "
        f"({', '.join(f'{v} {k}' for k, v in counts.items())})")
    out("  open in https://ui.perfetto.dev or chrome://tracing")
    if args.attribution:
        for request in spans.requests():
            verdict = attribute_request(list(spans), request)
            out("")
            out(f"  attribution of {request.name!r} "
                f"({verdict.total_time * 1e3:.2f} ms):")
            for name, seconds in verdict.components().items():
                out(f"    {name:<10} {seconds * 1e3:8.3f} ms  "
                    f"({verdict.fractions()[name]:6.1%})")
            out(f"    critical-path loads: {len(verdict.critical_loads)} "
                f"code objects, {verdict.critical_load_bytes} bytes")
    if args.validate:
        problems = validate_trace(payload)
        if problems:
            out("")
            out("  INVALID trace:")
            for problem in problems:
                out(f"    {problem}")
            return 1
        out("  trace validated: required keys, monotonic ts per tid, "
            "matched flow pairs")
    return 0


def _cmd_metrics(args, out) -> int:
    from repro.obs import MetricsRegistry, SpanRecorder
    scheme = _SCHEMES[args.scheme]
    server = InferenceServer(args.device)
    registry = MetricsRegistry()
    server.serve_cold(args.model, scheme, spans=SpanRecorder(),
                      metrics=registry)
    trace = poisson_trace(args.model, args.rate, args.duration,
                          seed=args.seed)
    config = ClusterConfig(scheme=scheme, max_instances=args.instances)
    ClusterSimulator(server, config, metrics=registry).run(trace)
    if args.format == "json":
        import json
        dump = json.dumps(registry.to_json(), indent=2, sort_keys=True)
    else:
        dump = registry.to_prometheus()
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump)
            if not dump.endswith("\n"):
                handle.write("\n")
        out(f"wrote {args.output} ({args.format}): one cold serve plus "
            f"{len(trace)} replayed requests of {args.model!r} "
            f"under {scheme.label}")
    else:
        out(dump)
    return 0


def _cmd_session(args, out) -> int:
    server = InferenceServer(args.device)
    results = server.serve_session(
        args.model, Scheme.PASK, n_requests=args.requests,
        interval_s=args.interval_ms / 1e3,
        interval_preload=not args.no_preload)
    rows = [[f"request {r.metadata['request']}", r.total_time * 1e3,
             r.loads, r.reused_layers] for r in results]
    mode = "off" if args.no_preload else "on"
    out(format_table(["", "latency ms", "loads", "reused"], rows,
                     title=f"{args.model}: PASK session "
                           f"(interval preload {mode})"))
    return 0


def _cmd_cluster(args, out) -> int:
    server = InferenceServer(args.device)
    scheme = _SCHEMES[args.scheme]
    trace = poisson_trace(args.model, args.rate, args.duration,
                          seed=args.seed)
    config = ClusterConfig(scheme=scheme, max_instances=args.instances,
                           keep_alive_s=args.keep_alive,
                           trace_retention=args.trace_retention,
                           fast_forward=not args.no_fast_forward)
    stats = ClusterSimulator(server, config).run(trace)
    out(f"{len(trace)} requests of {args.model!r} under {scheme.label} "
        f"({args.instances} instances, keep-alive {args.keep_alive}s):")
    out(f"  cold starts: {stats.cold_starts} "
        f"({stats.cold_start_fraction:.0%})")
    out(f"  latency mean {stats.mean_latency * 1e3:.2f} ms, "
        f"p50 {stats.percentile(0.5) * 1e3:.2f} ms, "
        f"p99 {stats.percentile(0.99) * 1e3:.2f} ms")
    if stats.fast_forwarded:
        out(f"  fast-forwarded: {stats.fast_forwarded} requests "
            f"({stats.fast_forwarded / max(1, stats.requests):.0%})")
    if stats.trace is not None:
        out(f"  trace: {stats.trace.record_count} records "
            f"({stats.trace.retained_records} retained, "
            f"retention {stats.trace.retention})")
    return 0


def _cmd_fleet_frontier(args, out) -> int:
    import json

    from repro.runner import fleet_frontier_report

    report = fleet_frontier_report(device=args.device, model=args.model,
                                   jobs=args.jobs)
    frontier = report["fleet_frontier"]
    out(f"scale-to-zero frontier on {frontier['device']}/"
        f"{frontier['model']}: p99 SLO {frontier['slo_p99_s'] * 1e3:.2f} ms "
        f"({frontier['slo_multiplier']:g}x warm), availability >= "
        f"{frontier['min_availability']:.4%}")
    for row in frontier["sweep"]:
        mark = "ok " if row["meets_slo"] else "MISS"
        out(f"  [{mark}] {row['leg']:<12s} T={row['idle_timeout_s']:<4g} "
            f"p99 {row['p99_s'] * 1e3:7.2f} ms  "
            f"cold {row['cold_starts']:3d}  "
            f"restores {row['restores']:3d}  "
            f"avail {row['availability']:.4f}")
    for leg, value in frontier["frontiers"].items():
        shown = "none (never meets SLO)" if value is None else f"{value:g}s"
        out(f"frontier[{leg}] = {shown}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out(f"wrote {args.output}")
    verdict = frontier["pass"]
    out(f"verdict: {'PASS' if verdict else 'FAIL'} — PaSK "
        f"{'shifts' if verdict else 'does not shift'} the scale-to-zero "
        f"frontier below Baseline at equal availability")
    return 0 if verdict else 1


def _cmd_fleet(args, out) -> int:
    from repro.fleet import (AutoscalePolicy, FleetConfig, FleetSimulator,
                             RegionConfig, RoutingPolicy, merge_traces)
    from repro.serving import bursty_trace, diurnal_trace
    from repro.sim.faults import FaultPlan

    if args.frontier:
        return _cmd_fleet_frontier(args, out)

    scheme = _SCHEMES[args.scheme]
    devices = tuple(d.strip() for d in args.devices.split(",") if d.strip())
    if not devices:
        out("error: --devices needs at least one device")
        return 2
    if args.tenants < 1:
        out("error: --tenants must be >= 1")
        return 2

    rate = args.rate / args.tenants
    peak_default = {"diurnal": 4.0, "bursty": 8.0}.get(args.arrival, 1.0)
    peak = ((args.peak_rate if args.peak_rate is not None
             else peak_default * args.rate) / args.tenants)
    period = (args.period if args.period is not None
              else args.duration / (2.0 if args.arrival == "diurnal"
                                    else 4.0))

    def tenant_trace(seed: int):
        if args.arrival == "poisson":
            return poisson_trace(args.model, rate, args.duration, seed=seed)
        if args.arrival == "diurnal":
            return diurnal_trace(args.model, rate, peak, period,
                                 args.duration, seed=seed)
        burst_len = args.burst if args.burst is not None else period / 5.0
        return bursty_trace(args.model, rate, peak, period, burst_len,
                            args.duration, seed=seed)

    names = (["default"] if args.tenants == 1
             else [f"t{i}" for i in range(args.tenants)])
    trace = merge_traces([(name, tenant_trace(args.seed + i))
                          for i, name in enumerate(names)])

    try:
        autoscale = (None if args.autoscale == "none" else AutoscalePolicy(
            kind=args.autoscale, min_instances=args.min_instances,
            idle_timeout_s=args.idle_timeout,
            checkpoint_restore=args.checkpoint_restore))
    except ValueError as exc:
        out(f"error: {exc}")
        return 2
    regions = tuple(
        RegionConfig(name=f"r{i}", device=device, scheme=scheme,
                     max_instances=args.instances,
                     keep_alive_s=args.keep_alive,
                     faults=(FaultPlan(seed=args.seed + 1000 + i,
                                       crash_rate=args.crash_rate)
                             if args.crash_rate > 0 else None))
        for i, device in enumerate(devices))
    config = FleetConfig(regions=regions,
                         routing=RoutingPolicy(kind=args.routing),
                         autoscale=autoscale, shed_wait_s=args.shed_wait)
    metrics = spans = slo = None
    if args.telemetry or args.metrics is not None:
        from repro.obs import MetricsRegistry, SLOPolicy, SpanRecorder
        metrics = MetricsRegistry()
        if args.telemetry:
            spans = SpanRecorder()
            try:
                slo = SLOPolicy(
                    availability_target=args.slo_availability,
                    p99_target_s=(args.slo_p99_ms / 1e3
                                  if args.slo_p99_ms is not None
                                  else None),
                    cold_rate_target=args.slo_cold_rate,
                    window_s=args.slo_window,
                    burn_threshold=args.slo_burn)
            except ValueError as exc:
                out(f"error: {exc}")
                return 2
    report = None
    if args.jobs > 1 or args.verify_serial:
        from repro.fleet import equivalence_problems, run_fleet_sharded
        stats, report = run_fleet_sharded(config, trace, jobs=args.jobs,
                                          metrics=metrics, spans=spans,
                                          slo=slo)
    else:
        stats = FleetSimulator(config, metrics=metrics, spans=spans,
                               slo=slo).run(trace)

    out(f"{stats.offered} requests of {args.model!r} under {scheme.label} "
        f"across {len(regions)} region(s) "
        f"({args.routing} routing, autoscale {args.autoscale}, "
        f"{args.arrival} arrivals):")
    for region in stats.regions.values():
        line = (f"  {region.name} [{region.device}]: "
                f"{region.requests} served, "
                f"{region.cold_starts} cold, {region.warm_hits} warm, "
                f"{region.restores} restores")
        if region.failed or region.shed:
            line += f", {region.failed} failed, {region.shed} shed"
        if region.prewarm_spawns:
            line += f", {region.prewarm_spawns} prewarmed"
        if region.scale_ups or region.scale_downs:
            line += (f", scale {region.scale_ups} up / "
                     f"{region.scale_downs} down")
        out(line)
    if len(stats.tenants) > 1:
        for tenant in stats.tenants.values():
            out(f"  tenant {tenant.name}: {tenant.offered} offered, "
                f"{tenant.failed} failed, {tenant.shed} shed, "
                f"p99 {tenant.percentile(0.99) * 1e3:.2f} ms")
    if stats.shed_unroutable:
        out(f"  unroutable (all regions drained): "
            f"{stats.shed_unroutable} shed")
    out(f"  latency mean {stats.mean_latency * 1e3:.2f} ms, "
        f"p50 {stats.percentile(0.5) * 1e3:.2f} ms, "
        f"p99 {stats.percentile(0.99) * 1e3:.2f} ms")
    out(f"  availability {stats.availability:.4%}"
        + (" (delegated to the single-cluster fast path)"
           if stats.delegated else ""))
    if report is not None and report.mode != "delegated":
        out(f"  sharded replay: {report.mode} mode, {report.shards} "
            f"shard(s) x {report.jobs} job(s), {report.rounds} round(s), "
            f"{report.rollbacks} rollback(s)")
    if args.telemetry:
        from repro.obs import spans_summary
        counts = spans_summary(spans)
        summary = ", ".join(f"{v} {k}" for k, v in counts.items())
        out(f"  telemetry: {len(spans)} decision span(s)"
            + (f" ({summary})" if summary else ""))
        monitors = stats.monitors or {}
        for name, entry in monitors.get("monitors", {}).items():
            state = "FIRING" if entry["firing"] else "ok"
            out(f"  slo {name}: {state} — worst {entry['worst']:.4g} vs "
                f"threshold {entry['threshold']:.4g}, "
                f"fired {entry['fired']}x")
        alerts = monitors.get("alerts", [])
        for alert in alerts[:5]:
            out(f"    [{alert['state']}] {alert['monitor']} at "
                f"t={alert['t']:.3f}s (value {alert['value']:.4g})")
        if len(alerts) > 5:
            out(f"    ... {len(alerts) - 5} more alert(s)")
    if args.metrics is not None:
        if args.metrics == "json":
            import json
            dump = json.dumps(metrics.to_json(), indent=2, sort_keys=True)
        else:
            dump = metrics.to_prometheus()
        if args.metrics_output is not None:
            with open(args.metrics_output, "w", encoding="utf-8") as handle:
                handle.write(dump)
                if not dump.endswith("\n"):
                    handle.write("\n")
            out(f"  wrote {args.metrics_output} ({args.metrics})")
        else:
            out(dump)
    if not stats.conserved:
        out(f"error: conservation violated — offered {stats.offered} != "
            f"completed {stats.completed} + failed {stats.failed} + "
            f"shed {stats.shed}")
        return 1
    if args.verify_serial:
        problems = equivalence_problems(
            FleetSimulator(config, slo=slo).run(trace), stats)
        if problems:
            out(f"  serial equivalence: FAIL ({len(problems)} mismatched "
                f"field(s))")
            for problem in problems[:10]:
                out(f"    {problem}")
            return 1
        out("  serial equivalence: PASS (sharded replay byte-identical)")
    return 0


def _cmd_chaos_resilience(args, out) -> int:
    import json

    from repro.runner import chaos_report

    report = chaos_report(device=args.device, model=args.model,
                          jobs=args.jobs,
                          min_availability=args.min_availability)
    failures = 0
    for scenario in report["chaos"]["scenarios"]:
        verdict = "PASS" if scenario["pass"] else "FAIL"
        failures += not scenario["pass"]
        out(f"[{verdict}] {scenario['name']}: {scenario['description']}")
        out(f"  p99 {scenario['baseline_p99_s'] * 1e3:.2f} ms -> "
            f"{scenario['resilient_p99_s'] * 1e3:.2f} ms "
            f"({scenario['p99_speedup']:.1f}x); cold starts "
            f"{scenario['baseline_cold_starts']} -> "
            f"{scenario['resilient_cold_starts']}")
        out(f"  availability {scenario['availability']:.4%} "
            f"(gate {scenario['min_availability']:.4%}), "
            f"shed {scenario['shed']}")
        counters = scenario["resilient_faults"]
        if counters:
            interesting = {k: v for k, v in sorted(counters.items()) if v}
            if interesting:
                out("  counters: " + ", ".join(
                    f"{k}={v}" for k, v in interesting.items()))
        out("")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out(f"wrote {args.output}")
    out(f"{len(report['chaos']['scenarios']) - failures}/"
        f"{len(report['chaos']['scenarios'])} scenarios passed")
    return 1 if failures else 0


def _cmd_chaos_packs(args, out) -> int:
    import json

    from repro.runner import packs_report

    kwargs = dict(device=args.device, model=args.model, jobs=args.jobs)
    if args.min_availability is not None:
        kwargs["min_availability"] = args.min_availability
    report = packs_report(**kwargs)
    for leg in report["packs"]["legs"]:
        out(f"{leg['name']}: {leg['description']}")
        out(f"  cold starts {leg['cold_starts']}, pack restores "
            f"{leg['pack_restores']} (degraded-to-cold "
            f"{leg['degraded_cold']}, failover hits "
            f"{leg['failover_hits']})")
        out(f"  p99 {leg['p99_s'] * 1e3:.2f} ms, availability "
            f"{leg['availability']:.4%}, lost {leg['lost_requests']}, "
            f"{leg['bytes_fetched']:,} bytes fetched "
            f"(conserved: {leg['bytes_conserved']})")
        out("")
    gates = report["packs"]["gates"]
    for name in ("healthy_reduces_cold_starts",
                 "degraded_falls_back_to_cold", "bytes_conserved",
                 "no_lost_requests"):
        out(f"[{'PASS' if gates[name] else 'FAIL'}] {name}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out(f"wrote {args.output}")
    out("packs ladder: " + ("PASS" if gates["pass"] else "FAIL"))
    return 0 if gates["pass"] else 1


def _cmd_chaos(args, out) -> int:
    from repro.sim.faults import FaultPlan

    if args.resilience:
        return _cmd_chaos_resilience(args, out)
    if args.packs:
        return _cmd_chaos_packs(args, out)

    plan = FaultPlan(
        seed=args.seed,
        load_failure_rate=args.load_failure_rate,
        launch_failure_rate=args.launch_failure_rate,
        loader_stall_rate=args.stall_rate,
        loader_stall_s=args.stall_ms / 1e3,
        load_timeout_s=args.load_timeout_ms / 1e3,
        crash_rate=args.crash_rate,
    )
    scheme = _SCHEMES[args.scheme]
    server = InferenceServer(args.device)

    # One faulted cold start vs the fault-free reference.
    reference = server.serve_cold(args.model, scheme)
    result = server.serve_cold(args.model, scheme, faults=plan)
    counters = result.faults
    out(f"{args.model} cold start under {scheme.label} with faults "
        f"(seed {args.seed}):")
    status = "FAILED" if result.failed else "completed"
    out(f"  request {status}: {result.total_time * 1e3:.2f} ms "
        f"(fault-free {reference.total_time * 1e3:.2f} ms)")
    out(f"  load faults: {counters.load_faults}  "
        f"launch faults: {counters.launch_faults}  "
        f"retries: {counters.retries}")
    out(f"  loader stalls: {counters.loader_stalls}  "
        f"fallbacks to reactive path: {counters.fallbacks}")
    if args.timeline:
        from repro.report import render_timeline
        out("")
        out(render_timeline(result.trace, total_time=result.total_time))

    # Trace replay with instance crash/restart churn.
    trace = poisson_trace(args.model, args.rate, args.duration,
                          seed=args.seed)
    config = ClusterConfig(scheme=scheme, max_instances=args.instances,
                           keep_alive_s=args.keep_alive, faults=plan)
    stats = ClusterSimulator(server, config).run(trace)
    out("")
    out(f"{len(trace)} requests replayed on {args.instances} instances "
        f"with crash rate {args.crash_rate:g}:")
    out(f"  crashes: {stats.faults.crashes}  reroutes: "
        f"{stats.faults.reroutes}  explicitly failed: {stats.failed}")
    out(f"  availability: {stats.availability:.1%}  cold starts: "
        f"{stats.cold_starts} ({stats.cold_start_fraction:.0%})")
    if stats.latencies:
        out(f"  latency mean {stats.mean_latency * 1e3:.2f} ms, "
            f"p99 {stats.percentile(0.99) * 1e3:.2f} ms")
    lost = len(trace) - stats.requests
    if lost:
        out(f"  ERROR: {lost} requests lost (neither completed nor failed)")
        return 1
    out("  no lost requests: every request completed or explicitly failed")
    return 0


def _cmd_validate(args, out) -> int:
    from repro.serving.validation import validate
    suite = ExperimentSuite(args.device)
    outcomes = validate(suite)
    failures = 0
    for criterion, passed in outcomes:
        status = "PASS" if passed else "FAIL"
        failures += not passed
        out(f"[{status}] {criterion.name}: {criterion.description}")
    out("")
    out(f"{len(outcomes) - failures}/{len(outcomes)} criteria satisfied")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    def out(text: str = "") -> None:
        print(text)

    if args.command == "models":
        return _cmd_models(out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "session":
        return _cmd_session(args, out)
    if args.command == "cluster":
        return _cmd_cluster(args, out)
    if args.command == "fleet":
        return _cmd_fleet(args, out)
    if args.command == "validate":
        return _cmd_validate(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
