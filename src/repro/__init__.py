"""PASK reproduction: proactive and selective kernel loading on (simulated) GPUs.

This package reproduces "PASK: Cold Start Mitigation for Inference with
Proactive and Selective Kernel Loading on GPUs" (DAC 2025) as a deterministic
discrete-event simulation of the full inference software stack:

- :mod:`repro.sim` -- discrete-event simulation substrate (processes,
  channels, simulated clock, event tracing).
- :mod:`repro.gpu` -- GPU device models and a HIP-like runtime with lazy
  kernel code-object loading.
- :mod:`repro.tensors` / :mod:`repro.graph` -- tensor descriptors and an
  ONNX-like computation-graph representation.
- :mod:`repro.engine` -- a MIGraphX-like inference engine (lowering,
  optimization passes, lowered-program serialization, model registry).
- :mod:`repro.primitive` -- a MIOpen-like DL primitive library (problems,
  pattern-organized solver ladders, find-db, applicability checking) plus a
  separate hipBLAS-like GEMM library.
- :mod:`repro.core` -- PASK itself: interleaved execution, milestone logic,
  Algorithm 1 selective reuse, the categorical solution cache, and the six
  evaluated schemes.
- :mod:`repro.models` -- the twelve DNN models of Table I.
- :mod:`repro.serving` -- cold/hot serving harness, metrics and the
  experiment runners behind every figure and table of the paper.

Quickstart::

    from repro import serve_cold, Scheme
    result = serve_cold("resnet34", scheme=Scheme.PASK)
    print(result.total_time)
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "Scheme",
    "InferenceServer",
    "ServeResult",
    "serve_cold",
    "serve_hot",
]

_LAZY_EXPORTS = {
    "Scheme": ("repro.core.schemes", "Scheme"),
    "InferenceServer": ("repro.serving.server", "InferenceServer"),
    "ServeResult": ("repro.serving.server", "ServeResult"),
    "serve_cold": ("repro.serving.server", "serve_cold"),
    "serve_hot": ("repro.serving.server", "serve_hot"),
}


def __getattr__(name):
    """Lazily resolve the public serving API to avoid heavy import cycles."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
