"""Solutions: concrete kernel implementations of primitive problems.

A *solution* (Sec. II-B) is a solver template -- e.g.
``ConvBinWinogradFwd<3,3>`` -- at a point on the generality/performance
trade-off (Fig. 4).  Three facts about real MIOpen solutions drive the
model here:

1. **Per-problem tuned binaries.**  A specialized solution compiles a
   binary tuned for a problem signature; two layers with different
   signatures load *different* code objects even under the same solver.
   Generic solutions ship one universal pre-compiled binary.  This is why
   cold-start loading scales with the number of distinct layers.
2. **Applicability vs. tuning.**  A loaded binary tuned for problem *q*
   can still execute a different problem *p* if the solver's constraints
   accept *p* and the tuning is compatible (same kernel configuration,
   divisibility requirements) -- at reduced efficiency.  This is exactly
   the reuse PASK performs.
3. **Expensive ``IsApplicable``.**  Checking workspace sizes, formats and
   hardware capability costs real time per candidate, which motivates the
   categorical cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional, Tuple

from repro.gpu.codeobject import CodeObjectFile, KernelSymbol
from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import (
    ActivationProblem,
    ConvProblem,
    GemmProblem,
    PoolProblem,
    PrimitiveKind,
    Problem,
)
from repro.tensors import DataType, Layout

__all__ = ["Constraint", "Solution"]

# Specialization levels.
GENERIC, SPECIALIZED, HIGHLY_SPECIALIZED = 0, 1, 2

# Applicability-check cost components (seconds).  One IsApplicable call
# validates workspace, formats, env and hardware capability; specialized
# solutions check more conditions.
_CHECK_BASE_S = 5e-6
_CHECK_PER_CONSTRAINT_S = 1.5e-6
_CHECK_PER_SPEC_LEVEL_S = 3e-6

# Code-object size bands by specialization level (bytes).  Generic
# solutions ship fat universal binaries; tuned binaries are leaner.
# Calibrated so one hipModuleLoad lands around 1-2 ms on the modelled
# devices, matching the paper's cold/hot ratios.
_SIZE_BANDS = {
    GENERIC: (220_000, 340_000),
    SPECIALIZED: (130_000, 210_000),
    HIGHLY_SPECIALIZED: (90_000, 170_000),
}

# Efficiency derating when executing a problem on a binary tuned for a
# different signature of the same solver.
_OFF_TUNE_FACTOR = {GENERIC: 1.0, SPECIALIZED: 0.85, HIGHLY_SPECIALIZED: 0.6}


@lru_cache(maxsize=None)
def _stable_fraction(key: str) -> float:
    """Deterministic pseudo-random fraction in [0, 1) derived from ``key``.

    Memoized: the same few dozen keys (code objects, rank factors) are
    hashed over and over within one serve and across a sweep.
    """
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class Constraint:
    """One named applicability condition of a solution."""

    name: str
    predicate: Callable[[Problem], bool]

    def holds(self, problem: Problem) -> bool:
        """Evaluate the condition (cost is billed by the caller)."""
        return bool(self.predicate(problem))


@dataclass(frozen=True)
class Solution:
    """A solver template at a fixed specialization level."""

    name: str
    pattern: SolutionPattern
    kind: PrimitiveKind
    specialization: int                       # 0 generic .. 2 highly specialized
    base_efficiency: float                    # fraction of peak when on-tune
    constraints: Tuple[Constraint, ...] = ()
    preferred_layout: Layout = Layout.NCHW
    supported_dtypes: Tuple[DataType, ...] = (DataType.FP32,)
    kernels_per_launch: int = 1               # sub-kernels issued per run
    size_multiplier: float = 1.0              # binary-size scale (BLAS > MIOpen)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("solution needs a name")
        if self.specialization not in (GENERIC, SPECIALIZED,
                                       HIGHLY_SPECIALIZED):
            raise ValueError(f"bad specialization {self.specialization}")
        if not 0.0 < self.base_efficiency <= 1.0:
            raise ValueError(f"efficiency out of range: {self.base_efficiency}")
        if self.kernels_per_launch < 1:
            raise ValueError("kernels_per_launch must be >= 1")

    # ------------------------------------------------------------------
    # Applicability (IsApplicable)
    # ------------------------------------------------------------------
    def is_applicable(self, problem: Problem) -> bool:
        """Whether this solver can correctly execute ``problem``."""
        if problem.kind is not self.kind:
            return False
        if problem.dtype not in self.supported_dtypes:
            return False
        return all(c.holds(problem) for c in self.constraints)

    @property
    def check_cost_s(self) -> float:
        """Simulated cost of one ``IsApplicable`` evaluation."""
        return (_CHECK_BASE_S
                + _CHECK_PER_CONSTRAINT_S * len(self.constraints)
                + _CHECK_PER_SPEC_LEVEL_S * self.specialization)

    # ------------------------------------------------------------------
    # Tuning signatures and compiled binaries
    # ------------------------------------------------------------------
    def signature(self, problem: Problem) -> str:
        """The tuning-bucket signature of ``problem`` for this solver.

        Generic solvers ship one universal binary (constant signature);
        specialized solvers bucket by kernel configuration; highly
        specialized solvers tune for the exact shape.
        """
        if self.specialization == GENERIC:
            return "generic"
        if self.specialization == SPECIALIZED:
            return _bucket_signature(problem)
        return _exact_signature(problem)

    def code_object_for(self, problem: Problem) -> CodeObjectFile:
        """The compiled binary that serves ``problem`` under this solver.

        Memoized: the binary is a pure function of the solver identity
        and the tuning signature, and building it (blake2b size draw,
        symbol tuple) sits on the simulation's hottest path.
        """
        return _code_object_file(self.name, self.signature(problem),
                                 self.specialization, self.size_multiplier,
                                 self.kernels_per_launch)

    def tuning_compatible(self, tuned_for: Problem, target: Problem) -> bool:
        """Whether a binary tuned for ``tuned_for`` can run ``target``.

        Generic and bucket-specialized binaries run anything their
        constraints allow (a ``ConvBinWinogradRxSFwd`` image handles
        runtime filter sizes -- that is what "RxS" means), at derated
        efficiency off their tuning point.  Highly specialized binaries
        additionally require a matching tuning bucket: an exact-shape
        image can stretch to sibling shapes of the same kernel
        configuration, but not to a different configuration.
        """
        if not self.is_applicable(target):
            return False
        if self.specialization in (GENERIC, SPECIALIZED):
            return True
        return _bucket_signature(tuned_for) == _bucket_signature(target)

    def efficiency(self, tuned_for: Problem, target: Problem) -> float:
        """Achieved fraction of peak running ``target`` on that binary."""
        if self.signature(tuned_for) == self.signature(target):
            return self.base_efficiency
        return self.base_efficiency * _OFF_TUNE_FACTOR[self.specialization]

    def ranking_jitter(self, problem: Problem) -> float:
        """Deterministic per-(solver, shape) factor for find-db rankings.

        The real find-db records *measured* kernel times, which scatter
        around the analytic model by workload-dependent effects (cache
        behaviour, wave quantization).  A +/-15% multiplicative jitter
        keyed on the exact problem reproduces the consequence that
        matters here: the library's optimal pick varies across shapes,
        so bucket-level solutions are sometimes selected and enter the
        runtime cache.
        """
        key = f"rank:{self.name}@{_exact_signature(problem)}"
        return 0.85 + 0.30 * _stable_fraction(key)

    # ------------------------------------------------------------------
    # Layout transforms
    # ------------------------------------------------------------------
    def needs_layout_transform(self, problem: Problem) -> bool:
        """Whether running ``problem`` requires input/output casts."""
        return problem.layout is not self.preferred_layout

    def transform_code_objects(self, problem: Problem) -> Tuple[CodeObjectFile, ...]:
        """Cast binaries needed for ``problem`` (if any).

        Cast kernels are JIT-specialized per tuning bucket (kernel
        configuration + dtype + layout pair): layers in the same bucket
        share cast binaries, layers in different buckets do not.  NNV12
        eliminates these (plus the per-layer cast executions) by picking
        layout-native solutions.
        """
        if not self.needs_layout_transform(problem):
            return ()
        return _transform_code_objects(problem.layout.value,
                                       self.preferred_layout.value,
                                       _bucket_signature(problem))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.name}[{self.pattern.value},"
                f"spec={self.specialization},eff={self.base_efficiency:.2f}]")


# ----------------------------------------------------------------------
# Signature helpers
# ----------------------------------------------------------------------
# Problems are frozen (hashable) dataclasses and every helper below is a
# pure function, so memoization is free determinism-preserving speed:
# a serve touches the same few dozen signatures thousands of times.

@lru_cache(maxsize=None)
def _code_object_file(solution_name: str, sig: str, specialization: int,
                      size_multiplier: float,
                      kernels_per_launch: int) -> CodeObjectFile:
    """The (shared, immutable) binary for one solver/signature pair."""
    co_name = f"{solution_name}@{sig}"
    lo, hi = _SIZE_BANDS[specialization]
    size = int((lo + (hi - lo) * _stable_fraction(co_name))
               * size_multiplier)
    symbols = tuple(KernelSymbol(f"{co_name}::k{i}")
                    for i in range(kernels_per_launch))
    return CodeObjectFile(co_name, size, symbols)


@lru_cache(maxsize=None)
def _transform_code_objects(layout: str, preferred: str,
                            sig: str) -> Tuple[CodeObjectFile, ...]:
    """The (shared, immutable) cast binaries for one layout pair/bucket."""
    out = []
    for direction in ("in", "out"):
        co_name = f"cast_{layout}_{preferred}_{direction}@{sig}"
        size = int(35_000 + 45_000 * _stable_fraction(co_name))
        out.append(CodeObjectFile.single_kernel(co_name, size))
    return tuple(out)


@lru_cache(maxsize=None)
def _bucket_signature(problem: Problem) -> str:
    """Kernel-configuration bucket: what tuned tiling depends on."""
    if isinstance(problem, ConvProblem):
        r, s = problem.kernel
        return (f"conv_k{r}x{s}_s{problem.stride[0]}x{problem.stride[1]}"
                f"_d{problem.dilation[0]}x{problem.dilation[1]}"
                f"_g{min(problem.group, 2)}_{problem.dtype.label}")
    if isinstance(problem, PoolProblem):
        if problem.is_global:
            # Global pooling kernels are tuned for "window == image", not
            # for one specific image size.
            return f"pool_{problem.mode}_global_{problem.dtype.label}"
        r, s = problem.kernel
        return (f"pool_{problem.mode}_k{r}x{s}_s{problem.stride[0]}x"
                f"{problem.stride[1]}_{problem.dtype.label}")
    if isinstance(problem, ActivationProblem):
        return f"activ_{problem.activation}_{problem.dtype.label}"
    if isinstance(problem, GemmProblem):
        # BLAS (Tensile) kernels are selected and compiled per exact GEMM
        # configuration, so the bucket is the exact shape: every distinct
        # GEMM in a model loads its own binary.  (PASK does not manage
        # BLAS anyway, so this only affects load counts.)
        return _exact_signature(problem)
    raise TypeError(f"unknown problem type {type(problem).__name__}")


@lru_cache(maxsize=None)
def _exact_signature(problem: Problem) -> str:
    """Exact-shape signature: what a highly specialized binary tunes for."""
    if isinstance(problem, ConvProblem):
        return (f"{_bucket_signature(problem)}_n{problem.batch}"
                f"_c{problem.in_channels}_h{problem.height}_w{problem.width}"
                f"_k{problem.out_channels}")
    if isinstance(problem, PoolProblem):
        return (f"{_bucket_signature(problem)}_n{problem.batch}"
                f"_c{problem.channels}_h{problem.height}_w{problem.width}")
    if isinstance(problem, ActivationProblem):
        return f"{_bucket_signature(problem)}_e{problem.numel}"
    if isinstance(problem, GemmProblem):
        return (f"gemm_m{problem.m}_n{problem.n}_k{problem.k}"
                f"_b{problem.batch}_{problem.dtype.label}")
    raise TypeError(f"unknown problem type {type(problem).__name__}")


def _tile(dim: int) -> int:
    """Round a GEMM dimension to its tuning tile bucket."""
    for tile in (256, 128, 64, 32, 16):
        if dim % tile == 0:
            return tile
    return 1
