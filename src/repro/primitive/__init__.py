"""MIOpen-like DL primitive library.

The library owns *problems* (tensor-level descriptions of one layer's
computation), *solutions* (concrete kernel implementations, organized in
generality/performance ladders per pattern -- Fig. 4 of the paper),
applicability checking (``IsApplicable``), a find-db ranking solutions by
expected performance, and the ``run_solution`` entry point PASK hooks.

A separate hipBLAS-like :mod:`repro.primitive.blas` serves GEMM/MatMul
operators; it follows the same find-execute pattern but is *not* managed
by PASK (Sec. VI "Library supporting"), which is why transformer models
benefit less.
"""

from repro.primitive.problem import (
    ActivationProblem,
    ConvProblem,
    GemmProblem,
    PoolProblem,
    PrimitiveKind,
    Problem,
)
from repro.primitive.patterns import SolutionPattern
from repro.primitive.solution import Constraint, Solution
from repro.primitive.perf_model import kernel_time, solution_time
from repro.primitive.find_db import FindDb
from repro.primitive.library import MIOpenLibrary, NoSolutionError
from repro.primitive.blas import BlasLibrary

__all__ = [
    "ActivationProblem",
    "BlasLibrary",
    "Constraint",
    "ConvProblem",
    "FindDb",
    "GemmProblem",
    "MIOpenLibrary",
    "NoSolutionError",
    "PoolProblem",
    "PrimitiveKind",
    "Problem",
    "Solution",
    "SolutionPattern",
    "kernel_time",
    "solution_time",
]
