"""The find-db: performance database ranking solutions per problem.

MIOpen records "the anticipated performance of each solution on the
current problem" in an integrated database consulted at find time
(Sec. II-A).  Here the anticipated performance comes from the calibrated
kernel model, and rankings are memoized per problem -- the find step runs
offline during model lowering, so no simulated time is billed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.device import DeviceSpec
from repro.primitive.perf_model import solution_time, transform_exec_time
from repro.primitive.problem import Problem
from repro.primitive.solution import Solution

__all__ = ["FindDb"]


class FindDb:
    """Ranks applicable solutions for a problem by anticipated GPU time."""

    def __init__(self, solutions: Sequence[Solution], device: DeviceSpec) -> None:
        self.device = device
        self._solutions = list(solutions)
        self._cache: Dict[Tuple[Problem, bool, bool], List[Solution]] = {}

    @property
    def solutions(self) -> List[Solution]:
        """All registered solutions (copy)."""
        return list(self._solutions)

    def query(self, problem: Problem, include_transform_cost: bool = False,
              native_layout_only: bool = False) -> List[Solution]:
        """Applicable solutions, fastest first.

        ``include_transform_cost`` adds layout-cast time to the ranking
        metric, and ``native_layout_only`` filters out solutions needing
        casts -- the two knobs NNV12's selection policy uses.  The default
        ranking is raw kernel performance, which is how the vendor library
        behaves ("determines solutions from the GPU performance
        perspective").
        """
        key = (problem, include_transform_cost, native_layout_only)
        if key in self._cache:
            return list(self._cache[key])
        ranked = []
        for solution in self._solutions:
            if not solution.is_applicable(problem):
                continue
            if (native_layout_only
                    and solution.needs_layout_transform(problem)):
                continue
            time = (solution_time(problem, solution, self.device)
                    * solution.ranking_jitter(problem))
            if include_transform_cost and solution.needs_layout_transform(problem):
                time += 2 * transform_exec_time(problem, self.device)
            ranked.append((time, solution.name, solution))
        ranked.sort(key=lambda item: (item[0], item[1]))
        result = [solution for _, _, solution in ranked]
        self._cache[key] = result
        return list(result)

    def best(self, problem: Problem, include_transform_cost: bool = False,
             native_layout_only: bool = False) -> Optional[Solution]:
        """The top-ranked solution, or None if nothing is applicable."""
        ranked = self.query(problem, include_transform_cost,
                            native_layout_only)
        return ranked[0] if ranked else None
