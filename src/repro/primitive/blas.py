"""hipBLAS-like GEMM library.

GEMM/MatMul operators are served here, not by the MIOpen-like library.
The library follows the same find-execute pattern (Sec. VI) but its
loading path is internal: kernels are *always* loaded reactively at first
launch, regardless of the serving scheme -- PASK has no hook into it.
This is what limits PASK's benefit on the transformer models (vit, swin,
swin2), whose compute is dominated by BLAS calls.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.gpu.device import DeviceSpec
from repro.gpu.runtime import HipRuntime
from repro.primitive.find_db import FindDb
from repro.primitive.patterns import SolutionPattern
from repro.primitive.perf_model import solution_time
from repro.primitive.problem import GemmProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import DataType, Layout

__all__ = ["BlasLibrary", "build_blas_solutions"]


def _always(p: GemmProblem) -> bool:
    return True


def _tiles_64(p: GemmProblem) -> bool:
    return p.m % 64 == 0 and p.n % 64 == 0


def _tensile_128(p: GemmProblem) -> bool:
    return p.m % 128 == 0 and p.n % 128 == 0 and p.k % 8 == 0


def _batched(p: GemmProblem) -> bool:
    return p.batch > 1


def _skinny(p: GemmProblem) -> bool:
    return p.m <= 4 and p.batch == 1


def build_blas_solutions() -> List[Solution]:
    """The BLAS kernel ladder (Tensile-style fat binaries)."""
    common = dict(pattern=SolutionPattern.BLAS, kind=PrimitiveKind.GEMM,
                  preferred_layout=Layout.NCHW,
                  supported_dtypes=(DataType.FP32, DataType.FP16),
                  size_multiplier=1.2)
    return [
        # Note: even the "generic" fallback ships per-configuration
        # binaries (specialization=1 with exact GEMM buckets), matching
        # rocBLAS/Tensile behaviour -- there is no single universal GEMM
        # image, which is why transformer cold starts stay expensive.
        Solution(name="BlasGemmGeneric", specialization=1,
                 base_efficiency=0.32,
                 constraints=(Constraint("any_gemm", _always),), **common),
        Solution(name="BlasGemvN", specialization=1,
                 base_efficiency=0.45,
                 constraints=(Constraint("skinny_m", _skinny),),
                 pattern=SolutionPattern.BLAS, kind=PrimitiveKind.GEMM,
                 preferred_layout=Layout.NCHW,
                 supported_dtypes=(DataType.FP32, DataType.FP16),
                 size_multiplier=0.3),
        Solution(name="BlasGemmBatchedStrided", specialization=1,
                 base_efficiency=0.52,
                 constraints=(Constraint("batched", _batched),), **common),
        Solution(name="BlasGemmTile64", specialization=1,
                 base_efficiency=0.58,
                 constraints=(Constraint("tiles_64", _tiles_64),), **common),
        Solution(name="BlasGemmTensile128x128", specialization=2,
                 base_efficiency=0.80,
                 constraints=(Constraint("tensile_128", _tensile_128),),
                 **common),
    ]


class BlasLibrary:
    """GEMM library with internal (unhookable) lazy kernel loading."""

    def __init__(self, device: DeviceSpec,
                 solutions: Optional[Sequence[Solution]] = None) -> None:
        self.device = device
        self.solutions = list(solutions) if solutions is not None \
            else build_blas_solutions()
        self.find_db = FindDb(self.solutions, device)

    def find_best(self, problem: GemmProblem) -> Solution:
        """The fastest applicable GEMM kernel (always exists: generic)."""
        best = self.find_db.best(problem)
        if best is None:
            raise RuntimeError(f"BLAS registry has no kernel for {problem}")
        return best

    def run_gemm(self, runtime: HipRuntime, problem: GemmProblem,
                 actor: str = "host", label: str = ""):
        """Execute a GEMM (generator); loads its binary lazily, always.

        Returns the completion event of the launched kernel.
        """
        solution = self.find_best(problem)
        code_object = solution.code_object_for(problem)
        exec_time = solution_time(problem, solution, self.device)
        completion = yield from runtime.launch_kernel(
            code_object, code_object.symbols[0].name, exec_time,
            actor=actor, label=label or solution.name, lazy=True)
        return completion
