"""Problem descriptors: what one DNN layer asks the primitive library.

A problem captures "input problem (image and filter sizes, number of
filters, data types etc.)" (Sec. II-A).  Problems are frozen and hashable:
the find-db and the solution caches key on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

from repro.tensors import DataType, Layout, TensorDesc

__all__ = [
    "PrimitiveKind",
    "ConvProblem",
    "PoolProblem",
    "ActivationProblem",
    "GemmProblem",
    "Problem",
]


class PrimitiveKind(enum.Enum):
    """Which primitive routine a problem belongs to."""

    CONVOLUTION = "convolution"
    POOLING = "pooling"
    ACTIVATION = "activation"
    GEMM = "gemm"   # served by the BLAS library, not MIOpen


@dataclass(frozen=True)
class ConvProblem:
    """A 2-D forward convolution problem."""

    batch: int
    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel: Tuple[int, int]          # (R, S)
    stride: Tuple[int, int] = (1, 1)
    pad: Tuple[int, int] = (0, 0)
    dilation: Tuple[int, int] = (1, 1)
    group: int = 1
    dtype: DataType = DataType.FP32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        positives = (self.batch, self.in_channels, self.height, self.width,
                     self.out_channels, *self.kernel, *self.stride,
                     *self.dilation, self.group)
        if any(v <= 0 for v in positives):
            raise ValueError(f"non-positive field in {self}")
        if any(p < 0 for p in self.pad):
            raise ValueError(f"negative padding in {self}")
        if self.in_channels % self.group or self.out_channels % self.group:
            raise ValueError(
                f"channels {self.in_channels}->{self.out_channels} not "
                f"divisible by group {self.group}")

    @property
    def kind(self) -> PrimitiveKind:
        """This is a convolution problem."""
        return PrimitiveKind.CONVOLUTION

    @property
    def out_spatial(self) -> Tuple[int, int]:
        """Output (Ho, Wo)."""
        r, s = self.kernel
        out_h = ((self.height + 2 * self.pad[0]
                  - self.dilation[0] * (r - 1) - 1) // self.stride[0] + 1)
        out_w = ((self.width + 2 * self.pad[1]
                  - self.dilation[1] * (s - 1) - 1) // self.stride[1] + 1)
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"output spatial collapsed for {self}")
        return out_h, out_w

    @property
    def is_depthwise(self) -> bool:
        """Whether this is a depthwise convolution (group == channels)."""
        return self.group == self.in_channels == self.out_channels

    @property
    def is_pointwise(self) -> bool:
        """Whether the filter is 1x1."""
        return self.kernel == (1, 1)

    @property
    def flops(self) -> float:
        """Multiply-accumulate FLOPs of the direct algorithm."""
        ho, wo = self.out_spatial
        r, s = self.kernel
        return (2.0 * self.batch * self.out_channels * ho * wo
                * (self.in_channels // self.group) * r * s)

    @property
    def bytes_moved(self) -> int:
        """Input + filter + output bytes (one pass each)."""
        ho, wo = self.out_spatial
        r, s = self.kernel
        elems = (self.batch * self.in_channels * self.height * self.width
                 + self.out_channels * (self.in_channels // self.group) * r * s
                 + self.batch * self.out_channels * ho * wo)
        return elems * self.dtype.size_bytes

    @property
    def input_desc(self) -> TensorDesc:
        """Descriptor of the input activation tensor."""
        return TensorDesc((self.batch, self.in_channels, self.height,
                           self.width), self.dtype, self.layout)

    def with_batch(self, batch: int) -> "ConvProblem":
        """The same problem at a different batch size."""
        return ConvProblem(batch, self.in_channels, self.height, self.width,
                           self.out_channels, self.kernel, self.stride,
                           self.pad, self.dilation, self.group, self.dtype,
                           self.layout)


@dataclass(frozen=True)
class PoolProblem:
    """A 2-D pooling problem (max or average, including global)."""

    batch: int
    channels: int
    height: int
    width: int
    kernel: Tuple[int, int]
    stride: Tuple[int, int]
    pad: Tuple[int, int] = (0, 0)
    mode: str = "max"                # "max" | "avg"
    dtype: DataType = DataType.FP32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ValueError(f"unknown pooling mode {self.mode!r}")
        if any(v <= 0 for v in (self.batch, self.channels, self.height,
                                self.width, *self.kernel, *self.stride)):
            raise ValueError(f"non-positive field in {self}")

    @property
    def kind(self) -> PrimitiveKind:
        """This is a pooling problem."""
        return PrimitiveKind.POOLING

    @property
    def is_global(self) -> bool:
        """Whether the window covers the whole spatial extent."""
        return self.kernel == (self.height, self.width)

    @property
    def out_spatial(self) -> Tuple[int, int]:
        """Output (Ho, Wo)."""
        out_h = (self.height + 2 * self.pad[0] - self.kernel[0]) // self.stride[0] + 1
        out_w = (self.width + 2 * self.pad[1] - self.kernel[1]) // self.stride[1] + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"output spatial collapsed for {self}")
        return out_h, out_w

    @property
    def flops(self) -> float:
        """Comparisons/additions performed by the pooling window."""
        ho, wo = self.out_spatial
        return float(self.batch * self.channels * ho * wo
                     * self.kernel[0] * self.kernel[1])

    @property
    def bytes_moved(self) -> int:
        """Input + output bytes (one pass each)."""
        ho, wo = self.out_spatial
        elems = self.batch * self.channels * (self.height * self.width + ho * wo)
        return elems * self.dtype.size_bytes

    def with_batch(self, batch: int) -> "PoolProblem":
        """The same problem at a different batch size."""
        return PoolProblem(batch, self.channels, self.height, self.width,
                           self.kernel, self.stride, self.pad, self.mode,
                           self.dtype, self.layout)


@dataclass(frozen=True)
class ActivationProblem:
    """An elementwise activation problem over a flattened extent."""

    numel: int
    activation: str                  # "relu", "sigmoid", "silu", ...
    dtype: DataType = DataType.FP32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        if self.numel <= 0:
            raise ValueError(f"non-positive numel {self.numel}")
        if not self.activation:
            raise ValueError("activation kind required")

    @property
    def kind(self) -> PrimitiveKind:
        """This is an activation problem."""
        return PrimitiveKind.ACTIVATION

    @property
    def flops(self) -> float:
        """Elementwise operation count (per-function factor x extent)."""
        cost = {"relu": 1.0, "leakyrelu": 2.0, "clip": 2.0, "sigmoid": 4.0,
                "tanh": 4.0, "elu": 4.0, "hardswish": 4.0, "silu": 5.0,
                "gelu": 8.0}
        return cost.get(self.activation, 4.0) * self.numel

    @property
    def bytes_moved(self) -> int:
        """Read + write of the full extent."""
        return 2 * self.numel * self.dtype.size_bytes

    def with_batch(self, batch: int) -> "ActivationProblem":
        """Scale the extent as if the leading batch dim changed from 1."""
        return ActivationProblem(self.numel * batch, self.activation,
                                 self.dtype, self.layout)


@dataclass(frozen=True)
class GemmProblem:
    """A (batched) matrix-multiply problem served by the BLAS library."""

    m: int
    n: int
    k: int
    batch: int = 1
    dtype: DataType = DataType.FP32
    layout: Layout = Layout.NCHW

    def __post_init__(self) -> None:
        if any(v <= 0 for v in (self.m, self.n, self.k, self.batch)):
            raise ValueError(f"non-positive dimension in {self}")

    @property
    def kind(self) -> PrimitiveKind:
        """This is a GEMM problem (served by the BLAS library)."""
        return PrimitiveKind.GEMM

    @property
    def flops(self) -> float:
        """Multiply-accumulate FLOPs (2 m n k per batch)."""
        return 2.0 * self.batch * self.m * self.n * self.k

    @property
    def bytes_moved(self) -> int:
        """A + B + C matrix bytes (one pass each)."""
        elems = self.batch * (self.m * self.k + self.k * self.n + self.m * self.n)
        return elems * self.dtype.size_bytes

    def with_batch(self, batch: int) -> "GemmProblem":
        """The same GEMM with a different batch count."""
        return GemmProblem(self.m, self.n, self.k, batch, self.dtype,
                           self.layout)


Problem = Union[ConvProblem, PoolProblem, ActivationProblem, GemmProblem]
