"""Winograd convolution solutions (Fig. 4's worked example).

The ladder mirrors the paper exactly: ``ConvWinogradNaiveFwd`` accepts any
dimensions (generic), ``ConvBinWinogradRxSFwd`` requires a 2-D square
filter (specialized), and ``ConvBinWinogradFwd<R,S>`` pins the exact
filter size (highly specialized, best shared-memory layout).
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ConvProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import Layout

__all__ = ["build_solutions"]


def _is_unit_stride(p: ConvProblem) -> bool:
    return p.stride == (1, 1)


def _is_unit_dilation(p: ConvProblem) -> bool:
    return p.dilation == (1, 1)


def _is_ungrouped(p: ConvProblem) -> bool:
    return p.group == 1

def _kernel_small(p: ConvProblem) -> bool:
    # Winograd makes no sense for pointwise filters; the transform needs
    # at least a 2x2 tap window.
    return max(p.kernel) <= 7 and min(p.kernel) >= 2


def _kernel_square_le5(p: ConvProblem) -> bool:
    return p.kernel[0] == p.kernel[1] and p.kernel[0] <= 5


def _channels_ge8(p: ConvProblem) -> bool:
    return p.in_channels >= 8


_BASE = (
    Constraint("unit_stride", _is_unit_stride),
    Constraint("unit_dilation", _is_unit_dilation),
    Constraint("ungrouped", _is_ungrouped),
    Constraint("kernel_le7", _kernel_small),
)


def _exact_kernel(r: int, s: int) -> Constraint:
    return Constraint(f"kernel_eq_{r}x{s}",
                      lambda p, r=r, s=s: p.kernel == (r, s))


def _divisible(c_mult: int, k_mult: int) -> Constraint:
    return Constraint(
        f"channels_div_c{c_mult}_k{k_mult}",
        lambda p, c=c_mult, k=k_mult: (p.in_channels % c == 0
                                       and p.out_channels % k == 0))


def build_solutions() -> List[Solution]:
    """The Winograd ladder: one generic, one mid, two exact-filter tips."""
    solutions = [
        Solution(
            name="ConvWinogradNaiveFwd",
            pattern=SolutionPattern.WINOGRAD,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=0,
            base_efficiency=0.30,
            constraints=_BASE,
            preferred_layout=Layout.NCHW,
            kernels_per_launch=3,   # input/filter transform + batched GEMM
        ),
        Solution(
            name="ConvBinWinogradRxSFwd",
            pattern=SolutionPattern.WINOGRAD,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=1,
            base_efficiency=0.48,
            constraints=_BASE + (
                Constraint("kernel_square_le5", _kernel_square_le5),
                Constraint("channels_ge8", _channels_ge8),
            ),
            preferred_layout=Layout.NCHW,
            kernels_per_launch=1,   # fused single-pass binary winograd
        ),
    ]
    for r, s, eff in [(3, 3, 0.68), (5, 5, 0.63)]:
        solutions.append(Solution(
            name=f"ConvBinWinogradFwd<{r},{s}>",
            pattern=SolutionPattern.WINOGRAD,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=2,
            base_efficiency=eff,
            constraints=_BASE + (
                Constraint("kernel_square_le5", _kernel_square_le5),
                Constraint("channels_ge8", _channels_ge8),
                _exact_kernel(r, s),
                _divisible(2, 8),
            ),
            preferred_layout=Layout.NCHW,
            kernels_per_launch=1,
        ))
    return solutions
