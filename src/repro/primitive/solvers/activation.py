"""Activation solutions.

One generic kernel interprets the activation kind from a runtime switch;
the specialized members hard-code one function each (and the packed tip
additionally requires a vectorizable extent).
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ActivationProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import DataType, Layout

__all__ = ["build_solutions", "SPECIALIZED_ACTIVATIONS"]

SPECIALIZED_ACTIVATIONS = ("relu", "sigmoid", "silu", "tanh", "leakyrelu",
                           "hardswish", "clip", "elu")


def _always(p: ActivationProblem) -> bool:
    return True


def _kind_constraint(kind: str) -> Constraint:
    return Constraint(f"activation_is_{kind}",
                      lambda p, kind=kind: p.activation == kind)


def _vectorizable(p: ActivationProblem) -> bool:
    return p.numel % 4 == 0


def build_solutions() -> List[Solution]:
    """The activation ladder: one generic, one tip per common function."""
    solutions = [
        Solution(
            name="ActivFwdGeneric",
            pattern=SolutionPattern.ACTIVATION,
            kind=PrimitiveKind.ACTIVATION,
            specialization=0,
            base_efficiency=0.50,
            constraints=(Constraint("any_activation", _always),),
            preferred_layout=Layout.NCHW,
            supported_dtypes=(DataType.FP32, DataType.FP16),
            size_multiplier=0.2,
        ),
    ]
    for kind in SPECIALIZED_ACTIVATIONS:
        solutions.append(Solution(
            name=f"ActivFwd{kind.capitalize()}",
            pattern=SolutionPattern.ACTIVATION,
            kind=PrimitiveKind.ACTIVATION,
            specialization=1,
            base_efficiency=0.82,
            constraints=(_kind_constraint(kind),),
            preferred_layout=Layout.NCHW,
            supported_dtypes=(DataType.FP32, DataType.FP16),
            size_multiplier=0.2,
        ))
    solutions.append(Solution(
        name="ActivFwdReluPacked4",
        pattern=SolutionPattern.ACTIVATION,
        kind=PrimitiveKind.ACTIVATION,
        specialization=2,
        base_efficiency=0.93,
        constraints=(
            _kind_constraint("relu"),
            Constraint("vectorizable_by4", _vectorizable),
        ),
        preferred_layout=Layout.NCHW,
        size_multiplier=0.2,
    ))
    return solutions
