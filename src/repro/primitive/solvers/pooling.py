"""Pooling solutions."""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import PoolProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import DataType, Layout

__all__ = ["build_solutions"]


def _always(p: PoolProblem) -> bool:
    return True


def _window_le3(p: PoolProblem) -> bool:
    return max(p.kernel) <= 3


def _is_global(p: PoolProblem) -> bool:
    return p.is_global


def _is_2x2s2(p: PoolProblem) -> bool:
    return p.kernel == (2, 2) and p.stride == (2, 2) and p.pad == (0, 0)


def build_solutions() -> List[Solution]:
    """The pooling ladder (bandwidth-bound, so efficiencies are high)."""
    return [
        Solution(
            name="PoolingNaiveFwd",
            pattern=SolutionPattern.POOLING,
            kind=PrimitiveKind.POOLING,
            specialization=0,
            base_efficiency=0.45,
            constraints=(Constraint("any_pool", _always),),
            preferred_layout=Layout.NCHW,
            supported_dtypes=(DataType.FP32, DataType.FP16),
            size_multiplier=0.35,
        ),
        Solution(
            name="PoolingFwdSmallWindow",
            pattern=SolutionPattern.POOLING,
            kind=PrimitiveKind.POOLING,
            specialization=1,
            base_efficiency=0.70,
            constraints=(Constraint("window_le3", _window_le3),),
            preferred_layout=Layout.NCHW,
            size_multiplier=0.35,
        ),
        Solution(
            name="PoolingFwdGlobal",
            pattern=SolutionPattern.POOLING,
            kind=PrimitiveKind.POOLING,
            specialization=1,
            base_efficiency=0.72,
            constraints=(Constraint("global_window", _is_global),),
            preferred_layout=Layout.NCHW,
            size_multiplier=0.35,
        ),
        Solution(
            name="PoolingFwd2x2s2",
            pattern=SolutionPattern.POOLING,
            kind=PrimitiveKind.POOLING,
            specialization=2,
            base_efficiency=0.85,
            constraints=(Constraint("window_2x2s2", _is_2x2s2),),
            preferred_layout=Layout.NCHW,
            size_multiplier=0.35,
        ),
    ]
