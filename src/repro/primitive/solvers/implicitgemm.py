"""Implicit-GEMM convolution solutions.

The xdlops tip is the library's fastest convolution when its divisibility
constraints hold, but it is NHWC-native: on NCHW models it drags in
per-shape layout-cast kernels -- exactly the transform overhead NNV12
avoids by selecting layout-native solutions.
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ConvProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import Layout

__all__ = ["build_solutions"]


def _div4(p: ConvProblem) -> bool:
    return p.in_channels % 4 == 0 and p.out_channels % 4 == 0


def _div16(p: ConvProblem) -> bool:
    return p.in_channels % 16 == 0 and p.out_channels % 16 == 0


def _ungrouped_undilated(p: ConvProblem) -> bool:
    return p.group == 1 and p.dilation == (1, 1)


def _stride_le2(p: ConvProblem) -> bool:
    return max(p.stride) <= 2


def build_solutions() -> List[Solution]:
    """The implicit-GEMM ladder (no generic member -- matches MIOpen)."""
    return [
        Solution(
            name="ConvImplicitGemmV4R4Fwd",
            pattern=SolutionPattern.IMPLICIT_GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=1,
            base_efficiency=0.55,
            constraints=(
                Constraint("channels_div4", _div4),
                Constraint("ungrouped_undilated", _ungrouped_undilated),
                Constraint("stride_le2", _stride_le2),
            ),
            preferred_layout=Layout.NCHW,
        ),
        Solution(
            name="ConvImplicitGemmXdlopsFwd",
            pattern=SolutionPattern.IMPLICIT_GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=2,
            base_efficiency=0.62,
            constraints=(
                Constraint("channels_div16", _div16),
                Constraint("ungrouped_undilated", _ungrouped_undilated),
                Constraint("stride_le2", _stride_le2),
            ),
            preferred_layout=Layout.NHWC,
        ),
    ]
