"""Half-precision convolution solutions.

fp16 kernels are separate compilation targets from their fp32 siblings
(different MFMA instructions, different register budgets), so the library
ships a dedicated fp16 ladder.  This separation is what makes the mixed-
precision extension of Sec. VI meaningful: when an fp16 binary is absent
but the fp32 sibling is resident, PASK may run the layer in fp32 instead
of loading.
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ConvProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import DataType, Layout

__all__ = ["build_solutions"]


def _always(p: ConvProblem) -> bool:
    return True


def _div8_stride_le2(p: ConvProblem) -> bool:
    return (p.in_channels % 8 == 0 and p.out_channels % 8 == 0
            and max(p.stride) <= 2 and p.group == 1
            and p.dilation == (1, 1))


def build_solutions() -> List[Solution]:
    """The fp16 convolution ladder: one universal, one MFMA tip."""
    return [
        Solution(
            name="ConvGemmFwdFp16",
            pattern=SolutionPattern.GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=0,
            base_efficiency=0.30,
            constraints=(Constraint("any_conv", _always),),
            preferred_layout=Layout.NCHW,
            supported_dtypes=(DataType.FP16,),
            kernels_per_launch=2,
        ),
        Solution(
            name="ConvImplicitGemmMfmaFp16Fwd",
            pattern=SolutionPattern.IMPLICIT_GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=2,
            base_efficiency=0.80,
            constraints=(Constraint("div8_stride_le2", _div8_stride_le2),),
            preferred_layout=Layout.NCHW,
            supported_dtypes=(DataType.FP16,),
        ),
    ]
