"""GEMM-pattern (im2col) convolution solutions.

``ConvGemmFwd`` is the universal fallback of the library: it accepts every
convolution, which guarantees :meth:`MIOpenLibrary.find_best` always
succeeds.  The 1x1 tips exploit that pointwise convolution *is* a GEMM.
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ConvProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import Layout

__all__ = ["build_solutions"]


def _always(p: ConvProblem) -> bool:
    return True


def _is_pointwise(p: ConvProblem) -> bool:
    return p.kernel == (1, 1) and p.pad == (0, 0)


def _is_unit_stride(p: ConvProblem) -> bool:
    return p.stride == (1, 1)


def _channels_div8(p: ConvProblem) -> bool:
    return p.in_channels % 8 == 0 and p.out_channels % 8 == 0


def _is_ungrouped(p: ConvProblem) -> bool:
    return p.group == 1


def build_solutions() -> List[Solution]:
    """The im2col-GEMM ladder."""
    return [
        Solution(
            name="ConvGemmFwd",
            pattern=SolutionPattern.GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=0,
            base_efficiency=0.26,
            constraints=(Constraint("any_conv", _always),),
            preferred_layout=Layout.NCHW,
            kernels_per_launch=2,   # im2col + gemm
        ),
        Solution(
            name="ConvGemmFwd1x1",
            pattern=SolutionPattern.GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=1,
            base_efficiency=0.50,
            constraints=(
                Constraint("pointwise", _is_pointwise),
                Constraint("ungrouped", _is_ungrouped),
            ),
            preferred_layout=Layout.NCHW,
            kernels_per_launch=1,
        ),
        Solution(
            name="ConvGemmFwd1x1Pack",
            pattern=SolutionPattern.GEMM,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=2,
            base_efficiency=0.62,
            constraints=(
                Constraint("pointwise", _is_pointwise),
                Constraint("ungrouped", _is_ungrouped),
                Constraint("unit_stride", _is_unit_stride),
                Constraint("channels_div8", _channels_div8),
            ),
            preferred_layout=Layout.NCHW,
            kernels_per_launch=1,
        ),
    ]
