"""Solver families: the generality/performance ladders of Fig. 4.

Each module builds the solutions of one pattern; :func:`all_miopen_solutions`
aggregates the full registry the library searches.
"""

from typing import List

from repro.primitive.solution import Solution
from repro.primitive.solvers import activation, direct, fp16, gemm, \
    implicitgemm, pooling, winograd

__all__ = ["all_miopen_solutions"]


def all_miopen_solutions() -> List[Solution]:
    """Every solution the MIOpen-like library knows, all patterns."""
    out: List[Solution] = []
    out.extend(winograd.build_solutions())
    out.extend(gemm.build_solutions())
    out.extend(direct.build_solutions())
    out.extend(implicitgemm.build_solutions())
    out.extend(fp16.build_solutions())
    out.extend(pooling.build_solutions())
    out.extend(activation.build_solutions())
    names = [s.name for s in out]
    if len(names) != len(set(names)):
        raise RuntimeError("duplicate solution names in solver registry")
    return out
