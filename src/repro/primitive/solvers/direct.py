"""Direct convolution solutions.

``ConvDirectNaiveFwd`` is the second universal fallback (MIOpen keeps a
naive direct kernel for correctness); the tips cover the classic CNN stem
(7x7 stride-2) and depthwise convolutions, which no other pattern serves
efficiently.
"""

from __future__ import annotations

from typing import List

from repro.primitive.patterns import SolutionPattern
from repro.primitive.problem import ConvProblem, PrimitiveKind
from repro.primitive.solution import Constraint, Solution
from repro.tensors import Layout

__all__ = ["build_solutions"]


def _always(p: ConvProblem) -> bool:
    return True


def _kernel3_stride_le2(p: ConvProblem) -> bool:
    return (p.kernel == (3, 3) and max(p.stride) <= 2
            and p.dilation == (1, 1) and p.group == 1)


def _is_depthwise(p: ConvProblem) -> bool:
    return p.is_depthwise


def _kernel7_stride2(p: ConvProblem) -> bool:
    return (p.kernel == (7, 7) and p.stride == (2, 2)
            and p.dilation == (1, 1) and p.group == 1)


def build_solutions() -> List[Solution]:
    """The direct-convolution ladder."""
    return [
        Solution(
            name="ConvDirectNaiveFwd",
            pattern=SolutionPattern.DIRECT,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=0,
            base_efficiency=0.20,
            constraints=(Constraint("any_conv", _always),),
            preferred_layout=Layout.NCHW,
        ),
        Solution(
            name="ConvDirectFwd3x3",
            pattern=SolutionPattern.DIRECT,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=1,
            base_efficiency=0.42,
            constraints=(Constraint("kernel3_stride_le2", _kernel3_stride_le2),),
            preferred_layout=Layout.NCHW,
        ),
        Solution(
            name="ConvDirectFwdDepthwise",
            pattern=SolutionPattern.DIRECT,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=1,
            base_efficiency=0.52,
            constraints=(Constraint("depthwise", _is_depthwise),),
            preferred_layout=Layout.NCHW,
        ),
        Solution(
            name="ConvDirectFwd7x7s2",
            pattern=SolutionPattern.DIRECT,
            kind=PrimitiveKind.CONVOLUTION,
            specialization=2,
            base_efficiency=0.58,
            constraints=(Constraint("kernel7_stride2", _kernel7_stride2),),
            preferred_layout=Layout.NCHW,
        ),
    ]
