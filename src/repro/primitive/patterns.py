"""Solution pattern taxonomy.

"The solution usually follows certain patterns to conduct the computation
... commonly used patterns include GEMM, DirectConv and ImplicitGEMM"
(Sec. II-B).  The categorical solution cache keys its lists by these
patterns, because a missing specialized solution is most likely to be
substitutable by a more general one *of the same pattern* (Fig. 4).
"""

from __future__ import annotations

import enum

__all__ = ["SolutionPattern"]


class SolutionPattern(enum.Enum):
    """Algorithmic families of primitive solutions."""

    WINOGRAD = "Winograd"
    GEMM = "Gemm"                  # im2col + matrix multiply
    DIRECT = "DirectConv"
    IMPLICIT_GEMM = "ImplicitGemm"
    POOLING = "Pooling"
    ACTIVATION = "Activation"
    BLAS = "Blas"                  # hipBLAS GEMM kernels (outside PASK)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
