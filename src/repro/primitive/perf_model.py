"""Kernel execution-time model.

A two-term roofline: a kernel achieves ``efficiency`` of device peak
compute and a correlated fraction of peak memory bandwidth; its runtime is
the max of the two plus a small fixed device-side latency.  Absolute
numbers are a calibrated model -- the experiments only rely on ratios.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.device import DeviceSpec
from repro.primitive.problem import Problem
from repro.primitive.solution import Solution
from repro.tensors import layout_transform_time

__all__ = ["kernel_time", "solution_time", "transform_exec_time"]

_KERNEL_FIXED_LATENCY_S = 2.5e-6

# Occupancy model: a kernel moving few bytes cannot fill all compute
# units, so small-batch kernels run far from peak.  The knee is placed so
# that batch-1 CNN layers land around 25-40% occupancy while batch >= 16
# saturates the device -- this is what makes the Table II batch sweep
# behave like the paper's.
_OCCUPANCY_FLOOR = 0.30
_OCCUPANCY_SATURATION_BYTES = 40e6


def occupancy(bytes_moved: float) -> float:
    """Achievable occupancy fraction for a kernel moving ``bytes_moved``."""
    if bytes_moved < 0:
        raise ValueError("negative work")
    return min(1.0, _OCCUPANCY_FLOOR
               + (1.0 - _OCCUPANCY_FLOOR) * bytes_moved
               / _OCCUPANCY_SATURATION_BYTES)


def kernel_time(flops: float, bytes_moved: float, efficiency: float,
                device: DeviceSpec) -> float:
    """Runtime of one kernel with the given work and achieved efficiency."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("negative work")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency out of range: {efficiency}")
    achieved = efficiency * occupancy(bytes_moved)
    compute_t = flops / (device.fp32_flops * achieved)
    memory_t = bytes_moved / (device.mem_bandwidth * min(1.0, achieved + 0.25))
    return max(compute_t, memory_t) + _KERNEL_FIXED_LATENCY_S


def solution_time(problem: Problem, solution: Solution, device: DeviceSpec,
                  tuned_for: Optional[Problem] = None) -> float:
    """GPU time of running ``problem`` with ``solution``.

    ``tuned_for`` is the problem the loaded binary was tuned for (defaults
    to ``problem`` itself, i.e. a freshly found solution); off-tune reuse
    runs at derated efficiency.  Layout-cast time is *not* included --
    casts are separate kernels accounted by the execution engine.
    """
    efficiency = solution.efficiency(tuned_for or problem, problem)
    return kernel_time(problem.flops, problem.bytes_moved, efficiency, device)


def transform_exec_time(problem: Problem, device: DeviceSpec) -> float:
    """GPU time of one input-or-output layout cast for ``problem``."""
    activation_bytes = problem.bytes_moved // 2  # roughly the I/O tensors
    return (layout_transform_time(activation_bytes, device.mem_bandwidth_gbps)
            + _KERNEL_FIXED_LATENCY_S)
