"""The MIOpen-like library front end.

``find_best`` is the offline find step (used during lowering);
``run_solution`` is the online entry point (``miopenRunSolution``) that
PASK hooks: it loads whatever code objects the solution instance needs
(lazily by default -- the reactive behaviour), launches the cast and
compute kernels, and returns the completion event.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.device import DeviceSpec
from repro.gpu.runtime import HipRuntime
from repro.primitive.find_db import FindDb
from repro.primitive.perf_model import solution_time, transform_exec_time
from repro.primitive.problem import Problem
from repro.primitive.solution import Solution
from repro.primitive.solvers import all_miopen_solutions

__all__ = ["MIOpenLibrary", "NoSolutionError"]


class NoSolutionError(Exception):
    """Raised when no registered solution is applicable to a problem."""


class MIOpenLibrary:
    """The DL primitive library: solver registry + find-db + run path."""

    def __init__(self, device: DeviceSpec,
                 solutions: Optional[Sequence[Solution]] = None) -> None:
        self.device = device
        self.solutions = list(solutions) if solutions is not None \
            else all_miopen_solutions()
        self.find_db = FindDb(self.solutions, device)

    def solution_by_name(self, name: str) -> Solution:
        """Look up a registered solution by name."""
        for solution in self.solutions:
            if solution.name == name:
                return solution
        raise KeyError(f"no solution named {name!r}")

    def find_best(self, problem: Problem,
                  include_transform_cost: bool = False,
                  native_layout_only: bool = False) -> Solution:
        """Offline find: the optimal applicable solution for ``problem``."""
        best = self.find_db.best(problem, include_transform_cost,
                                 native_layout_only)
        if best is None:
            raise NoSolutionError(f"no applicable solution for {problem}")
        return best

    def run_solution(self, runtime: HipRuntime, problem: Problem,
                     solution: Solution, tuned_for: Optional[Problem] = None,
                     actor: str = "host", label: str = "", lazy: bool = True):
        """Execute ``problem`` with ``solution`` (generator).

        ``tuned_for`` identifies the binary instance being used: it
        defaults to ``problem`` (a freshly found solution); PASK's reuse
        passes the problem the cached binary was originally loaded for,
        which names the already-resident code object and derates
        efficiency accordingly.

        Returns the completion event of the last launched kernel.
        """
        tuned = tuned_for if tuned_for is not None else problem
        code_object = solution.code_object_for(tuned)
        label = label or f"{solution.name}"
        completion = None

        transforms = solution.transform_code_objects(problem)
        if transforms:
            in_cast, out_cast = transforms
            cast_time = transform_exec_time(problem, self.device)
            completion = yield from runtime.launch_kernel(
                in_cast, in_cast.symbols[0].name, cast_time,
                actor=actor, label=f"{label}/cast_in", lazy=lazy)

        exec_time = solution_time(problem, solution, self.device,
                                  tuned_for=tuned)
        per_kernel = exec_time / solution.kernels_per_launch
        for symbol in code_object.symbols:
            completion = yield from runtime.launch_kernel(
                code_object, symbol.name, per_kernel,
                actor=actor, label=label, lazy=lazy)

        if transforms:
            completion = yield from runtime.launch_kernel(
                out_cast, out_cast.symbols[0].name, cast_time,
                actor=actor, label=f"{label}/cast_out", lazy=lazy)
        return completion
