"""Content-addressed on-disk result cache.

Keys are blake2b digests over everything that can change a simulation's
outcome: the task description (device, model, scheme, batch, cluster
knobs), the fault plan, the device's calibration constants and the code
version.  Changing any of those — recalibrating a device, bumping the
package version, tweaking a fault plan — yields a different key, so a
stale cache self-invalidates without any manual flushing.

The store is a directory of one JSON file per key under
``.repro-cache/objects/``.  It is *single-writer by construction*: only
the coordinating process (the one driving the engine) ever calls
:meth:`ResultCache.store`; worker processes just return payloads.
Writes go through a temporary file and ``os.replace`` so a crashed run
can leave at worst a stale temp file, never a torn object.  Corrupt or
truncated objects read back as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro._version import __version__
from repro.gpu.device import get_device
from repro.runner.tasks import ExperimentTask

__all__ = ["CACHE_FORMAT_VERSION", "CacheCounters", "ResultCache", "task_key"]

# Bump when the payload layout changes; invalidates every existing key.
CACHE_FORMAT_VERSION = 1


def task_key(task: ExperimentTask) -> str:
    """The content-addressed cache key for ``task``.

    blake2b over a canonical JSON encoding of the task description, the
    device calibration constants and the code/cache-format versions.
    """
    material = {
        "cache_format": CACHE_FORMAT_VERSION,
        "code_version": __version__,
        "task": task.describe(),
        "calibration": asdict(get_device(task.device)),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


@dataclass
class CacheCounters:
    """What the cache did during one engine run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}


class ResultCache:
    """Single-writer JSON object store under ``root``.

    ``read=False`` (the ``--no-cache`` path) bypasses lookups but still
    writes fresh results, so a forced re-run repopulates the store.
    """

    def __init__(self, root: str = ".repro-cache", read: bool = True,
                 write: bool = True) -> None:
        self.root = root
        self.read = read
        self.write = write
        self.counters = CacheCounters()

    @property
    def objects_dir(self) -> str:
        """Directory holding one JSON file per key."""
        return os.path.join(self.root, "objects")

    def _path(self, key: str) -> str:
        return os.path.join(self.objects_dir, f"{key}.json")

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt, truncated or wrong-shape object is a miss, not an
        error: the engine simply recomputes and overwrites it.
        """
        if not self.read:
            self.counters.misses += 1
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (OSError, ValueError):
            self.counters.misses += 1
            return None
        if (not isinstance(obj, dict) or obj.get("key") != key
                or "payload" not in obj):
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return obj["payload"]

    def store(self, key: str, task: ExperimentTask,
              payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``.

        Only the coordinating process calls this (single-writer); the
        task description rides along for debuggability.
        """
        if not self.write:
            return
        os.makedirs(self.objects_dir, exist_ok=True)
        obj = {"key": key, "cache_format": CACHE_FORMAT_VERSION,
               "code_version": __version__, "task": task.describe(),
               "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=self.objects_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(obj, handle)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.counters.writes += 1

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root!r} read={self.read} "
                f"write={self.write} {self.counters.as_dict()}>")
