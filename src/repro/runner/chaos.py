"""The ``repro chaos --resilience`` comparison harness.

Two curated chaos scenarios, each replayed twice — without and with a
:class:`~repro.serving.resilience.ResiliencePolicy` — through the same
engine/cache/report machinery as ``repro bench``:

- **crash-heavy** — a Poisson trace under instance crash/restart churn
  (``cluster.request`` fault site).  The resilient leg adds warm-state
  checkpoint/restore plus the circuit breaker, so post-crash serves
  restore the freshest checkpoint instead of paying a full cold start.
- **overload** — the same pool offered ~2x its warm-capacity request
  rate with no faults at all.  The resilient leg adds admission control
  (bounded queue, deadline shedding, degraded mode), which bounds p99
  at the cost of explicitly shed requests.

:func:`chaos_report` returns a ``BENCH_*.json``-shaped payload (schema-
valid under :func:`~repro.runner.schema.validate_report`) extended with
a ``chaos`` section carrying the per-scenario comparison: cold-start
and p99 deltas, the availability gate, and a ``pass`` verdict.  With a
pinned ``created_unix`` the payload is byte-stable, which is how the
checked-in ``benchmarks/chaos_resilience_report.json`` is pinned by the
regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.schemes import Scheme
from repro.runner.bench import build_report
from repro.runner.engine import run_tasks
from repro.runner.schema import validate_report
from repro.runner.tasks import ExperimentTask
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultPlan

__all__ = ["ChaosScenario", "chaos_scenarios", "chaos_report",
           "CRASH_POLICY", "OVERLOAD_POLICY"]

# The resilient leg of the crash-heavy scenario: frequent checkpoints
# (the trace is seconds long) with the breaker off — crashes in this
# scenario strike uniformly at random, so excluding a crashed instance
# only concentrates load on the survivors; the breaker pays off against
# *crash-looping* instances (see the unit tests), not uniform churn.
CRASH_POLICY = ResiliencePolicy(checkpoint_interval_s=0.25,
                                breaker_threshold=None)

# The resilient leg of the overload scenario: admission control only —
# checkpoints and the breaker stay off so the comparison isolates the
# shedding/degradation mechanisms.
OVERLOAD_POLICY = ResiliencePolicy(
    checkpoint_interval_s=None, breaker_threshold=None,
    max_queue_depth=64, shed_wait_s=0.02, degrade_wait_s=0.01)


@dataclass(frozen=True)
class ChaosScenario:
    """One chaos comparison: the same replay without/with a policy."""

    name: str
    description: str
    baseline: ExperimentTask
    resilient: ExperimentTask
    min_availability: float = 0.999


def chaos_scenarios(device: str = "MI100", model: str = "res",
                    collect_metrics: bool = False) -> List[ChaosScenario]:
    """The curated scenario pair behind ``repro chaos --resilience``.

    The overload arrival rate is derived from the model's warm service
    time (2x the two-instance warm capacity), so the scenario stays a
    genuine overload on every device — and stays deterministic, since
    the warm time is itself a pure simulation output.
    """
    crash_plan = FaultPlan(seed=3, crash_rate=0.08)
    crash_common = dict(kind="cluster", device=device, model=model,
                        scheme=Scheme.PASK.value, rate_hz=40.0,
                        duration_s=30.0,
                        seed=0, instances=4, keep_alive_s=0.5,
                        collect_metrics=collect_metrics)
    # 2x overload: two instances can drain 2/warm requests per second.
    warm_s = InferenceServer(device).serve_hot(model).total_time
    overload_rate = 2.0 * (2.0 / warm_s)
    overload_common = dict(kind="cluster", device=device, model=model,
                           scheme=Scheme.PASK.value, rate_hz=overload_rate,
                           duration_s=1.0, seed=1, instances=2,
                           keep_alive_s=0.5,
                           # An all-zero plan: no faults fire, but the
                           # report cell gains the robustness columns
                           # (shed/availability) the gate reads.
                           faults=FaultPlan(seed=1),
                           collect_metrics=collect_metrics)
    return [
        ChaosScenario(
            name="crash-heavy",
            description="Poisson 40 Hz x 30 s on 4 PASK instances with "
                        "crash rate 0.08; resilient leg adds warm-state "
                        "checkpoint/restore.",
            baseline=ExperimentTask(faults=crash_plan, **crash_common),
            resilient=ExperimentTask(faults=crash_plan,
                                     resilience=CRASH_POLICY,
                                     **crash_common)),
        ChaosScenario(
            name="overload",
            description="2x warm capacity offered to 2 PASK instances "
                        "for 1 s; resilient leg adds admission control "
                        "(bounded queue, deadline shedding, degraded "
                        "mode).",
            baseline=ExperimentTask(**overload_common),
            resilient=ExperimentTask(resilience=OVERLOAD_POLICY,
                                     **overload_common)),
    ]


def _cell_by_id(cells: List[Dict[str, Any]], cell_id: str) -> Dict[str, Any]:
    for cell in cells:
        if cell["id"] == cell_id:
            return cell
    raise KeyError(f"cell {cell_id!r} missing from chaos report")


def _comparison(scenario: ChaosScenario, cells: List[Dict[str, Any]]
                ) -> Dict[str, Any]:
    base = _cell_by_id(cells, scenario.baseline.cell_id)
    res = _cell_by_id(cells, scenario.resilient.cell_id)
    availability = res.get("availability", 1.0)
    p99_speedup = (base["p99_s"] / res["p99_s"]) if res["p99_s"] > 0 else 1.0
    return {
        "name": scenario.name,
        "description": scenario.description,
        "baseline_cell": base["id"],
        "resilient_cell": res["id"],
        "min_availability": scenario.min_availability,
        "availability": availability,
        "baseline_p99_s": base["p99_s"],
        "resilient_p99_s": res["p99_s"],
        "p99_speedup": p99_speedup,
        "baseline_cold_starts": base["cold_starts"],
        "resilient_cold_starts": res["cold_starts"],
        "shed": res.get("shed", 0),
        "resilient_faults": res.get("faults", {}),
        "pass": (availability >= scenario.min_availability
                 and res["p99_s"] <= base["p99_s"]
                 and res["cold_starts"] <= base["cold_starts"]),
    }


def chaos_report(device: str = "MI100", model: str = "res",
                 jobs: int = 1, collect_metrics: bool = True,
                 min_availability: Optional[float] = None,
                 created_unix: Optional[float] = None) -> Dict[str, Any]:
    """Run the chaos scenarios and build the comparison report.

    Returns a BENCH-shaped payload with an extra ``chaos`` section (one
    comparison entry per scenario, most-recently-defined order).  When
    ``created_unix`` is given, the volatile ``run`` section is pinned
    (``wall_clock_s`` zeroed) so the payload is byte-stable across runs
    — the form the checked-in report uses.  ``min_availability``
    overrides every scenario's availability gate.
    """
    scenarios = chaos_scenarios(device, model,
                                collect_metrics=collect_metrics)
    if min_availability is not None:
        scenarios = [ChaosScenario(
            name=s.name, description=s.description, baseline=s.baseline,
            resilient=s.resilient, min_availability=min_availability)
            for s in scenarios]
    tasks: List[ExperimentTask] = []
    for scenario in scenarios:
        tasks += [scenario.baseline, scenario.resilient]
    outcomes, stats = run_tasks(tasks, jobs=jobs, cache=None)
    report = build_report("chaos", outcomes, stats, cache=None,
                          created_unix=created_unix)
    if created_unix is not None:
        report["run"]["wall_clock_s"] = 0.0
    report["chaos"] = {
        "device": device, "model": model,
        "scenarios": [_comparison(s, report["cells"]) for s in scenarios],
    }
    problems = validate_report(report)
    if problems:  # defensive: the builder always emits schema-valid JSON
        raise RuntimeError(f"chaos emitted schema-invalid report: "
                           f"{problems}")
    return report
