"""Experiment tasks: serializable simulation cells and their executor.

An :class:`ExperimentTask` names one deterministic simulation — a cold
serve, a hot serve or a cluster trace replay — with every knob that can
change its outcome.  :func:`execute_task` turns a task into a JSON-safe
payload; :func:`result_from_payload` / :func:`cluster_stats_from_payload`
reconstruct the original result objects exactly (floats survive a JSON
round-trip bit-for-bit via ``repr``), which is what lets the parallel
engine and the on-disk cache stay byte-identical to the serial path.

Workers keep a per-process :class:`~repro.serving.server.InferenceServer`
per device so repeated tasks in one worker reuse compiled programs; the
simulation itself is a pure function of the task, so server reuse never
changes a result.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cache import CacheStats
from repro.core.results import ExecutionResult
from repro.core.schemes import Scheme
from repro.fleet.autoscale import AutoscalePolicy
from repro.fleet.fleet import (FleetConfig, FleetSimulator, FleetStats,
                               RegionConfig, RegionStats, TenantStats)
from repro.fleet.routing import ROUTING_POLICIES, RoutingPolicy
from repro.obs.monitors import SLOPolicy
from repro.packs.store import PackPolicy, PackTransferCounters
from repro.serving.cluster import ClusterConfig, ClusterSimulator, ClusterStats
from repro.serving.requests import (RequestTrace, bursty_trace, diurnal_trace,
                                    poisson_trace)
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultPlan
from repro.sim.trace import (RETENTION_POLICIES, Phase, TraceRecord,
                             TraceRecorder)

__all__ = [
    "ExperimentTask",
    "execute_task",
    "result_to_payload",
    "result_from_payload",
    "cluster_stats_to_payload",
    "cluster_stats_from_payload",
    "fleet_stats_to_payload",
    "fleet_stats_from_payload",
]

ARRIVAL_KINDS = ("poisson", "diurnal", "bursty")

_SCHEMES_BY_VALUE = {s.value: s for s in Scheme}


@dataclass(frozen=True)
class ExperimentTask:
    """One deterministic simulation cell.

    ``kind`` selects the executor path:

    - ``"cold"`` — ``InferenceServer.serve_cold(model, scheme, batch)``
    - ``"hot"`` — ``InferenceServer.serve_hot(model, batch)``
    - ``"cluster"`` — a Poisson trace replay (``rate_hz``/``duration_s``/
      ``seed`` generate the trace; ``instances``/``keep_alive_s`` shape
      the pool).
    - ``"fleet"`` — a multi-region fleet replay (repro.fleet): the
      cluster knobs shape each region, ``fleet_devices`` places one
      region per device, ``arrival`` selects the workload shape, and
      ``routing``/``autoscale``/``shed_wait_s`` are the fleet policies.
    """

    kind: str = "cold"
    device: str = "MI100"
    model: str = "res"
    scheme: str = Scheme.BASELINE.value
    batch: int = 1
    faults: Optional[FaultPlan] = None
    # Cluster-replay knobs (ignored for cold/hot serves).
    rate_hz: float = 20.0
    duration_s: float = 4.0
    seed: int = 0
    instances: int = 4
    keep_alive_s: float = 0.5
    # Request-level tracing for cluster replays: None records nothing
    # (byte-identical to the pre-tracing simulator), "full" keeps every
    # record, "aggregate" keeps streaming aggregates + a bounded ring.
    trace_retention: Optional[str] = None
    trace_ring: int = 1024
    # Telemetry: collect a metrics-registry dump alongside the result
    # (``payload["metrics"]``).  Defaults off, which leaves payloads —
    # and therefore cache keys and old cached entries — untouched.
    collect_metrics: bool = False
    # Cluster resilience policy (checkpoint/restore, breaker, admission
    # control); None keeps cache keys for policy-free replays stable.
    resilience: Optional[ResiliencePolicy] = None
    # Fleet-replay knobs (kind == "fleet" only; all of them are deleted
    # from describe() for every other kind so existing cache keys stay
    # stable).  ``arrival`` selects the workload generator — "poisson"
    # reuses rate_hz/duration_s/seed directly; "diurnal"/"bursty" read
    # ``peak_rate_hz``/``period_s``/``burst_s`` (each with a derived
    # default) on top.  ``fleet_devices`` places one region per listed
    # device (default: one region on ``device``).
    arrival: str = "poisson"
    peak_rate_hz: Optional[float] = None
    period_s: Optional[float] = None
    burst_s: Optional[float] = None
    fleet_devices: Optional[Tuple[str, ...]] = None
    routing: str = "single"
    autoscale: Optional[AutoscalePolicy] = None
    shed_wait_s: Optional[float] = None
    # SLO burn-rate monitors evaluated during a fleet replay; the
    # summary lands in the payload's "monitors" key and the report's
    # "monitors" section.  None keeps existing cache keys stable.
    slo: Optional[SLOPolicy] = None
    # Kernel-pack fetch hierarchy (repro.packs) for cluster and fleet
    # replays; None keeps existing cache keys stable.
    packs: Optional[PackPolicy] = None

    def __post_init__(self) -> None:
        if self.kind not in ("cold", "hot", "cluster", "fleet"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.scheme not in _SCHEMES_BY_VALUE:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if (self.trace_retention is not None
                and self.trace_retention not in RETENTION_POLICIES):
            raise ValueError(
                f"unknown trace retention {self.trace_retention!r}; "
                f"expected None or one of {RETENTION_POLICIES}")
        if self.trace_ring <= 0:
            raise ValueError("trace_ring must be positive")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.arrival!r}; "
                             f"expected one of {ARRIVAL_KINDS}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {self.routing!r}; "
                             f"expected one of {ROUTING_POLICIES}")
        if self.fleet_devices is not None:
            object.__setattr__(self, "fleet_devices",
                               tuple(self.fleet_devices))
            if not self.fleet_devices:
                raise ValueError("fleet_devices must name at least one "
                                 "device when given")
        if self.kind == "fleet" and self.resilience is not None:
            raise ValueError("fleet tasks do not take a resilience policy "
                             "(it is a cluster-level knob)")
        if self.slo is not None and self.kind != "fleet":
            raise ValueError("SLO monitors are a fleet-level knob; "
                             f"{self.kind!r} tasks do not take one")
        if self.packs is not None and self.kind not in ("cluster", "fleet"):
            raise ValueError("kernel packs apply to cluster/fleet replays; "
                             f"{self.kind!r} tasks do not take them")

    @property
    def region_devices(self) -> Tuple[str, ...]:
        """One region per device for fleet tasks."""
        return (self.fleet_devices if self.fleet_devices is not None
                else (self.device,))

    @property
    def scheme_enum(self) -> Scheme:
        """The :class:`Scheme` this task serves under."""
        return _SCHEMES_BY_VALUE[self.scheme]

    @property
    def cell_id(self) -> str:
        """Human-readable stable identifier (used to match baseline
        cells across ``BENCH_*.json`` files)."""
        if self.kind == "cluster":
            cell = (f"cluster/{self.device}/{self.model}/{self.scheme}"
                    f"/b{self.batch}/r{self.rate_hz:g}/d{self.duration_s:g}"
                    f"/s{self.seed}/i{self.instances}/k{self.keep_alive_s:g}")
            if self.trace_retention is not None:
                cell += f"/t{self.trace_retention}"
            if self.resilience is not None:
                cell += "/rz"
            if self.packs is not None:
                cell += "/pk"
            if self.faults is not None and not self.faults.is_zero:
                # Tasks differing only in their fault plans must land
                # in distinct report cells.
                cell += f"/f{self.faults.digest()}"
            return cell
        if self.kind == "fleet":
            devices = ",".join(self.region_devices)
            cell = (f"fleet/{devices}/{self.model}/{self.scheme}"
                    f"/b{self.batch}/{self.arrival}/r{self.rate_hz:g}"
                    f"/d{self.duration_s:g}/s{self.seed}"
                    f"/i{self.instances}/k{self.keep_alive_s:g}"
                    f"/{self.routing}")
            if self.autoscale is not None:
                cell += f"/a{self.autoscale.kind}"
                if self.autoscale.idle_timeout_s is not None:
                    cell += f"-t{self.autoscale.idle_timeout_s:g}"
                if self.autoscale.checkpoint_restore:
                    cell += "-cr"
            if self.shed_wait_s is not None:
                cell += f"/w{self.shed_wait_s:g}"
            if self.slo is not None:
                cell += f"/slo{self.slo.availability_target:g}"
                if self.slo.p99_target_s is not None:
                    cell += f"-p{self.slo.p99_target_s:g}"
                if self.slo.cold_rate_target is not None:
                    cell += f"-c{self.slo.cold_rate_target:g}"
            if self.packs is not None:
                cell += "/pk"
            if self.faults is not None and not self.faults.is_zero:
                cell += f"/f{self.faults.digest()}"
            return cell
        return f"{self.kind}/{self.device}/{self.model}/{self.scheme}/b{self.batch}"

    def describe(self) -> Dict[str, Any]:
        """JSON-safe dict of every outcome-relevant field (cache keys
        and report cells are built from this)."""
        out = asdict(self)
        out["faults"] = asdict(self.faults) if self.faults is not None else None
        out["resilience"] = (asdict(self.resilience)
                             if self.resilience is not None else None)
        out["autoscale"] = (asdict(self.autoscale)
                            if self.autoscale is not None else None)
        if self.kind not in ("cluster", "fleet"):
            for knob in ("rate_hz", "duration_s", "seed", "instances",
                         "keep_alive_s", "trace_retention", "trace_ring",
                         "resilience"):
                del out[knob]
        elif self.trace_retention is None:
            # Keep cache keys for untraced replays stable across the
            # introduction of the tracing knobs.
            del out["trace_retention"], out["trace_ring"]
        if not self.collect_metrics:
            # Same stability rule for the metrics knob.
            del out["collect_metrics"]
        if self.kind == "cluster" and self.resilience is None:
            # Same stability rule for the resilience knob.
            del out["resilience"]
        if self.kind == "fleet":
            # Fleet tasks never carry one (enforced in __post_init__).
            del out["resilience"]
        else:
            # The fleet knobs vanish from every non-fleet description so
            # pre-fleet cache keys stay valid verbatim.
            for knob in ("arrival", "peak_rate_hz", "period_s", "burst_s",
                         "fleet_devices", "routing", "autoscale",
                         "shed_wait_s"):
                del out[knob]
        if self.slo is None:
            # Same stability rule for the SLO-monitor knob.
            del out["slo"]
        if self.packs is None:
            # Same stability rule for the pack-hierarchy knob.
            out.pop("packs", None)
        if self.kind == "hot":
            # Hot serves always run the baseline-lowered program.
            del out["scheme"]
        return out


# ----------------------------------------------------------------------
# Result <-> payload round-trips
# ----------------------------------------------------------------------

def _trace_to_payload(trace: TraceRecorder) -> Any:
    """Compact row list for full-retention traces; a full state snapshot
    (records + streaming aggregates) otherwise, since an aggregate-mode
    recorder cannot be rebuilt from its ring alone."""
    if trace.retention == "full":
        return [[r.start, r.end, r.actor, r.phase.value, r.label,
                 [[k, v] for k, v in r.meta]] for r in trace.records]
    return trace.state_dict()


def _trace_from_payload(payload: Any) -> TraceRecorder:
    if isinstance(payload, dict):
        return TraceRecorder.from_state(payload)
    recorder = TraceRecorder()
    for start, end, actor, phase, label, meta in payload:
        recorder.ingest(TraceRecord(
            start, end, actor, Phase(phase), label,
            tuple((k, v) for k, v in meta)))
    return recorder


def _counters_to_payload(counters: Optional[FaultCounters]
                         ) -> Optional[Dict[str, int]]:
    return counters.as_dict() if counters is not None else None


def _counters_from_payload(payload: Optional[Dict[str, int]]
                           ) -> Optional[FaultCounters]:
    return FaultCounters(**payload) if payload is not None else None


def _cache_stats_to_payload(stats: Optional[CacheStats]
                            ) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {f.name: getattr(stats, f.name) for f in fields(CacheStats)}


def _cache_stats_from_payload(payload: Optional[Dict[str, Any]]
                              ) -> Optional[CacheStats]:
    return CacheStats(**payload) if payload is not None else None


def result_to_payload(result: ExecutionResult) -> Dict[str, Any]:
    """A JSON-safe payload that reconstructs ``result`` exactly."""
    return {
        "type": "execution",
        "scheme": result.scheme,
        "model": result.model,
        "batch": result.batch,
        "total_time": result.total_time,
        "trace": _trace_to_payload(result.trace),
        "loads": result.loads,
        "loaded_bytes": result.loaded_bytes,
        "milestone": result.milestone,
        "cache_stats": _cache_stats_to_payload(result.cache_stats),
        "reused_layers": result.reused_layers,
        "skipped_loads": result.skipped_loads,
        "faults": _counters_to_payload(result.faults),
        "failed": result.failed,
        "metadata": dict(result.metadata),
    }


def result_from_payload(payload: Dict[str, Any]) -> ExecutionResult:
    """Inverse of :func:`result_to_payload`."""
    if payload.get("type") != "execution":
        raise ValueError(f"not an execution payload: {payload.get('type')!r}")
    return ExecutionResult(
        scheme=payload["scheme"], model=payload["model"],
        batch=payload["batch"], total_time=payload["total_time"],
        trace=_trace_from_payload(payload["trace"]),
        loads=payload["loads"], loaded_bytes=payload["loaded_bytes"],
        milestone=payload["milestone"],
        cache_stats=_cache_stats_from_payload(payload["cache_stats"]),
        reused_layers=payload["reused_layers"],
        skipped_loads=payload["skipped_loads"],
        faults=_counters_from_payload(payload["faults"]),
        failed=payload["failed"],
        metadata=dict(payload["metadata"]),
    )


def cluster_stats_to_payload(stats: ClusterStats) -> Dict[str, Any]:
    """A JSON-safe payload that reconstructs ``stats`` exactly."""
    payload = {
        "type": "cluster",
        "latencies": list(stats.latencies),
        "cold_starts": stats.cold_starts,
        "warm_hits": stats.warm_hits,
        "queue_waits": list(stats.queue_waits),
        "failed": stats.failed,
        "shed": stats.shed,
        "faults": stats.faults.as_dict(),
        "fast_forwarded": stats.fast_forwarded,
        "trace": (_trace_to_payload(stats.trace)
                  if stats.trace is not None else None),
    }
    if stats.packs is not None:
        # Absent rather than null so pre-packs payloads stay byte-stable.
        payload["pack_restores"] = stats.pack_restores
        payload["packs"] = stats.packs.as_dict()
    return payload


def cluster_stats_from_payload(payload: Dict[str, Any]) -> ClusterStats:
    """Inverse of :func:`cluster_stats_to_payload`."""
    if payload.get("type") != "cluster":
        raise ValueError(f"not a cluster payload: {payload.get('type')!r}")
    trace_payload = payload.get("trace")
    return ClusterStats(
        latencies=list(payload["latencies"]),
        cold_starts=payload["cold_starts"],
        warm_hits=payload["warm_hits"],
        queue_waits=list(payload["queue_waits"]),
        failed=payload["failed"],
        shed=payload.get("shed", 0),
        faults=FaultCounters(**payload["faults"]),
        fast_forwarded=payload.get("fast_forwarded", 0),
        trace=(_trace_from_payload(trace_payload)
               if trace_payload is not None else None),
        pack_restores=payload.get("pack_restores", 0),
        packs=(PackTransferCounters(**payload["packs"])
               if payload.get("packs") is not None else None),
    )


def _region_to_payload(r: RegionStats) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "name": r.name, "device": r.device,
        "latencies": list(r.latencies),
        "cold_starts": r.cold_starts, "warm_hits": r.warm_hits,
        "restores": r.restores, "restore_s": r.restore_s,
        "queue_waits": list(r.queue_waits),
        "failed": r.failed, "shed": r.shed,
        "prewarm_spawns": r.prewarm_spawns,
        "prewarm_restores": r.prewarm_restores,
        "prewarm_s": r.prewarm_s,
        "scale_ups": r.scale_ups, "scale_downs": r.scale_downs,
        "faults": r.faults.as_dict(),
        "fast_forwarded": r.fast_forwarded,
        "trace": (_trace_to_payload(r.trace)
                  if r.trace is not None else None)}
    if r.packs is not None:
        # Absent rather than null so pre-packs payloads stay byte-stable.
        entry["pack_restores"] = r.pack_restores
        entry["packs"] = r.packs.as_dict()
    return entry


def fleet_stats_to_payload(stats: FleetStats) -> Dict[str, Any]:
    """A JSON-safe payload that reconstructs ``stats`` exactly."""
    payload: Dict[str, Any] = {
        "type": "fleet",
        "offered": stats.offered,
        "shed_unroutable": stats.shed_unroutable,
        "delegated": stats.delegated,
        "regions": [_region_to_payload(r) for r in stats.regions.values()],
        "tenants": [
            {"name": t.name, "offered": t.offered, "failed": t.failed,
             "shed": t.shed, "latencies": list(t.latencies)}
            for t in stats.tenants.values()],
    }
    if stats.monitors is not None:
        # Absent rather than null so pre-SLO payloads stay byte-stable.
        payload["monitors"] = stats.monitors
    return payload


def fleet_stats_from_payload(payload: Dict[str, Any]) -> FleetStats:
    """Inverse of :func:`fleet_stats_to_payload`."""
    if payload.get("type") != "fleet":
        raise ValueError(f"not a fleet payload: {payload.get('type')!r}")
    stats = FleetStats(offered=payload["offered"],
                       shed_unroutable=payload["shed_unroutable"],
                       delegated=payload["delegated"])
    for entry in payload["regions"]:
        trace_payload = entry.get("trace")
        stats.regions[entry["name"]] = RegionStats(
            name=entry["name"], device=entry["device"],
            latencies=list(entry["latencies"]),
            cold_starts=entry["cold_starts"],
            warm_hits=entry["warm_hits"],
            restores=entry["restores"], restore_s=entry["restore_s"],
            queue_waits=list(entry["queue_waits"]),
            failed=entry["failed"], shed=entry["shed"],
            prewarm_spawns=entry["prewarm_spawns"],
            prewarm_restores=entry["prewarm_restores"],
            prewarm_s=entry["prewarm_s"],
            scale_ups=entry["scale_ups"],
            scale_downs=entry["scale_downs"],
            faults=FaultCounters(**entry["faults"]),
            fast_forwarded=entry["fast_forwarded"],
            trace=(_trace_from_payload(trace_payload)
                   if trace_payload is not None else None),
            pack_restores=entry.get("pack_restores", 0),
            packs=(PackTransferCounters(**entry["packs"])
                   if entry.get("packs") is not None else None))
    for entry in payload["tenants"]:
        stats.tenants[entry["name"]] = TenantStats(
            name=entry["name"], offered=entry["offered"],
            failed=entry["failed"], shed=entry["shed"],
            latencies=list(entry["latencies"]))
    stats.monitors = payload.get("monitors")
    return stats


def payload_to_object(payload: Dict[str, Any]) -> Any:
    """Reconstruct whichever result object ``payload`` encodes."""
    if payload.get("type") == "cluster":
        return cluster_stats_from_payload(payload)
    if payload.get("type") == "fleet":
        return fleet_stats_from_payload(payload)
    return result_from_payload(payload)


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------

# One server per device per process: reuses compiled programs across
# tasks without ever affecting results (each serve runs a fresh
# Environment).
_SERVERS: Dict[str, InferenceServer] = {}


def _server(device: str) -> InferenceServer:
    if device not in _SERVERS:
        _SERVERS[device] = InferenceServer(device)
    return _SERVERS[device]


def arrival_trace(task: ExperimentTask) -> RequestTrace:
    """The workload a fleet task replays, from its arrival knobs.

    Unset shape knobs get derived defaults (peak = 4x/8x the base rate,
    period = a fraction of the duration) so the common case needs only
    ``arrival=...`` on top of the cluster knobs.
    """
    if task.arrival == "poisson":
        return poisson_trace(task.model, task.rate_hz, task.duration_s,
                             seed=task.seed, batch=task.batch)
    if task.arrival == "diurnal":
        peak = (task.peak_rate_hz if task.peak_rate_hz is not None
                else 4.0 * task.rate_hz)
        period = (task.period_s if task.period_s is not None
                  else task.duration_s / 2.0)
        return diurnal_trace(task.model, task.rate_hz, peak, period,
                             task.duration_s, seed=task.seed,
                             batch=task.batch)
    burst = (task.peak_rate_hz if task.peak_rate_hz is not None
             else 8.0 * task.rate_hz)
    every = (task.period_s if task.period_s is not None
             else task.duration_s / 4.0)
    burst_len = task.burst_s if task.burst_s is not None else every / 5.0
    return bursty_trace(task.model, task.rate_hz, burst, every, burst_len,
                        task.duration_s, seed=task.seed, batch=task.batch)


def execute_task(task: ExperimentTask) -> Dict[str, Any]:
    """Run ``task``'s simulation and return its JSON-safe payload.

    This is the function worker processes run; it must stay importable
    at module top level so :mod:`concurrent.futures` can pickle it.
    """
    server = _server(task.device)
    metrics = None
    if task.collect_metrics:
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()

    def _with_metrics(payload: Dict[str, Any]) -> Dict[str, Any]:
        if metrics is not None:
            payload["metrics"] = metrics.to_json()
        return payload

    if task.kind == "cold":
        result = server.serve_cold(task.model, task.scheme_enum, task.batch,
                                   faults=task.faults, metrics=metrics)
        return _with_metrics(result_to_payload(result))
    if task.kind == "hot":
        result = server.serve_hot(task.model, task.batch, faults=task.faults,
                                  metrics=metrics)
        return _with_metrics(result_to_payload(result))
    if task.kind == "fleet":
        regions = tuple(
            RegionConfig(name=f"r{index}", device=device,
                         scheme=task.scheme_enum,
                         max_instances=task.instances,
                         keep_alive_s=task.keep_alive_s,
                         faults=task.faults)
            for index, device in enumerate(task.region_devices))
        config = FleetConfig(regions=regions,
                             routing=RoutingPolicy(task.routing),
                             autoscale=task.autoscale,
                             shed_wait_s=task.shed_wait_s,
                             trace_retention=task.trace_retention,
                             trace_ring=task.trace_ring,
                             packs=task.packs)
        servers = {device: _server(device)
                   for device in task.region_devices}
        stats = FleetSimulator(config, metrics=metrics, slo=task.slo,
                               servers=servers).run(arrival_trace(task))
        return _with_metrics(fleet_stats_to_payload(stats))
    trace = poisson_trace(task.model, task.rate_hz, task.duration_s,
                          seed=task.seed, batch=task.batch)
    config = ClusterConfig(scheme=task.scheme_enum,
                           max_instances=task.instances,
                           keep_alive_s=task.keep_alive_s,
                           faults=task.faults,
                           trace_retention=task.trace_retention,
                           trace_ring=task.trace_ring,
                           resilience=task.resilience,
                           packs=task.packs)
    stats = ClusterSimulator(server, config, metrics=metrics).run(trace)
    return _with_metrics(cluster_stats_to_payload(stats))
