"""Experiment tasks: serializable simulation cells and their executor.

An :class:`ExperimentTask` names one deterministic simulation — a cold
serve, a hot serve or a cluster trace replay — with every knob that can
change its outcome.  :func:`execute_task` turns a task into a JSON-safe
payload; :func:`result_from_payload` / :func:`cluster_stats_from_payload`
reconstruct the original result objects exactly (floats survive a JSON
round-trip bit-for-bit via ``repr``), which is what lets the parallel
engine and the on-disk cache stay byte-identical to the serial path.

Workers keep a per-process :class:`~repro.serving.server.InferenceServer`
per device so repeated tasks in one worker reuse compiled programs; the
simulation itself is a pure function of the task, so server reuse never
changes a result.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cache import CacheStats
from repro.core.results import ExecutionResult
from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator, ClusterStats
from repro.serving.requests import poisson_trace
from repro.serving.resilience import ResiliencePolicy
from repro.serving.server import InferenceServer
from repro.sim.faults import FaultCounters, FaultPlan
from repro.sim.trace import (RETENTION_POLICIES, Phase, TraceRecord,
                             TraceRecorder)

__all__ = [
    "ExperimentTask",
    "execute_task",
    "result_to_payload",
    "result_from_payload",
    "cluster_stats_to_payload",
    "cluster_stats_from_payload",
]

_SCHEMES_BY_VALUE = {s.value: s for s in Scheme}


@dataclass(frozen=True)
class ExperimentTask:
    """One deterministic simulation cell.

    ``kind`` selects the executor path:

    - ``"cold"`` — ``InferenceServer.serve_cold(model, scheme, batch)``
    - ``"hot"`` — ``InferenceServer.serve_hot(model, batch)``
    - ``"cluster"`` — a Poisson trace replay (``rate_hz``/``duration_s``/
      ``seed`` generate the trace; ``instances``/``keep_alive_s`` shape
      the pool).
    """

    kind: str = "cold"
    device: str = "MI100"
    model: str = "res"
    scheme: str = Scheme.BASELINE.value
    batch: int = 1
    faults: Optional[FaultPlan] = None
    # Cluster-replay knobs (ignored for cold/hot serves).
    rate_hz: float = 20.0
    duration_s: float = 4.0
    seed: int = 0
    instances: int = 4
    keep_alive_s: float = 0.5
    # Request-level tracing for cluster replays: None records nothing
    # (byte-identical to the pre-tracing simulator), "full" keeps every
    # record, "aggregate" keeps streaming aggregates + a bounded ring.
    trace_retention: Optional[str] = None
    trace_ring: int = 1024
    # Telemetry: collect a metrics-registry dump alongside the result
    # (``payload["metrics"]``).  Defaults off, which leaves payloads —
    # and therefore cache keys and old cached entries — untouched.
    collect_metrics: bool = False
    # Cluster resilience policy (checkpoint/restore, breaker, admission
    # control); None keeps cache keys for policy-free replays stable.
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self) -> None:
        if self.kind not in ("cold", "hot", "cluster"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.scheme not in _SCHEMES_BY_VALUE:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if (self.trace_retention is not None
                and self.trace_retention not in RETENTION_POLICIES):
            raise ValueError(
                f"unknown trace retention {self.trace_retention!r}; "
                f"expected None or one of {RETENTION_POLICIES}")
        if self.trace_ring <= 0:
            raise ValueError("trace_ring must be positive")

    @property
    def scheme_enum(self) -> Scheme:
        """The :class:`Scheme` this task serves under."""
        return _SCHEMES_BY_VALUE[self.scheme]

    @property
    def cell_id(self) -> str:
        """Human-readable stable identifier (used to match baseline
        cells across ``BENCH_*.json`` files)."""
        if self.kind == "cluster":
            cell = (f"cluster/{self.device}/{self.model}/{self.scheme}"
                    f"/b{self.batch}/r{self.rate_hz:g}/d{self.duration_s:g}"
                    f"/s{self.seed}/i{self.instances}/k{self.keep_alive_s:g}")
            if self.trace_retention is not None:
                cell += f"/t{self.trace_retention}"
            if self.resilience is not None:
                cell += "/rz"
            return cell
        return f"{self.kind}/{self.device}/{self.model}/{self.scheme}/b{self.batch}"

    def describe(self) -> Dict[str, Any]:
        """JSON-safe dict of every outcome-relevant field (cache keys
        and report cells are built from this)."""
        out = asdict(self)
        out["faults"] = asdict(self.faults) if self.faults is not None else None
        out["resilience"] = (asdict(self.resilience)
                             if self.resilience is not None else None)
        if self.kind != "cluster":
            for knob in ("rate_hz", "duration_s", "seed", "instances",
                         "keep_alive_s", "trace_retention", "trace_ring",
                         "resilience"):
                del out[knob]
        elif self.trace_retention is None:
            # Keep cache keys for untraced replays stable across the
            # introduction of the tracing knobs.
            del out["trace_retention"], out["trace_ring"]
        if not self.collect_metrics:
            # Same stability rule for the metrics knob.
            del out["collect_metrics"]
        if self.kind == "cluster" and self.resilience is None:
            # Same stability rule for the resilience knob.
            del out["resilience"]
        if self.kind == "hot":
            # Hot serves always run the baseline-lowered program.
            del out["scheme"]
        return out


# ----------------------------------------------------------------------
# Result <-> payload round-trips
# ----------------------------------------------------------------------

def _trace_to_payload(trace: TraceRecorder) -> Any:
    """Compact row list for full-retention traces; a full state snapshot
    (records + streaming aggregates) otherwise, since an aggregate-mode
    recorder cannot be rebuilt from its ring alone."""
    if trace.retention == "full":
        return [[r.start, r.end, r.actor, r.phase.value, r.label,
                 [[k, v] for k, v in r.meta]] for r in trace.records]
    return trace.state_dict()


def _trace_from_payload(payload: Any) -> TraceRecorder:
    if isinstance(payload, dict):
        return TraceRecorder.from_state(payload)
    recorder = TraceRecorder()
    for start, end, actor, phase, label, meta in payload:
        recorder.ingest(TraceRecord(
            start, end, actor, Phase(phase), label,
            tuple((k, v) for k, v in meta)))
    return recorder


def _counters_to_payload(counters: Optional[FaultCounters]
                         ) -> Optional[Dict[str, int]]:
    return counters.as_dict() if counters is not None else None


def _counters_from_payload(payload: Optional[Dict[str, int]]
                           ) -> Optional[FaultCounters]:
    return FaultCounters(**payload) if payload is not None else None


def _cache_stats_to_payload(stats: Optional[CacheStats]
                            ) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {f.name: getattr(stats, f.name) for f in fields(CacheStats)}


def _cache_stats_from_payload(payload: Optional[Dict[str, Any]]
                              ) -> Optional[CacheStats]:
    return CacheStats(**payload) if payload is not None else None


def result_to_payload(result: ExecutionResult) -> Dict[str, Any]:
    """A JSON-safe payload that reconstructs ``result`` exactly."""
    return {
        "type": "execution",
        "scheme": result.scheme,
        "model": result.model,
        "batch": result.batch,
        "total_time": result.total_time,
        "trace": _trace_to_payload(result.trace),
        "loads": result.loads,
        "loaded_bytes": result.loaded_bytes,
        "milestone": result.milestone,
        "cache_stats": _cache_stats_to_payload(result.cache_stats),
        "reused_layers": result.reused_layers,
        "skipped_loads": result.skipped_loads,
        "faults": _counters_to_payload(result.faults),
        "failed": result.failed,
        "metadata": dict(result.metadata),
    }


def result_from_payload(payload: Dict[str, Any]) -> ExecutionResult:
    """Inverse of :func:`result_to_payload`."""
    if payload.get("type") != "execution":
        raise ValueError(f"not an execution payload: {payload.get('type')!r}")
    return ExecutionResult(
        scheme=payload["scheme"], model=payload["model"],
        batch=payload["batch"], total_time=payload["total_time"],
        trace=_trace_from_payload(payload["trace"]),
        loads=payload["loads"], loaded_bytes=payload["loaded_bytes"],
        milestone=payload["milestone"],
        cache_stats=_cache_stats_from_payload(payload["cache_stats"]),
        reused_layers=payload["reused_layers"],
        skipped_loads=payload["skipped_loads"],
        faults=_counters_from_payload(payload["faults"]),
        failed=payload["failed"],
        metadata=dict(payload["metadata"]),
    )


def cluster_stats_to_payload(stats: ClusterStats) -> Dict[str, Any]:
    """A JSON-safe payload that reconstructs ``stats`` exactly."""
    return {
        "type": "cluster",
        "latencies": list(stats.latencies),
        "cold_starts": stats.cold_starts,
        "warm_hits": stats.warm_hits,
        "queue_waits": list(stats.queue_waits),
        "failed": stats.failed,
        "shed": stats.shed,
        "faults": stats.faults.as_dict(),
        "fast_forwarded": stats.fast_forwarded,
        "trace": (_trace_to_payload(stats.trace)
                  if stats.trace is not None else None),
    }


def cluster_stats_from_payload(payload: Dict[str, Any]) -> ClusterStats:
    """Inverse of :func:`cluster_stats_to_payload`."""
    if payload.get("type") != "cluster":
        raise ValueError(f"not a cluster payload: {payload.get('type')!r}")
    trace_payload = payload.get("trace")
    return ClusterStats(
        latencies=list(payload["latencies"]),
        cold_starts=payload["cold_starts"],
        warm_hits=payload["warm_hits"],
        queue_waits=list(payload["queue_waits"]),
        failed=payload["failed"],
        shed=payload.get("shed", 0),
        faults=FaultCounters(**payload["faults"]),
        fast_forwarded=payload.get("fast_forwarded", 0),
        trace=(_trace_from_payload(trace_payload)
               if trace_payload is not None else None),
    )


def payload_to_object(payload: Dict[str, Any]) -> Any:
    """Reconstruct whichever result object ``payload`` encodes."""
    if payload.get("type") == "cluster":
        return cluster_stats_from_payload(payload)
    return result_from_payload(payload)


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------

# One server per device per process: reuses compiled programs across
# tasks without ever affecting results (each serve runs a fresh
# Environment).
_SERVERS: Dict[str, InferenceServer] = {}


def _server(device: str) -> InferenceServer:
    if device not in _SERVERS:
        _SERVERS[device] = InferenceServer(device)
    return _SERVERS[device]


def execute_task(task: ExperimentTask) -> Dict[str, Any]:
    """Run ``task``'s simulation and return its JSON-safe payload.

    This is the function worker processes run; it must stay importable
    at module top level so :mod:`concurrent.futures` can pickle it.
    """
    server = _server(task.device)
    metrics = None
    if task.collect_metrics:
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()

    def _with_metrics(payload: Dict[str, Any]) -> Dict[str, Any]:
        if metrics is not None:
            payload["metrics"] = metrics.to_json()
        return payload

    if task.kind == "cold":
        result = server.serve_cold(task.model, task.scheme_enum, task.batch,
                                   faults=task.faults, metrics=metrics)
        return _with_metrics(result_to_payload(result))
    if task.kind == "hot":
        result = server.serve_hot(task.model, task.batch, faults=task.faults,
                                  metrics=metrics)
        return _with_metrics(result_to_payload(result))
    trace = poisson_trace(task.model, task.rate_hz, task.duration_s,
                          seed=task.seed, batch=task.batch)
    config = ClusterConfig(scheme=task.scheme_enum,
                           max_instances=task.instances,
                           keep_alive_s=task.keep_alive_s,
                           faults=task.faults,
                           trace_retention=task.trace_retention,
                           trace_ring=task.trace_ring,
                           resilience=task.resilience)
    stats = ClusterSimulator(server, config, metrics=metrics).run(trace)
    return _with_metrics(cluster_stats_to_payload(stats))
