"""The parallel engine: fan task grids across a process pool.

:func:`run_tasks` is the core primitive: given an iterable of
:class:`~repro.runner.tasks.ExperimentTask`, it answers every task from
the on-disk cache where possible and fans the misses across a
``ProcessPoolExecutor`` (``jobs <= 1`` degrades to in-process serial
execution, which is also what keeps the golden byte-identity tests
honest).  Results come back in task order regardless of which worker
finished first, so parallelism can never reorder an experiment grid.

:func:`prewarm_suite` is the bridge to the serial world: it computes a
suite's full (device × model × scheme × batch) grid through the engine
and injects the results into the suite's memo tables, after which every
figure/table method runs without simulating anything.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runner.cache import CacheCounters, ResultCache, task_key
from repro.runner.tasks import (ExperimentTask, execute_task,
                                result_from_payload)

__all__ = ["RunStats", "TaskOutcome", "run_tasks", "run_shards",
           "prewarm_suite", "prewarm_suite_tasks"]


def run_shards(worker, payloads, jobs: int = 1, pool=None) -> list:
    """Map a picklable ``worker`` over ``payloads``, preserving order.

    The sharded-replay primitive under
    :func:`repro.fleet.parallel.run_fleet_sharded`: when ``pool`` (a
    ``ProcessPoolExecutor``) is given it is used directly — callers
    running several optimistic rounds keep one pool alive across calls
    instead of paying a spin-up per round.  Otherwise ``jobs > 1``
    spins up a transient pool, and ``jobs <= 1`` executes in-process —
    the same code path bit for bit, which is what keeps the
    byte-identity tests honest without forking.
    """
    items = list(payloads)
    if len(items) > 1:
        if pool is not None:
            return list(pool.map(worker, items, chunksize=1))
        if jobs > 1:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(items))) as transient:
                return list(transient.map(worker, items, chunksize=1))
    return [worker(item) for item in items]


@dataclass(frozen=True)
class TaskOutcome:
    """One task's payload plus where it came from."""

    payload: dict
    cached: bool = False


@dataclass
class RunStats:
    """Outcome accounting for one :func:`run_tasks` call."""

    jobs: int = 1
    tasks: int = 0
    executed: int = 0          # cold executions (cache misses actually run)
    wall_s: float = 0.0
    cache: CacheCounters = field(default_factory=CacheCounters)

    @property
    def hits(self) -> int:
        """Tasks answered straight from the on-disk cache."""
        return self.cache.hits


def _dedupe(tasks: Iterable[ExperimentTask]) -> List[ExperimentTask]:
    seen = set()
    out: List[ExperimentTask] = []
    for task in tasks:
        if task not in seen:
            seen.add(task)
            out.append(task)
    return out


def run_tasks(tasks: Iterable[ExperimentTask], jobs: int = 1,
              cache: Optional[ResultCache] = None
              ) -> Tuple[Dict[ExperimentTask, TaskOutcome], RunStats]:
    """Run ``tasks``, returning ``{task: outcome}`` in task order.

    Cache hits are answered without executing anything; misses run in a
    process pool of ``jobs`` workers (serially in-process for ``jobs <=
    1``) and are written back to the cache by this — the only — writer
    process.
    """
    ordered = _dedupe(tasks)
    stats = RunStats(jobs=max(1, jobs), tasks=len(ordered))
    started = time.perf_counter()
    outcomes: Dict[ExperimentTask, TaskOutcome] = {}
    misses: List[ExperimentTask] = []
    keys: Dict[ExperimentTask, str] = {}
    for task in ordered:
        if cache is not None:
            keys[task] = task_key(task)
            hit = cache.lookup(keys[task])
            if hit is not None:
                outcomes[task] = TaskOutcome(hit, cached=True)
                continue
        misses.append(task)
    if misses:
        if jobs > 1:
            workers = min(jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(pool.map(execute_task, misses, chunksize=1))
        else:
            fresh = [execute_task(task) for task in misses]
        for task, payload in zip(misses, fresh):
            outcomes[task] = TaskOutcome(payload, cached=False)
            if cache is not None:
                cache.store(keys[task], task, payload)
    stats.executed = len(misses)
    stats.wall_s = time.perf_counter() - started
    if cache is not None:
        stats.cache = cache.counters
    return {task: outcomes[task] for task in ordered}, stats


def prewarm_suite(suite, schemes: Sequence, batches: Sequence[int] = (1,),
                  devices: Optional[Sequence[str]] = None,
                  include_hot: bool = True, jobs: int = 1,
                  cache: Optional[ResultCache] = None) -> RunStats:
    """Compute a suite's grid through the engine and seed its memos.

    ``suite`` is an :class:`~repro.serving.experiments.ExperimentSuite`;
    after this call its figure/table methods replay from memoized cells
    without running a single simulation.  The injected results are the
    payload round-trip of the exact simulations the suite would have
    run, so figures are byte-identical to the serial path.
    """
    devices = list(devices) if devices is not None else [suite.device]
    tasks: List[ExperimentTask] = []
    for device in devices:
        for model in suite.models:
            for scheme in schemes:
                for batch in batches:
                    tasks.append(ExperimentTask(
                        kind="cold", device=device, model=model,
                        scheme=scheme.value, batch=batch,
                        faults=suite.faults))
            if include_hot:
                tasks.append(ExperimentTask(kind="hot", device=device,
                                            model=model, faults=suite.faults))
    return prewarm_suite_tasks(suite, tasks, jobs=jobs, cache=cache)


def prewarm_suite_tasks(suite, tasks: Sequence[ExperimentTask],
                        jobs: int = 1,
                        cache: Optional[ResultCache] = None) -> RunStats:
    """Run an explicit cold/hot task grid and seed ``suite``'s memos.

    Cluster tasks are rejected — a suite has no memo slot for them; run
    those through :func:`run_tasks` directly.
    """
    for task in tasks:
        if task.kind == "cluster":
            raise ValueError("cluster tasks cannot prewarm a suite")
    outcomes, stats = run_tasks(tasks, jobs=jobs, cache=cache)
    for task, outcome in outcomes.items():
        result = result_from_payload(outcome.payload)
        if task.kind == "cold":
            suite.inject_cold(task.device, task.model, task.scheme_enum,
                              task.batch, result)
        else:
            suite.inject_hot(task.device, task.model, task.batch, result)
    return stats
