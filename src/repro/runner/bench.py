"""The ``repro bench`` harness: grids in, ``BENCH_*.json`` out.

One bench run executes a curated grid through the parallel engine,
reports wall-clock time, total simulated time and cache hit/miss
counters, and writes a machine-readable ``BENCH_<timestamp>.json`` that
seeds the repo's perf trajectory.  ``--baseline`` compares a fresh
report against an older one and exits nonzero when any cell's
simulated time (or any summary speedup) regressed beyond the tolerance
— the deterministic counterpart of a wall-clock perf gate, immune to
machine noise.

Everything outside the ``run`` section of a report is deterministic:
two warm-cache runs of the same grid produce byte-identical payloads
modulo that one section (pinned by the determinism tests).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional

from repro._version import __version__
from repro.core.schemes import Scheme
from repro.packs.store import PackTransferCounters
from repro.runner.cache import ResultCache
from repro.runner.engine import RunStats, TaskOutcome, run_tasks
from repro.runner.grid import bench_grid
from repro.runner.schema import SCHEMA_VERSION, validate_report
from repro.runner.tasks import (ExperimentTask, cluster_stats_from_payload,
                                fleet_stats_from_payload,
                                result_from_payload)

__all__ = ["BenchReport", "build_report", "write_report", "compare_reports",
           "run_bench"]

_BASELINE_LABEL = Scheme.BASELINE.value


@dataclass
class BenchReport:
    """A built report plus where it landed and how the gate went."""

    payload: Dict[str, Any]
    path: Optional[str] = None
    regressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run passed the (optional) baseline gate."""
        return not self.regressions


def _serve_cell(task: ExperimentTask, outcome: TaskOutcome) -> Dict[str, Any]:
    result = result_from_payload(outcome.payload)
    return {
        "id": task.cell_id, "kind": task.kind, "device": task.device,
        "model": task.model, "scheme": result.scheme, "batch": task.batch,
        "cache_hit": outcome.cached, "total_time_s": result.total_time,
        "loads": result.loads, "loaded_bytes": result.loaded_bytes,
        "gpu_utilization": result.gpu_utilization, "failed": result.failed,
    }


def _cluster_cell(task: ExperimentTask, outcome: TaskOutcome
                  ) -> Dict[str, Any]:
    stats = cluster_stats_from_payload(outcome.payload)
    trace = stats.trace
    cell = {
        "id": task.cell_id, "kind": "cluster", "device": task.device,
        "model": task.model, "scheme": task.scheme, "batch": task.batch,
        "cache_hit": outcome.cached, "requests": stats.requests,
        "completed": stats.completed, "failed": stats.failed,
        "cold_starts": stats.cold_starts,
        "mean_latency_s": stats.mean_latency,
        "p50_s": stats.percentile(0.50), "p99_s": stats.percentile(0.99),
        "fast_forwarded": stats.fast_forwarded,
        "trace_records": trace.record_count if trace is not None else 0,
        "trace_retained": trace.retained_records if trace is not None else 0,
    }
    if task.faults is not None or task.resilience is not None:
        # Robustness columns, only for cells that can exercise them --
        # policy-free, fault-free grids keep their exact report shape
        # (and therefore byte-identical BENCH outputs).
        cell["shed"] = stats.shed
        cell["availability"] = stats.availability
        cell["faults"] = stats.faults.as_dict()
        cell["resilience"] = task.resilience is not None
    if task.packs is not None:
        # Pack-hierarchy columns, same gating rule: pack-free grids
        # keep their exact report shape.
        cell["pack_restores"] = stats.pack_restores
        cell["packs"] = (stats.packs.as_dict()
                         if stats.packs is not None else None)
    return cell


def _fleet_cell(task: ExperimentTask, outcome: TaskOutcome
                ) -> Dict[str, Any]:
    stats = fleet_stats_from_payload(outcome.payload)
    cell = {
        "id": task.cell_id, "kind": "fleet",
        "device": ",".join(task.region_devices),
        "model": task.model, "scheme": task.scheme, "batch": task.batch,
        "cache_hit": outcome.cached,
        "regions": len(stats.regions),
        "routing": task.routing,
        "autoscale": (task.autoscale.kind if task.autoscale is not None
                      else "fixed"),
        "arrival": task.arrival,
        "offered": stats.offered, "completed": stats.completed,
        "failed": stats.failed, "shed": stats.shed,
        "cold_starts": stats.cold_starts, "warm_hits": stats.warm_hits,
        "restores": stats.restores,
        "prewarm_spawns": stats.prewarm_spawns,
        "availability": stats.availability,
        "mean_latency_s": stats.mean_latency,
        "p50_s": stats.percentile(0.50), "p99_s": stats.percentile(0.99),
        "fast_forwarded": stats.fast_forwarded,
        "delegated": stats.delegated,
    }
    if task.packs is not None:
        merged = PackTransferCounters()
        for region in stats.regions.values():
            if region.packs is not None:
                merged.merge(region.packs)
        cell["pack_restores"] = stats.pack_restores
        cell["packs"] = merged.as_dict()
    return cell


_CELL_BUILDERS = {"cold": _serve_cell, "hot": _serve_cell,
                  "cluster": _cluster_cell, "fleet": _fleet_cell}


def _summary_speedups(cells: List[Dict[str, Any]]) -> Dict[str, float]:
    """Average cold-start speedup over Baseline per scheme, across every
    (device, model, batch) group that has a Baseline cell."""
    groups: Dict[tuple, Dict[str, float]] = {}
    for cell in cells:
        if cell["kind"] != "cold":
            continue
        key = (cell["device"], cell["model"], cell["batch"])
        groups.setdefault(key, {})[cell["scheme"]] = cell["total_time_s"]
    ratios: Dict[str, List[float]] = {}
    for times in groups.values():
        base = times.get(_BASELINE_LABEL)
        if not base:
            continue
        for scheme, total in times.items():
            if scheme == _BASELINE_LABEL or total <= 0:
                continue
            ratios.setdefault(scheme, []).append(base / total)
    return {scheme: sum(values) / len(values)
            for scheme, values in sorted(ratios.items())}


def build_report(grid: str, outcomes: Dict[ExperimentTask, TaskOutcome],
                 stats: RunStats, cache: Optional[ResultCache],
                 created_unix: Optional[float] = None) -> Dict[str, Any]:
    """Assemble the ``BENCH_*.json`` payload for one engine run."""
    if created_unix is None:
        created_unix = time.time()
    cells: List[Dict[str, Any]] = []
    metric_dumps: List[Dict[str, Any]] = []
    monitors_by_cell: Dict[str, Any] = {}
    for task, outcome in outcomes.items():
        cells.append(_CELL_BUILDERS[task.kind](task, outcome))
        dump = outcome.payload.get("metrics")
        if dump:
            metric_dumps.append(dump)
        if task.kind == "fleet":
            summary = outcome.payload.get("monitors")
            if summary:
                monitors_by_cell[task.cell_id] = summary
    simulated = sum(cell["total_time_s"] for cell in cells
                    if cell["kind"] in ("cold", "hot"))
    report: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "meta": {"code_version": __version__, "grid": grid,
                 "jobs": stats.jobs},
        "run": {"created_unix": created_unix,
                "created_iso": datetime.fromtimestamp(
                    created_unix, timezone.utc).isoformat(),
                "wall_clock_s": stats.wall_s},
        "cache": {"enabled": cache is not None and cache.read,
                  **(cache.counters.as_dict() if cache is not None
                     else {"hits": 0, "misses": 0, "writes": 0})},
        "totals": {"cells": len(cells), "executed": stats.executed,
                   "simulated_time_s": simulated},
        "cells": cells,
        "summary": {"speedups": _summary_speedups(cells)},
    }
    if metric_dumps:
        # Per-cell registry dumps fold into one report-level view
        # (counters/histograms add, gauges last-write-wins); omitted
        # entirely when no cell collected metrics, so existing reports
        # keep their exact shape.
        from repro.obs.metrics import merge_dumps
        report["metrics"] = merge_dumps(metric_dumps)
    if monitors_by_cell:
        # SLO monitor summaries keyed by fleet cell id; same
        # omit-when-empty rule keeps monitor-free reports byte-stable.
        report["monitors"] = monitors_by_cell
    return report


def write_report(report: Dict[str, Any], out_dir: str = ".") -> str:
    """Write ``report`` as ``BENCH_<timestamp>.json`` under ``out_dir``."""
    stamp = datetime.fromtimestamp(
        report["run"]["created_unix"],
        timezone.utc).strftime("%Y%m%d-%H%M%S")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = 0.05) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    A cold/hot cell regresses when its simulated time grew by more than
    ``tolerance`` (relative); a cluster cell when its mean or p99
    latency did, or when its availability *shrank* by more than
    ``tolerance`` (chaos cells report it); a summary speedup when it
    shrank by more than ``tolerance``.  Cells present in only one
    report are ignored — a grid change is not a regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    regressions: List[str] = []
    base_cells = {cell["id"]: cell for cell in baseline.get("cells", [])}
    metrics_by_kind = {"cold": ("total_time_s",), "hot": ("total_time_s",),
                       "cluster": ("mean_latency_s", "p99_s"),
                       "fleet": ("mean_latency_s", "p99_s")}
    for cell in current.get("cells", []):
        base = base_cells.get(cell["id"])
        if base is None or base.get("kind") != cell["kind"]:
            continue
        for metric in metrics_by_kind[cell["kind"]]:
            old = base.get(metric)
            new = cell.get(metric)
            if old is None or new is None or old <= 0:
                continue
            if new > old * (1.0 + tolerance):
                regressions.append(
                    f"{cell['id']}: {metric} {old:.6g} -> {new:.6g} "
                    f"(+{(new / old - 1.0):.1%}, tolerance "
                    f"{tolerance:.1%})")
        if cell["kind"] in ("cluster", "fleet"):
            old = base.get("availability")
            new = cell.get("availability")
            if (old is not None and new is not None and old > 0
                    and new < old * (1.0 - tolerance)):
                regressions.append(
                    f"{cell['id']}: availability {old:.6g} -> {new:.6g} "
                    f"(-{(1.0 - new / old):.1%}, tolerance "
                    f"{tolerance:.1%})")
    base_speedups = baseline.get("summary", {}).get("speedups", {})
    for scheme, new in current.get("summary", {}).get("speedups",
                                                      {}).items():
        old = base_speedups.get(scheme)
        if old is None or old <= 0:
            continue
        if new < old * (1.0 - tolerance):
            regressions.append(
                f"summary speedup {scheme}: {old:.3f}x -> {new:.3f}x "
                f"(-{(1.0 - new / old):.1%}, tolerance {tolerance:.1%})")
    return regressions


def run_bench(grid: str = "quick", jobs: int = 1,
              cache_dir: str = ".repro-cache", use_cache: bool = True,
              out_dir: str = ".", baseline_path: Optional[str] = None,
              tolerance: float = 0.05, write: bool = True,
              trace_retention: Optional[str] = None,
              cluster_scale: float = 1.0,
              collect_metrics: bool = False,
              resilience=None,
              fleet: bool = False,
              slo=None,
              echo: Optional[Callable[[str], None]] = None) -> BenchReport:
    """Run one full bench cycle: grid → engine → report (→ gate).

    ``use_cache=False`` (the ``--no-cache`` path) skips cache reads but
    still writes fresh results back, so the store ends the run warm.
    ``trace_retention``/``cluster_scale`` parameterize the cluster cells
    (request-level tracing and simulated request count; see
    :func:`~repro.runner.grid.bench_grid`); ``collect_metrics`` attaches
    telemetry registries and adds a merged ``metrics`` section to the
    report.  ``resilience`` (a
    :class:`~repro.serving.resilience.ResiliencePolicy`) adds the
    resilience dimension to the cluster cells.  ``fleet`` adds the
    fleet dimension (``fleet/...`` cells): multi-region replays with
    warm-first routing and scale-to-zero autoscaling per headline
    scheme.  ``slo`` (a :class:`~repro.obs.monitors.SLOPolicy`) attaches
    burn-rate monitors to the fleet cells and adds a ``monitors``
    section to the report.
    """
    def say(text: str = "") -> None:
        if echo is not None:
            echo(text)

    tasks = bench_grid(grid, trace_retention=trace_retention,
                       cluster_scale=cluster_scale,
                       collect_metrics=collect_metrics,
                       resilience=resilience, fleet=fleet, slo=slo)
    cache = ResultCache(cache_dir, read=use_cache, write=True)
    say(f"repro bench: grid {grid!r}, {len(tasks)} cells, jobs={jobs}, "
        f"cache {'on' if use_cache else 'bypassed (writes only)'} "
        f"at {cache_dir}")
    outcomes, stats = run_tasks(tasks, jobs=jobs, cache=cache)
    report_payload = build_report(grid, outcomes, stats, cache)
    problems = validate_report(report_payload)
    if problems:  # defensive: the builder always emits schema-valid JSON
        raise RuntimeError(f"bench emitted schema-invalid report: {problems}")
    totals = report_payload["totals"]
    say(f"  wall-clock {stats.wall_s:.2f}s, simulated "
        f"{totals['simulated_time_s']:.3f}s across {totals['cells']} cells")
    say(f"  cache: {stats.cache.hits} hits, {stats.cache.misses} misses, "
        f"{stats.cache.writes} writes ({stats.executed} cold executions)")
    for scheme, speedup in report_payload["summary"]["speedups"].items():
        say(f"  avg cold-start speedup {scheme}: {speedup:.2f}x")
    monitors = report_payload.get("monitors")
    if monitors:
        fired = sum(1 for summary in monitors.values()
                    for state in summary["monitors"].values()
                    if state["fired"])
        say(f"  slo monitors: {len(monitors)} fleet cells watched, "
            f"{fired} monitor(s) fired")
    report = BenchReport(report_payload)
    if write:
        report.path = write_report(report_payload, out_dir)
        say(f"  wrote {report.path}")
    if baseline_path is not None:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        report.regressions = compare_reports(report_payload, baseline,
                                             tolerance)
        if report.regressions:
            say(f"  REGRESSIONS vs {baseline_path}:")
            for line in report.regressions:
                say(f"    {line}")
        else:
            say(f"  no regressions vs {baseline_path} "
                f"(tolerance {tolerance:.1%})")
    return report
