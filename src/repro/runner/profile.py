"""Simulator throughput profiling behind ``repro profile``.

Reports the three numbers the perf work optimizes for:

- **wall-clock per simulated request** on a cluster trace replay (and
  the fraction of requests served by the steady-state fast path),
- **peak retained trace records** (bounded by the ring under
  ``retention="aggregate"``, unbounded under ``"full"``),
- **event-kernel throughput** — raw scheduled events per second through
  :class:`~repro.sim.core.Environment`.

All simulated results stay deterministic; only the wall-clock readings
vary between machines, which is why they live here and not in the
deterministic ``BENCH_*.json`` cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from repro.core.schemes import Scheme
from repro.serving.cluster import ClusterConfig, ClusterSimulator
from repro.serving.requests import poisson_trace
from repro.serving.server import InferenceServer
from repro.sim.core import Environment

__all__ = ["ClusterProfile", "EventKernelProfile", "FleetProfile",
           "FleetTelemetryProfile", "PackProfile", "TelemetryProfile",
           "profile_cluster", "profile_event_kernel", "profile_fleet",
           "profile_fleet_telemetry", "profile_packs",
           "profile_telemetry"]


@dataclass(frozen=True)
class ClusterProfile:
    """Wall-clock and memory profile of one cluster trace replay."""

    requests: int
    wall_s: float
    fast_forwarded: int
    trace_records: int
    peak_retained_records: int
    cold_starts: int
    mean_latency_s: float

    @property
    def wall_per_request_s(self) -> float:
        """Wall-clock seconds spent per simulated request."""
        return self.wall_s / self.requests if self.requests else 0.0

    @property
    def requests_per_s(self) -> float:
        """Simulated requests replayed per wall-clock second."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def fast_forward_fraction(self) -> float:
        """Share of requests served by the analytic fast path."""
        return (self.fast_forwarded / self.requests
                if self.requests else 0.0)


@dataclass(frozen=True)
class EventKernelProfile:
    """Raw throughput of the discrete-event kernel."""

    events: int
    wall_s: float

    @property
    def events_per_s(self) -> float:
        """Scheduled events processed per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def profile_cluster(device: str = "MI100", model: str = "res",
                    scheme: Scheme = Scheme.PASK,
                    requests: int = 100_000, rate_hz: float = 20.0,
                    instances: int = 4, keep_alive_s: float = 0.5,
                    seed: int = 0,
                    trace_retention: Optional[str] = "aggregate",
                    trace_ring: int = 1024,
                    fast_forward: bool = True) -> ClusterProfile:
    """Replay a ~``requests``-arrival Poisson trace and time it.

    ``requests`` sets the trace duration (``requests / rate_hz``), so
    the actual arrival count is Poisson-distributed around it; the
    returned profile reports the exact count.  Trace generation and
    server construction are excluded from the timed section — the
    profile isolates the simulator's replay loop.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    server = InferenceServer(device)
    trace = poisson_trace(model, rate_hz, requests / rate_hz, seed=seed)
    config = ClusterConfig(scheme=scheme, max_instances=instances,
                           keep_alive_s=keep_alive_s,
                           trace_retention=trace_retention,
                           trace_ring=trace_ring,
                           fast_forward=fast_forward)
    simulator = ClusterSimulator(server, config)
    began = perf_counter()
    stats = simulator.run(trace)
    wall = perf_counter() - began
    recorder = stats.trace
    return ClusterProfile(
        requests=stats.requests,
        wall_s=wall,
        fast_forwarded=stats.fast_forwarded,
        trace_records=recorder.record_count if recorder is not None else 0,
        peak_retained_records=(recorder.retained_records
                               if recorder is not None else 0),
        cold_starts=stats.cold_starts,
        mean_latency_s=stats.mean_latency,
    )


@dataclass(frozen=True)
class FleetProfile:
    """Wall-clock profile of one sharded fleet trace replay."""

    requests: int
    regions: int
    jobs: int
    mode: str                      # "delegated" | "static" | "time-warp"
    wall_s: float
    serial_wall_s: float           # 0.0 unless compare_serial was set
    rounds: int
    rollbacks: int
    fast_forwarded: int            # requests served by the analytic path
    region_wall_s: dict
    mean_latency_s: float
    # Flight-recorder stats — zeroed outside time-warp mode, so the
    # ``repro profile --fleet`` output stays stable to parse.
    max_rollback_depth: int = 0
    resimulated: int = 0
    round_wall_s: tuple = ()

    @property
    def wall_per_request_s(self) -> float:
        """Wall-clock seconds spent per simulated request."""
        return self.wall_s / self.requests if self.requests else 0.0

    @property
    def requests_per_s(self) -> float:
        """Simulated requests replayed per wall-clock second."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def fast_forward_fraction(self) -> float:
        """Share of requests served by the analytic shard fast path."""
        return (self.fast_forwarded / self.requests
                if self.requests else 0.0)

    @property
    def speedup(self) -> float:
        """Serial wall over sharded wall (0.0 without a serial run)."""
        if self.serial_wall_s <= 0 or self.wall_s <= 0:
            return 0.0
        return self.serial_wall_s / self.wall_s


def profile_fleet(device: str = "MI100", model: str = "res",
                  scheme: Scheme = Scheme.PASK,
                  requests: int = 1_000_000, rate_hz: float = 200.0,
                  regions: int = 4, instances: int = 4,
                  keep_alive_s: float = 0.5,
                  routing: str = "round-robin", seed: int = 0,
                  jobs: int = 1,
                  compare_serial: bool = False) -> FleetProfile:
    """Replay a ~``requests``-arrival fleet trace, sharded, and time it.

    The fleet is ``regions`` identical clusters of ``instances``
    instances on ``device``.  The trace ships to workers as a seeded
    :class:`~repro.fleet.parallel.TraceSpec` — workers regenerate the
    arrivals locally, which is what keeps 1e7–1e8-request profiles from
    pickling the stream.  With ``compare_serial`` the identical trace is
    also replayed through the serial ``FleetSimulator`` (timed first, so
    service-time memos are equally warm for both) and the profile's
    ``speedup`` reports serial/sharded wall.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if regions <= 0:
        raise ValueError("regions must be positive")
    # Local imports: repro.fleet pulls in this module's package sibling
    # fleetbench via repro.runner, so a top-level import would cycle.
    from repro.fleet.fleet import FleetConfig, FleetSimulator, RegionConfig
    from repro.fleet.parallel import TraceSpec, run_fleet_sharded
    from repro.fleet.routing import RoutingPolicy
    config = FleetConfig(
        regions=tuple(
            RegionConfig(name=f"r{i}", device=device, scheme=scheme,
                         max_instances=instances,
                         keep_alive_s=keep_alive_s)
            for i in range(regions)),
        routing=RoutingPolicy(routing))
    spec = TraceSpec(model=model, rate_hz=rate_hz,
                     duration_s=requests / rate_hz, seed=seed)
    trace = spec.materialize()
    serial_wall = 0.0
    if compare_serial:
        began = perf_counter()
        FleetSimulator(config).run(trace)
        serial_wall = perf_counter() - began
    began = perf_counter()
    stats, report = run_fleet_sharded(config, trace, jobs=jobs,
                                      trace_spec=spec)
    wall = perf_counter() - began
    latencies = [lat for region in stats.regions.values()
                 for lat in region.latencies]
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return FleetProfile(
        requests=stats.offered,
        regions=regions,
        jobs=max(1, jobs),
        mode=report.mode,
        wall_s=wall,
        serial_wall_s=serial_wall,
        rounds=report.rounds,
        rollbacks=report.rollbacks,
        fast_forwarded=report.analytic_total,
        region_wall_s=dict(report.region_wall_s),
        mean_latency_s=mean_latency,
        max_rollback_depth=report.max_rollback_depth,
        resimulated=report.resimulated,
        round_wall_s=tuple(report.round_wall_s),
    )


@dataclass(frozen=True)
class FleetTelemetryProfile:
    """Wall-clock cost of fleet telemetry on a sharded replay.

    Two measured replays of the identical fleet trace: telemetry off
    (no sinks passed — the zero-allocation path) and telemetry on
    (metrics + decision spans + SLO monitors all enabled).  The
    simulated stats are byte-identical either way; only wall-clock
    differs.
    """

    requests: int
    mode: str
    wall_off_s: float
    wall_on_s: float
    spans: int                     # decision spans the on-run captured
    alerts: int                    # SLO alerts the monitors emitted

    @property
    def per_request_off_s(self) -> float:
        """Wall-clock per request with telemetry disabled."""
        return self.wall_off_s / self.requests if self.requests else 0.0

    @property
    def per_request_on_s(self) -> float:
        """Wall-clock per request with telemetry enabled."""
        return self.wall_on_s / self.requests if self.requests else 0.0

    @property
    def overhead_fraction(self) -> float:
        """Relative slowdown of the telemetry-on path (0.1 = +10%)."""
        if self.wall_off_s <= 0:
            return 0.0
        return self.wall_on_s / self.wall_off_s - 1.0


def profile_fleet_telemetry(device: str = "MI100", model: str = "res",
                            scheme: Scheme = Scheme.PASK,
                            requests: int = 10_000,
                            rate_hz: float = 200.0,
                            regions: int = 2, instances: int = 4,
                            keep_alive_s: float = 0.5,
                            routing: str = "warm-first", seed: int = 0,
                            jobs: int = 1) -> FleetTelemetryProfile:
    """Time the identical sharded fleet replay with telemetry off vs on.

    The on-run enables every sink at once — a
    :class:`~repro.obs.metrics.MetricsRegistry`, a
    :class:`~repro.obs.spans.SpanRecorder` for the control-plane
    decision spans, and :class:`~repro.obs.monitors.SLOMonitorSet`
    burn-rate monitors under a default
    :class:`~repro.obs.monitors.SLOPolicy` — so the overhead reading is
    the worst case a ``repro fleet --telemetry`` run pays.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if regions <= 0:
        raise ValueError("regions must be positive")
    from repro.fleet.fleet import FleetConfig, RegionConfig
    from repro.fleet.parallel import TraceSpec, run_fleet_sharded
    from repro.fleet.routing import RoutingPolicy
    from repro.obs import MetricsRegistry, SLOPolicy, SpanRecorder
    config = FleetConfig(
        regions=tuple(
            RegionConfig(name=f"r{i}", device=device, scheme=scheme,
                         max_instances=instances,
                         keep_alive_s=keep_alive_s)
            for i in range(regions)),
        routing=RoutingPolicy(routing))
    spec = TraceSpec(model=model, rate_hz=rate_hz,
                     duration_s=requests / rate_hz, seed=seed)
    trace = spec.materialize()
    began = perf_counter()
    stats_off, report = run_fleet_sharded(config, trace, jobs=jobs,
                                          trace_spec=spec)
    wall_off = perf_counter() - began
    spans = SpanRecorder()
    began = perf_counter()
    stats_on, _ = run_fleet_sharded(config, trace, jobs=jobs,
                                    trace_spec=spec,
                                    metrics=MetricsRegistry(),
                                    spans=spans,
                                    slo=SLOPolicy(p99_target_s=1.0,
                                                  cold_rate_target=0.5))
    wall_on = perf_counter() - began
    monitors = stats_on.monitors or {}
    return FleetTelemetryProfile(
        requests=stats_off.offered,
        mode=report.mode,
        wall_off_s=wall_off,
        wall_on_s=wall_on,
        spans=len(spans),
        alerts=len(monitors.get("alerts", ())),
    )


@dataclass(frozen=True)
class TelemetryProfile:
    """Wall-clock cost of causal-span telemetry on a cold serve.

    Two measured configurations of the identical simulation: spans off
    (the :data:`~repro.obs.spans.NULL_RECORDER` path, which allocates no
    span objects — pinned by a unit test) and spans + metrics on.
    """

    requests: int
    wall_off_s: float
    wall_on_s: float
    spans_per_request: int

    @property
    def per_request_off_s(self) -> float:
        """Wall-clock per request with telemetry disabled."""
        return self.wall_off_s / self.requests if self.requests else 0.0

    @property
    def per_request_on_s(self) -> float:
        """Wall-clock per request with spans + metrics enabled."""
        return self.wall_on_s / self.requests if self.requests else 0.0

    @property
    def overhead_fraction(self) -> float:
        """Relative slowdown of the telemetry-on path (0.1 = +10%)."""
        if self.wall_off_s <= 0:
            return 0.0
        return self.wall_on_s / self.wall_off_s - 1.0


def profile_telemetry(device: str = "MI100", model: str = "res",
                      scheme: Scheme = Scheme.PASK,
                      requests: int = 3) -> TelemetryProfile:
    """Time identical cold serves with telemetry off versus on.

    Program compilation is excluded (one untimed warm-up serve), so the
    comparison isolates the simulation loop — which is where the span
    observer and metric increments live.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    from repro.obs import MetricsRegistry, SpanRecorder
    server = InferenceServer(device)
    server.serve_cold(model, scheme)  # warm-up: compile + find-db
    began = perf_counter()
    for _ in range(requests):
        server.serve_cold(model, scheme)
    wall_off = perf_counter() - began
    span_count = 0
    began = perf_counter()
    for _ in range(requests):
        spans = SpanRecorder()
        server.serve_cold(model, scheme, spans=spans,
                          metrics=MetricsRegistry())
        span_count = len(spans)
    wall_on = perf_counter() - began
    return TelemetryProfile(requests=requests, wall_off_s=wall_off,
                            wall_on_s=wall_on,
                            spans_per_request=span_count)


@dataclass(frozen=True)
class PackProfile:
    """Wall-clock and modeled cost of the three spin-up strategies.

    Three measured replays of the identical scale-to-zero fleet trace,
    differing only in how a reclaimed instance comes back: full cold
    load, checkpoint restore (the autoscaler's ``checkpoint_restore``
    billing), or a kernel-pack fetch through the
    :class:`~repro.packs.PackStoreState` hierarchy.  The modeled
    latencies are deterministic simulation outputs; only the wall-clock
    readings vary between machines.
    """

    requests: int
    wall_cold_s: float
    wall_checkpoint_s: float
    wall_pack_s: float
    cold_starts: int               # cold leg: spin-ups billed cold
    checkpoint_restores: int       # checkpoint leg: restored spin-ups
    pack_restores: int             # pack leg: pack-restored serves
    pack_bytes: int                # pack leg: verified bytes fetched
    mean_latency_cold_s: float
    mean_latency_checkpoint_s: float
    mean_latency_pack_s: float

    @property
    def wall_per_request_pack_s(self) -> float:
        """Wall-clock seconds per simulated request on the pack leg."""
        return self.wall_pack_s / self.requests if self.requests else 0.0

    @property
    def modeled_speedup_vs_cold(self) -> float:
        """Modeled mean-latency speedup of pack restore over cold load."""
        if self.mean_latency_pack_s <= 0:
            return 0.0
        return self.mean_latency_cold_s / self.mean_latency_pack_s

    @property
    def modeled_speedup_vs_checkpoint(self) -> float:
        """Modeled mean-latency speedup over checkpoint restore."""
        if self.mean_latency_pack_s <= 0:
            return 0.0
        return self.mean_latency_checkpoint_s / self.mean_latency_pack_s


def profile_packs(device: str = "MI100", model: str = "res",
                  scheme: Scheme = Scheme.PASK,
                  requests: int = 5_000, rate_hz: float = 50.0,
                  instances: int = 2, idle_timeout_s: float = 0.05,
                  seed: int = 0) -> PackProfile:
    """Time pack restore against checkpoint restore and cold load.

    One single-region scale-to-zero fleet replays the identical Poisson
    trace three times; the aggressive ``idle_timeout_s`` keeps the pool
    collapsing between bursts so spin-ups recur throughout the trace.
    The serial :class:`~repro.fleet.fleet.FleetSimulator` runs all
    three legs, so the wall-clock comparison isolates the spin-up
    accounting paths rather than sharding differences.
    """
    if requests <= 0:
        raise ValueError("requests must be positive")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    from repro.fleet.autoscale import AutoscalePolicy
    from repro.fleet.fleet import FleetConfig, FleetSimulator, RegionConfig
    from repro.packs import PackPolicy
    from repro.serving.requests import poisson_trace

    def leg(checkpoint_restore: bool, packs):
        config = FleetConfig(
            regions=(RegionConfig(name="r0", device=device, scheme=scheme,
                                  max_instances=instances,
                                  keep_alive_s=idle_timeout_s),),
            autoscale=AutoscalePolicy(kind="scale-to-zero",
                                      idle_timeout_s=idle_timeout_s,
                                      checkpoint_restore=checkpoint_restore),
            packs=packs)
        trace = poisson_trace(model, rate_hz, requests / rate_hz,
                              seed=seed)
        simulator = FleetSimulator(config)
        began = perf_counter()
        stats = simulator.run(trace)
        wall = perf_counter() - began
        region = stats.regions["r0"]
        latencies = region.latencies
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return stats, region, wall, mean

    cold_stats, cold_region, wall_cold, mean_cold = leg(False, None)
    _, ckpt_region, wall_ckpt, mean_ckpt = leg(True, None)
    _, pack_region, wall_pack, mean_pack = leg(False, PackPolicy())
    pack_counters = pack_region.packs
    return PackProfile(
        requests=cold_stats.offered,
        wall_cold_s=wall_cold,
        wall_checkpoint_s=wall_ckpt,
        wall_pack_s=wall_pack,
        cold_starts=cold_region.cold_starts,
        checkpoint_restores=ckpt_region.restores,
        pack_restores=pack_region.pack_restores,
        pack_bytes=(pack_counters.bytes_verified
                    if pack_counters is not None else 0),
        mean_latency_cold_s=mean_cold,
        mean_latency_checkpoint_s=mean_ckpt,
        mean_latency_pack_s=mean_pack,
    )


def profile_event_kernel(events: int = 100_000) -> EventKernelProfile:
    """Drain a timeout-chain process and measure raw kernel throughput.

    One loop iteration schedules a delayed timeout and resumes the
    process — the dominant pattern on the simulator's hot path.  The
    profile counts every scheduled event (``Environment.events_scheduled``),
    not just the explicit timeouts.
    """
    if events <= 0:
        raise ValueError("events must be positive")
    env = Environment()

    def churn():
        for _ in range(events):
            yield env.timeout(1e-6)

    env.process(churn())
    began = perf_counter()
    env.run()
    wall = perf_counter() - began
    return EventKernelProfile(events=env.events_scheduled, wall_s=wall)
