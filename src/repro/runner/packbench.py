"""The ``repro chaos --packs`` comparison harness.

Four curated legs of the same short-keep-alive cluster replay, run
through the same engine/cache/report machinery as ``repro bench``:

- **no-packs** — the baseline: every expired instance pays the full
  cold start.  Carries an all-zero :class:`~repro.sim.faults.FaultPlan`
  so the report cell gains the robustness columns the gates read.
- **healthy** — the same replay with the pack fetch hierarchy enabled
  and every tier up.  Expired instances restore a content-addressed
  kernel pack instead of cold-loading.
- **registry-outage** — the origin registry is dark for the whole
  replay.  The ladder degrades to local/peer fetches; serves that
  reach a dead end fall back to cold load, never fail.
- **fully-degraded** — registry outage plus peer churn plus a local
  cache that always faults: every tier is down.  The ladder walks to
  the bottom rung (cold load) on each miss — the gate checks zero
  pack restores, zero lost requests, and byte conservation.

:func:`packs_report` returns a ``BENCH_*.json``-shaped payload
(schema-valid under :func:`~repro.runner.schema.validate_report`)
extended with a ``packs`` section carrying the per-leg comparison and
a ``pass`` verdict.  With a pinned ``created_unix`` the payload is
byte-stable, which is how the checked-in
``benchmarks/pack_degradation_report.json`` is pinned by CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.schemes import Scheme
from repro.packs import PackPolicy
from repro.runner.bench import build_report
from repro.runner.engine import run_tasks
from repro.runner.schema import validate_report
from repro.runner.tasks import ExperimentTask
from repro.sim.faults import FaultPlan

__all__ = ["PackScenario", "packs_scenarios", "packs_report"]


@dataclass(frozen=True)
class PackScenario:
    """One leg of the pack degradation ladder comparison."""

    name: str
    description: str
    task: ExperimentTask


def packs_scenarios(device: str = "MI100", model: str = "res",
                    collect_metrics: bool = False) -> List[PackScenario]:
    """The curated four-leg ladder behind ``repro chaos --packs``.

    Every leg replays the same seeded Poisson trace against the same
    short-keep-alive pool, so cold churn recurs and the legs differ
    only in pack availability.  Each fault plan shares one seed so the
    stochastic draws that *are* taken stay comparable across legs.
    """
    duration = 8.0
    common = dict(kind="cluster", device=device, model=model,
                  scheme=Scheme.PASK.value, rate_hz=25.0,
                  duration_s=duration, seed=3, instances=2,
                  keep_alive_s=0.05, collect_metrics=collect_metrics)
    policy = PackPolicy()
    outage = ((0.0, duration),)
    return [
        PackScenario(
            name="no-packs",
            description="Baseline: keep-alive 0.05 s pool with no pack "
                        "hierarchy; every expiry pays a full cold start.",
            # An all-zero plan: no faults fire, but the report cell
            # gains the robustness columns (availability) the gate
            # reads.
            task=ExperimentTask(faults=FaultPlan(seed=5), **common)),
        PackScenario(
            name="healthy",
            description="Pack hierarchy enabled, every tier up: "
                        "expiries restore packs instead of cold-"
                        "loading.",
            task=ExperimentTask(faults=FaultPlan(seed=5), packs=policy,
                                **common)),
        PackScenario(
            name="registry-outage",
            description="Origin registry dark for the whole replay; "
                        "the ladder degrades to local/peer fetches "
                        "with cold load as the final rung.",
            task=ExperimentTask(
                faults=FaultPlan(seed=5, registry_outage_windows=outage),
                packs=policy, **common)),
        PackScenario(
            name="fully-degraded",
            description="Registry outage + peer churn + local cache "
                        "always faulting: every tier down, every miss "
                        "walks the ladder to cold load.",
            task=ExperimentTask(
                faults=FaultPlan(seed=5, registry_outage_windows=outage,
                                 peer_churn_windows=outage,
                                 pack_local_failure_rate=1.0),
                packs=policy, **common)),
    ]


def _cell_by_id(cells: List[Dict[str, Any]], cell_id: str) -> Dict[str, Any]:
    for cell in cells:
        if cell["id"] == cell_id:
            return cell
    raise KeyError(f"cell {cell_id!r} missing from packs report")


def _leg_summary(scenario: PackScenario,
                 cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    cell = _cell_by_id(cells, scenario.task.cell_id)
    packs = cell.get("packs") or {}
    fetched = sum(packs.get(key, 0) for key in
                  ("local_bytes", "peer_bytes", "origin_bytes"))
    accounted = sum(packs.get(key, 0) for key in
                    ("bytes_verified", "bytes_discarded", "bytes_abandoned"))
    lost = cell.get("failed", 0) + cell.get("shed", 0)
    return {
        "name": scenario.name,
        "description": scenario.description,
        "cell": cell["id"],
        "availability": cell.get("availability", 1.0),
        "p99_s": cell["p99_s"],
        "cold_starts": cell["cold_starts"],
        "pack_restores": cell.get("pack_restores", 0),
        "degraded_cold": packs.get("degraded_cold", 0),
        "failover_hits": packs.get("failover_hits", 0),
        "lost_requests": lost,
        "bytes_fetched": fetched,
        "bytes_conserved": fetched == accounted,
    }


def _gates(legs: Dict[str, Dict[str, Any]],
           min_availability: float) -> Dict[str, Any]:
    base = legs["no-packs"]
    healthy = legs["healthy"]
    outage = legs["registry-outage"]
    degraded = legs["fully-degraded"]
    pack_legs = (healthy, outage, degraded)
    # Healthy hierarchy must strictly reduce cold serves at equal (or
    # better) availability than the no-packs baseline.
    healthy_pass = (healthy["cold_starts"] < base["cold_starts"]
                    and healthy["availability"] >= base["availability"]
                    and healthy["availability"] >= min_availability)
    # Under a full outage the ladder must degrade to cold load — zero
    # pack restores — while losing zero requests and conserving every
    # fetched byte.  Cold-start counts are NOT compared against the
    # baseline: the ladder walk's latency legitimately shifts pool
    # keep-alive timing.
    degraded_pass = (degraded["pack_restores"] == 0
                     and degraded["lost_requests"] == 0
                     and degraded["availability"] >= min_availability)
    conservation_pass = all(leg["bytes_conserved"] for leg in pack_legs)
    lossless_pass = all(leg["lost_requests"] == 0 for leg in pack_legs)
    return {
        "min_availability": min_availability,
        "healthy_reduces_cold_starts": healthy_pass,
        "degraded_falls_back_to_cold": degraded_pass,
        "bytes_conserved": conservation_pass,
        "no_lost_requests": lossless_pass,
        "pass": (healthy_pass and degraded_pass and conservation_pass
                 and lossless_pass),
    }


def packs_report(device: str = "MI100", model: str = "res",
                 jobs: int = 1, collect_metrics: bool = True,
                 min_availability: float = 0.999,
                 created_unix: Optional[float] = None) -> Dict[str, Any]:
    """Run the pack degradation legs and build the comparison report.

    Returns a BENCH-shaped payload with an extra ``packs`` section: one
    summary per leg plus the gate verdicts.  When ``created_unix`` is
    given, the volatile ``run`` section is pinned (``wall_clock_s``
    zeroed) so the payload is byte-stable across runs — the form the
    checked-in report uses.
    """
    scenarios = packs_scenarios(device, model,
                                collect_metrics=collect_metrics)
    tasks = [scenario.task for scenario in scenarios]
    outcomes, stats = run_tasks(tasks, jobs=jobs, cache=None)
    report = build_report("packs", outcomes, stats, cache=None,
                          created_unix=created_unix)
    if created_unix is not None:
        report["run"]["wall_clock_s"] = 0.0
    legs = {scenario.name: _leg_summary(scenario, report["cells"])
            for scenario in scenarios}
    report["packs"] = {
        "device": device, "model": model,
        "legs": [legs[scenario.name] for scenario in scenarios],
        "gates": _gates(legs, min_availability),
    }
    problems = validate_report(report)
    if problems:  # defensive: the builder always emits schema-valid JSON
        raise RuntimeError(f"packs emitted schema-invalid report: "
                           f"{problems}")
    return report
