"""Schema for ``BENCH_*.json`` reports, with a dependency-free validator.

``BENCH_SCHEMA`` is a standard JSON-Schema document (draft-07 subset)
for external tooling; :func:`validate_report` implements the same
checks in plain Python so the test suite and CI smoke job need no
third-party validator.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["BENCH_SCHEMA", "SCHEMA_VERSION", "validate_report"]

SCHEMA_VERSION = 1

_SERVE_CELL_PROPS = {
    "id": {"type": "string"},
    "kind": {"type": "string", "enum": ["cold", "hot"]},
    "device": {"type": "string"},
    "model": {"type": "string"},
    "scheme": {"type": "string"},
    "batch": {"type": "integer", "minimum": 1},
    "cache_hit": {"type": "boolean"},
    "total_time_s": {"type": "number", "minimum": 0},
    "loads": {"type": "integer", "minimum": 0},
    "loaded_bytes": {"type": "integer", "minimum": 0},
    "gpu_utilization": {"type": "number", "minimum": 0, "maximum": 1},
    "failed": {"type": "boolean"},
}

_CLUSTER_CELL_PROPS = {
    "id": {"type": "string"},
    "kind": {"type": "string", "enum": ["cluster"]},
    "device": {"type": "string"},
    "model": {"type": "string"},
    "scheme": {"type": "string"},
    "batch": {"type": "integer", "minimum": 1},
    "cache_hit": {"type": "boolean"},
    "requests": {"type": "integer", "minimum": 0},
    "completed": {"type": "integer", "minimum": 0},
    "failed": {"type": "integer", "minimum": 0},
    "cold_starts": {"type": "integer", "minimum": 0},
    "mean_latency_s": {"type": "number", "minimum": 0},
    "p50_s": {"type": "number", "minimum": 0},
    "p99_s": {"type": "number", "minimum": 0},
    "fast_forwarded": {"type": "integer", "minimum": 0},
    "trace_records": {"type": "integer", "minimum": 0},
    "trace_retained": {"type": "integer", "minimum": 0},
    # Robustness columns, present only on cells that ran with a fault
    # plan or a resilience policy (``repro chaos`` / chaos bench cells).
    "shed": {"type": "integer", "minimum": 0},
    "availability": {"type": "number", "minimum": 0, "maximum": 1},
    "faults": {"type": "object"},
    "resilience": {"type": "boolean"},
    # Pack-hierarchy columns, present only on cells that ran with a
    # kernel-pack policy (``repro chaos --packs`` cells).
    "pack_restores": {"type": "integer", "minimum": 0},
    "packs": {"type": "object"},
}

# Cluster-cell keys that may be absent (fault-free, policy-free replays
# keep the historic report shape byte-for-byte).
_OPTIONAL_CLUSTER_KEYS = frozenset(
    {"shed", "availability", "faults", "resilience",
     "pack_restores", "packs"})

_FLEET_CELL_PROPS = {
    "id": {"type": "string"},
    "kind": {"type": "string", "enum": ["fleet"]},
    # Comma-joined device list, one region per device.
    "device": {"type": "string"},
    "model": {"type": "string"},
    "scheme": {"type": "string"},
    "batch": {"type": "integer", "minimum": 1},
    "cache_hit": {"type": "boolean"},
    "regions": {"type": "integer", "minimum": 1},
    "routing": {"type": "string"},
    "autoscale": {"type": "string"},
    "arrival": {"type": "string"},
    "offered": {"type": "integer", "minimum": 0},
    "completed": {"type": "integer", "minimum": 0},
    "failed": {"type": "integer", "minimum": 0},
    "shed": {"type": "integer", "minimum": 0},
    "cold_starts": {"type": "integer", "minimum": 0},
    "warm_hits": {"type": "integer", "minimum": 0},
    "restores": {"type": "integer", "minimum": 0},
    "prewarm_spawns": {"type": "integer", "minimum": 0},
    "availability": {"type": "number", "minimum": 0, "maximum": 1},
    "mean_latency_s": {"type": "number", "minimum": 0},
    "p50_s": {"type": "number", "minimum": 0},
    "p99_s": {"type": "number", "minimum": 0},
    "fast_forwarded": {"type": "integer", "minimum": 0},
    "delegated": {"type": "boolean"},
    # Pack-hierarchy columns, same presence rule as the cluster cell's.
    "pack_restores": {"type": "integer", "minimum": 0},
    "packs": {"type": "object"},
}

# Fleet-cell keys that may be absent (pack-free replays keep the
# historic report shape byte-for-byte).
_OPTIONAL_FLEET_KEYS = frozenset({"pack_restores", "packs"})

BENCH_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro bench report",
    "type": "object",
    "required": ["schema_version", "meta", "run", "cache", "totals",
                 "cells", "summary"],
    "properties": {
        "schema_version": {"type": "integer", "const": SCHEMA_VERSION},
        "meta": {
            "type": "object",
            "required": ["code_version", "grid", "jobs"],
            "properties": {
                "code_version": {"type": "string"},
                "grid": {"type": "string"},
                "jobs": {"type": "integer", "minimum": 1},
            },
        },
        # Volatile per-run facts; determinism comparisons drop this
        # section wholesale.
        "run": {
            "type": "object",
            "required": ["created_unix", "created_iso", "wall_clock_s"],
            "properties": {
                "created_unix": {"type": "number"},
                "created_iso": {"type": "string"},
                "wall_clock_s": {"type": "number", "minimum": 0},
            },
        },
        "cache": {
            "type": "object",
            "required": ["enabled", "hits", "misses", "writes"],
            "properties": {
                "enabled": {"type": "boolean"},
                "hits": {"type": "integer", "minimum": 0},
                "misses": {"type": "integer", "minimum": 0},
                "writes": {"type": "integer", "minimum": 0},
            },
        },
        "totals": {
            "type": "object",
            "required": ["cells", "executed", "simulated_time_s"],
            "properties": {
                "cells": {"type": "integer", "minimum": 0},
                "executed": {"type": "integer", "minimum": 0},
                "simulated_time_s": {"type": "number", "minimum": 0},
            },
        },
        "cells": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["id", "kind", "device", "model", "batch",
                             "cache_hit"],
            },
        },
        "summary": {
            "type": "object",
            "required": ["speedups"],
            "properties": {
                "speedups": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
            },
        },
        # Optional: merged telemetry-registry dump (repro.obs.metrics),
        # present when the run collected metrics.  Structure validated
        # by repro.obs.metrics.validate_dump.
        "metrics": {"type": "object"},
        # Optional: SLO monitor summaries keyed by fleet cell id,
        # present when the run attached burn-rate monitors.  Each value
        # is validated by repro.obs.monitors.validate_monitors.
        "monitors": {"type": "object"},
    },
}

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
}


def _check(condition: bool, errors: List[str], message: str) -> None:
    if not condition:
        errors.append(message)


def _check_section(payload: Dict[str, Any], section: str,
                   required: Dict[str, str], errors: List[str]) -> None:
    block = payload.get(section)
    if not isinstance(block, dict):
        errors.append(f"{section}: missing or not an object")
        return
    for key, expected in required.items():
        if key not in block:
            errors.append(f"{section}.{key}: missing")
        elif not _TYPE_CHECKS[expected](block[key]):
            errors.append(f"{section}.{key}: expected {expected}, "
                          f"got {type(block[key]).__name__}")


def _check_cell(cell: Any, index: int, errors: List[str]) -> None:
    prefix = f"cells[{index}]"
    if not isinstance(cell, dict):
        errors.append(f"{prefix}: not an object")
        return
    kind = cell.get("kind")
    if kind in ("cold", "hot"):
        props = _SERVE_CELL_PROPS
    elif kind == "cluster":
        props = _CLUSTER_CELL_PROPS
    elif kind == "fleet":
        props = _FLEET_CELL_PROPS
    else:
        errors.append(f"{prefix}.kind: unknown kind {kind!r}")
        return
    for key, spec in props.items():
        if key not in cell:
            if kind == "cluster" and key in _OPTIONAL_CLUSTER_KEYS:
                continue
            if kind == "fleet" and key in _OPTIONAL_FLEET_KEYS:
                continue
            errors.append(f"{prefix}.{key}: missing")
            continue
        value = cell[key]
        if not _TYPE_CHECKS[spec["type"]](value):
            errors.append(f"{prefix}.{key}: expected {spec['type']}, "
                          f"got {type(value).__name__}")
            continue
        if "minimum" in spec and value < spec["minimum"]:
            errors.append(f"{prefix}.{key}: {value} below {spec['minimum']}")
        if "maximum" in spec and value > spec["maximum"]:
            errors.append(f"{prefix}.{key}: {value} above {spec['maximum']}")
        if "enum" in spec and value not in spec["enum"]:
            errors.append(f"{prefix}.{key}: {value!r} not in {spec['enum']}")
    if kind == "cluster" and isinstance(cell.get("faults"), dict):
        for name, count in cell["faults"].items():
            if not _TYPE_CHECKS["integer"](count) or count < 0:
                errors.append(f"{prefix}.faults.{name}: expected a "
                              f"non-negative integer, got {count!r}")
    packs = cell.get("packs")
    if isinstance(packs, dict):
        # Pack byte conservation is part of the report contract: every
        # fetched byte is exactly one of verified, discarded-corrupt,
        # or abandoned-on-timeout.
        fetched = sum(packs.get(key, 0) for key in
                      ("local_bytes", "peer_bytes", "origin_bytes"))
        accounted = sum(packs.get(key, 0) for key in
                        ("bytes_verified", "bytes_discarded",
                         "bytes_abandoned"))
        if fetched != accounted:
            errors.append(
                f"{prefix}.packs: byte conservation violated — fetched "
                f"{fetched} != verified+discarded+abandoned {accounted}")
    if kind == "fleet":
        # Fleet conservation is part of the report contract: every
        # offered request is exactly one of completed, failed, or shed.
        outcomes = [cell.get(k) for k in ("offered", "completed",
                                          "failed", "shed")]
        if all(_TYPE_CHECKS["integer"](v) for v in outcomes):
            offered, completed, failed, shed = outcomes
            if offered != completed + failed + shed:
                errors.append(
                    f"{prefix}: conservation violated — offered "
                    f"{offered} != completed {completed} + failed "
                    f"{failed} + shed {shed}")


def validate_report(payload: Any) -> List[str]:
    """Structural validation of a ``BENCH_*.json`` payload.

    Returns a list of human-readable problems; an empty list means the
    payload is schema-valid.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["report: not a JSON object"]
    _check(payload.get("schema_version") == SCHEMA_VERSION, errors,
           f"schema_version: expected {SCHEMA_VERSION}, "
           f"got {payload.get('schema_version')!r}")
    _check_section(payload, "meta",
                   {"code_version": "string", "grid": "string",
                    "jobs": "integer"}, errors)
    _check_section(payload, "run",
                   {"created_unix": "number", "created_iso": "string",
                    "wall_clock_s": "number"}, errors)
    _check_section(payload, "cache",
                   {"enabled": "boolean", "hits": "integer",
                    "misses": "integer", "writes": "integer"}, errors)
    _check_section(payload, "totals",
                   {"cells": "integer", "executed": "integer",
                    "simulated_time_s": "number"}, errors)
    cells = payload.get("cells")
    if not isinstance(cells, list):
        errors.append("cells: missing or not an array")
    else:
        for index, cell in enumerate(cells):
            _check_cell(cell, index, errors)
        totals = payload.get("totals")
        if isinstance(totals, dict) and totals.get("cells") != len(cells):
            errors.append(f"totals.cells: {totals.get('cells')} != "
                          f"{len(cells)} cells present")
    summary = payload.get("summary")
    if not isinstance(summary, dict) or not isinstance(
            summary.get("speedups"), dict):
        errors.append("summary.speedups: missing or not an object")
    if "metrics" in payload:
        # Optional telemetry section; when present it must be a valid
        # registry dump.
        from repro.obs.metrics import validate_dump
        errors.extend(f"metrics: {problem}"
                      for problem in validate_dump(payload["metrics"]))
    if "monitors" in payload:
        # Optional SLO section; every entry must be a structurally
        # valid monitor summary for a fleet cell in this report.
        from repro.obs.monitors import validate_monitors
        block = payload["monitors"]
        if not isinstance(block, dict):
            errors.append("monitors: not an object")
        else:
            fleet_ids = {cell.get("id") for cell in payload.get("cells", [])
                         if isinstance(cell, dict)
                         and cell.get("kind") == "fleet"}
            for cell_id, summary in block.items():
                if cell_id not in fleet_ids:
                    errors.append(f"monitors[{cell_id}]: no fleet cell "
                                  f"with this id")
                errors.extend(f"monitors[{cell_id}]: {problem}"
                              for problem in validate_monitors(summary))
    return errors
