"""The ``repro fleet --frontier`` comparison harness.

The paper's economic claim, measured: how aggressively can a region
scale to zero before the cold-start exposure breaks the latency SLO?
A scale-to-zero autoscaler with idle timeout ``T`` reclaims every
instance that sits idle for ``T`` seconds, so sparse traffic keeps
re-paying the spin-up cost of the configured loading scheme.  The
**frontier** of a scheme is the smallest swept ``T`` whose replay still
meets the p99 SLO at the availability gate — smaller is better (less
idle capacity held warm).

:func:`fleet_frontier_report` sweeps ``T`` for three legs over the same
sparse Poisson workload on a single scale-to-zero region:

- **Baseline** — reactive kernel loading: a scale-up pays the full
  cold start (~40x the warm time on MI100/res), so the SLO forces a
  long idle timeout and the pool effectively never scales down.
- **PaSK** — proactive & selective loading: the cold start shrinks
  under the SLO, so *every* swept timeout passes and the frontier
  drops to the most aggressive setting.
- **PaSK+restore** — PaSK with warm-state checkpoints: scale-up spawns
  restore instead of cold-starting (PR 5's billing), compounding the
  shift.

The SLO is stated relative to the (device-specific, deterministic)
warm service time — default 12x, which sits between the PaSK and the
Baseline cold start on every modeled device — so the experiment is a
pure simulation output with no tuned absolute constants.

The result is a ``BENCH_*.json``-shaped payload (schema-valid) plus a
``fleet_frontier`` section with the sweep, the per-leg frontiers and a
``pass`` verdict (PaSK frontier strictly more aggressive than Baseline
at equal availability).  With ``created_unix`` pinned the payload is
byte-stable — the form of the checked-in
``benchmarks/fleet_frontier_report.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.schemes import Scheme
from repro.fleet.autoscale import AutoscalePolicy
from repro.runner.bench import build_report
from repro.runner.engine import run_tasks
from repro.runner.schema import validate_report
from repro.runner.tasks import ExperimentTask
from repro.serving.server import InferenceServer

__all__ = ["fleet_frontier_report", "frontier_tasks", "IDLE_TIMEOUT_SWEEP"]

# Idle timeouts swept, most aggressive first.  At the 2 Hz workload the
# cold-start exposure e^(-2T) spans ~90% down to ~0.005% across the
# sweep, so every scheme's frontier lands strictly inside it.
IDLE_TIMEOUT_SWEEP: Tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0,
                                         2.0, 5.0)

_LEGS: Tuple[Tuple[str, Scheme, bool], ...] = (
    ("baseline", Scheme.BASELINE, False),
    ("pask", Scheme.PASK, False),
    ("pask+restore", Scheme.PASK, True),
)


def frontier_tasks(device: str = "MI100", model: str = "res",
                   rate_hz: float = 2.0, duration_s: float = 240.0,
                   sweep: Tuple[float, ...] = IDLE_TIMEOUT_SWEEP
                   ) -> Dict[Tuple[str, float], ExperimentTask]:
    """One fleet task per (leg, idle timeout) sweep point."""
    tasks: Dict[Tuple[str, float], ExperimentTask] = {}
    for leg, scheme, restore in _LEGS:
        for idle in sweep:
            autoscale = AutoscalePolicy(kind="scale-to-zero",
                                        idle_timeout_s=idle,
                                        checkpoint_restore=restore)
            tasks[(leg, idle)] = ExperimentTask(
                kind="fleet", device=device, model=model,
                scheme=scheme.value, arrival="poisson", rate_hz=rate_hz,
                duration_s=duration_s, seed=0, instances=2,
                keep_alive_s=duration_s, autoscale=autoscale)
    return tasks


def _cell_by_id(cells: List[Dict[str, Any]], cell_id: str) -> Dict[str, Any]:
    for cell in cells:
        if cell["id"] == cell_id:
            return cell
    raise KeyError(f"cell {cell_id!r} missing from frontier report")


def fleet_frontier_report(device: str = "MI100", model: str = "res",
                          jobs: int = 1,
                          slo_multiplier: float = 12.0,
                          min_availability: float = 0.999,
                          rate_hz: float = 2.0, duration_s: float = 240.0,
                          sweep: Tuple[float, ...] = IDLE_TIMEOUT_SWEEP,
                          created_unix: Optional[float] = None
                          ) -> Dict[str, Any]:
    """Run the scale-to-zero frontier sweep and build the report.

    A sweep point *meets the SLO* when its p99 latency is at most
    ``slo_multiplier`` x the model's warm service time and its
    availability is at least ``min_availability``; a leg's frontier is
    the smallest such idle timeout.  The verdict passes when the PaSK
    frontier is strictly below the Baseline frontier (or Baseline has
    none) — proactive loading provably shifts how hard you can scale
    down.
    """
    if slo_multiplier <= 1.0:
        raise ValueError("slo_multiplier must exceed 1 (p99 can never "
                         "beat the warm service time)")
    warm_s = InferenceServer(device).serve_hot(model).total_time
    slo_p99_s = slo_multiplier * warm_s
    tasks = frontier_tasks(device, model, rate_hz, duration_s, sweep)
    outcomes, stats = run_tasks(list(tasks.values()), jobs=jobs, cache=None)
    report = build_report("fleet-frontier", outcomes, stats, cache=None,
                          created_unix=created_unix)
    if created_unix is not None:
        report["run"]["wall_clock_s"] = 0.0
    sweep_rows: List[Dict[str, Any]] = []
    frontiers: Dict[str, Optional[float]] = {}
    for leg, _, _ in _LEGS:
        frontier: Optional[float] = None
        for idle in sweep:
            cell = _cell_by_id(report["cells"],
                               tasks[(leg, idle)].cell_id)
            meets = (cell["p99_s"] <= slo_p99_s
                     and cell["availability"] >= min_availability)
            sweep_rows.append({
                "leg": leg, "idle_timeout_s": idle, "cell": cell["id"],
                "p99_s": cell["p99_s"],
                "mean_latency_s": cell["mean_latency_s"],
                "cold_starts": cell["cold_starts"],
                "restores": cell["restores"],
                "availability": cell["availability"],
                "meets_slo": meets,
            })
            if meets and frontier is None:
                frontier = idle
        frontiers[leg] = frontier
    baseline_frontier = frontiers["baseline"]
    pask_frontier = frontiers["pask"]
    verdict = (pask_frontier is not None
               and (baseline_frontier is None
                    or pask_frontier < baseline_frontier))
    report["fleet_frontier"] = {
        "device": device, "model": model,
        "rate_hz": rate_hz, "duration_s": duration_s,
        "warm_s": warm_s, "slo_multiplier": slo_multiplier,
        "slo_p99_s": slo_p99_s, "min_availability": min_availability,
        "sweep": sweep_rows,
        "frontiers": frontiers,
        "pass": verdict,
    }
    problems = validate_report(report)
    if problems:  # defensive: the builder always emits schema-valid JSON
        raise RuntimeError(f"fleet frontier emitted schema-invalid "
                           f"report: {problems}")
    return report
