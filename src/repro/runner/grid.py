"""Curated task grids for the engine and the ``repro bench`` harness.

Two families:

- :func:`experiment_grid` — everything the paper figures need for one
  suite (used to prewarm an ``ExperimentSuite`` before ``experiment
  all``).
- :func:`bench_grid` — the benchmark grids behind ``repro bench``:
  ``quick`` is a smoke-sized subset (CI), ``full`` covers every device,
  the whole model zoo, the headline schemes, the Table II batch sweep
  and cluster trace replays.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.schemes import Scheme
from repro.fleet.autoscale import AutoscalePolicy
from repro.models import list_models
from repro.obs.monitors import SLOPolicy
from repro.runner.tasks import ExperimentTask
from repro.serving.resilience import ResiliencePolicy
from repro.sim.faults import FaultPlan

__all__ = ["bench_grid", "experiment_grid", "BENCH_GRIDS"]

_HEADLINE_SCHEMES = (Scheme.BASELINE, Scheme.NNV12, Scheme.PASK, Scheme.IDEAL)
_ABLATION_SCHEMES = (Scheme.PASK_I, Scheme.PASK_R)
_DEVICES = ("MI100", "A100", "6900XT")

BENCH_GRIDS = ("quick", "full")


def experiment_grid(device: str = "MI100",
                    models: Optional[Sequence[str]] = None,
                    faults: Optional[FaultPlan] = None,
                    batches: Sequence[int] = (1, 4, 16, 64, 128),
                    fig1a_devices: Sequence[str] = _DEVICES
                    ) -> List[ExperimentTask]:
    """Every cell the paper figures/tables consume.

    Covers the scheme grid (including the PaSK-I/PaSK-R ablations) at
    batch 1, the Table II batch sweep for the headline schemes, the hot
    runs, and the Fig. 1(a) baseline+hot cells on the other devices.
    """
    models = list(models) if models is not None else list_models()
    tasks: List[ExperimentTask] = []
    for model in models:
        for scheme in _HEADLINE_SCHEMES + _ABLATION_SCHEMES:
            for batch in (batches if scheme in _HEADLINE_SCHEMES else (1,)):
                tasks.append(ExperimentTask(
                    kind="cold", device=device, model=model,
                    scheme=scheme.value, batch=batch, faults=faults))
        tasks.append(ExperimentTask(kind="hot", device=device, model=model,
                                    faults=faults))
    for other in fig1a_devices:
        if other == device:
            continue
        for model in models:
            tasks.append(ExperimentTask(
                kind="cold", device=other, model=model,
                scheme=Scheme.BASELINE.value, faults=faults))
            tasks.append(ExperimentTask(kind="hot", device=other, model=model,
                                        faults=faults))
    return tasks


def _cluster_cells(models: Sequence[str], schemes: Sequence[Scheme],
                   duration_s: float,
                   trace_retention: Optional[str] = None,
                   collect_metrics: bool = False,
                   resilience: Optional[ResiliencePolicy] = None
                   ) -> List[ExperimentTask]:
    tasks = [ExperimentTask(kind="cluster", model=model, scheme=scheme.value,
                            rate_hz=20.0, duration_s=duration_s, seed=0,
                            instances=4, keep_alive_s=0.5,
                            trace_retention=trace_retention,
                            collect_metrics=collect_metrics)
             for model in models for scheme in schemes]
    if resilience is not None:
        # The resilience dimension: every cluster cell also runs with
        # the policy attached (the ``/rz`` cell), so one report carries
        # the side-by-side comparison.
        tasks += [ExperimentTask(kind="cluster", model=model,
                                 scheme=scheme.value, rate_hz=20.0,
                                 duration_s=duration_s, seed=0,
                                 instances=4, keep_alive_s=0.5,
                                 trace_retention=trace_retention,
                                 collect_metrics=collect_metrics,
                                 resilience=resilience)
                  for model in models for scheme in schemes]
    return tasks


def _fleet_cells(schemes: Sequence[Scheme], duration_s: float,
                 collect_metrics: bool = False,
                 slo: Optional[SLOPolicy] = None) -> List[ExperimentTask]:
    """The fleet bench dimension: one heterogeneous two-region replay
    per scheme, under bursty traffic with warm-first routing and
    scale-to-zero autoscaling — the configuration where a cheap cold
    start (PASK) shows up directly in the latency columns."""
    autoscale = AutoscalePolicy(kind="scale-to-zero", idle_timeout_s=0.25)
    return [ExperimentTask(kind="fleet", model="res", scheme=scheme.value,
                           arrival="bursty", rate_hz=4.0,
                           duration_s=duration_s, seed=0, instances=2,
                           keep_alive_s=0.5,
                           fleet_devices=("MI100", "A100"),
                           routing="warm-first", autoscale=autoscale,
                           collect_metrics=collect_metrics, slo=slo)
            for scheme in schemes]


def bench_grid(name: str = "quick",
               trace_retention: Optional[str] = None,
               cluster_scale: float = 1.0,
               collect_metrics: bool = False,
               resilience: Optional[ResiliencePolicy] = None,
               fleet: bool = False,
               slo: Optional[SLOPolicy] = None
               ) -> List[ExperimentTask]:
    """The curated ``repro bench`` grid called ``name``.

    ``trace_retention`` turns on request-level tracing for the cluster
    cells (``"full"`` or ``"aggregate"``); ``cluster_scale`` multiplies
    their trace duration, scaling the simulated request count without
    touching the serve cells (a scale of 1000 on the quick grid yields
    ~10⁶-request replays).  ``collect_metrics`` attaches a telemetry
    registry to every cell; the per-cell dumps merge into the report's
    ``metrics`` section.  ``resilience`` adds the resilience dimension:
    every cluster cell is duplicated with the policy attached.
    ``fleet`` adds the fleet dimension: a multi-region fleet replay per
    headline scheme (see :func:`_fleet_cells`).  ``slo`` attaches SLO
    burn-rate monitors to every fleet cell; their summaries land in the
    report's ``monitors`` section.
    """
    if slo is not None and not fleet:
        raise ValueError("slo monitors need the fleet dimension "
                         "(pass fleet=True)")
    if name not in BENCH_GRIDS:
        raise ValueError(f"unknown bench grid {name!r}; "
                         f"expected one of {BENCH_GRIDS}")
    if cluster_scale <= 0:
        raise ValueError("cluster_scale must be positive")
    cm = collect_metrics
    tasks: List[ExperimentTask] = []
    if name == "quick":
        models = ("res", "vit")
        for model in models:
            for scheme in (Scheme.BASELINE, Scheme.PASK):
                tasks.append(ExperimentTask(kind="cold", model=model,
                                            scheme=scheme.value,
                                            collect_metrics=cm))
            tasks.append(ExperimentTask(kind="hot", model=model,
                                        collect_metrics=cm))
        tasks += _cluster_cells(("res",), (Scheme.BASELINE, Scheme.PASK),
                                duration_s=2.0 * cluster_scale,
                                trace_retention=trace_retention,
                                collect_metrics=cm, resilience=resilience)
        if fleet:
            tasks += _fleet_cells((Scheme.BASELINE, Scheme.PASK),
                                  duration_s=8.0, collect_metrics=cm,
                                  slo=slo)
        return tasks
    models = list_models()
    for model in models:
        for scheme in _HEADLINE_SCHEMES:
            tasks.append(ExperimentTask(kind="cold", model=model,
                                        scheme=scheme.value,
                                        collect_metrics=cm))
        for batch in (16, 128):
            for scheme in (Scheme.BASELINE, Scheme.PASK):
                tasks.append(ExperimentTask(kind="cold", model=model,
                                            scheme=scheme.value, batch=batch,
                                            collect_metrics=cm))
        tasks.append(ExperimentTask(kind="hot", model=model,
                                    collect_metrics=cm))
    for device in ("A100", "6900XT"):
        for model in models:
            for scheme in (Scheme.BASELINE, Scheme.PASK):
                tasks.append(ExperimentTask(kind="cold", device=device,
                                            model=model, scheme=scheme.value,
                                            collect_metrics=cm))
            tasks.append(ExperimentTask(kind="hot", device=device,
                                        model=model, collect_metrics=cm))
    tasks += _cluster_cells(("res", "vit"), (Scheme.BASELINE, Scheme.PASK),
                            duration_s=4.0 * cluster_scale,
                            trace_retention=trace_retention,
                            collect_metrics=cm, resilience=resilience)
    if fleet:
        tasks += _fleet_cells(_HEADLINE_SCHEMES, duration_s=16.0,
                              collect_metrics=cm, slo=slo)
    return tasks
