"""Parallel experiment engine with an on-disk result cache.

The serial :class:`~repro.serving.experiments.ExperimentSuite` memoizes
results per process; this package adds the layer above it:

- :mod:`repro.runner.tasks` — a serializable :class:`ExperimentTask`
  describing one simulation cell (cold/hot serve or cluster replay) and
  a pure executor turning a task into a JSON-safe payload that round-
  trips back into an :class:`~repro.core.results.ExecutionResult`.
- :mod:`repro.runner.cache` — a content-addressed on-disk store under
  ``.repro-cache/``; keys hash the task, the device's calibration
  constants, the fault plan and the code version, so stale caches
  self-invalidate.
- :mod:`repro.runner.engine` — fans task grids across a
  ``ProcessPoolExecutor`` and can prewarm an ``ExperimentSuite`` so all
  figure/table computations run from parallel-computed cells.
- :mod:`repro.runner.bench` / :mod:`repro.runner.schema` — the ``repro
  bench`` harness: curated grids, machine-readable ``BENCH_*.json``
  reports and baseline regression checks.

Everything is deterministic: a parallel run is byte-identical to the
serial path, and the determinism tests pin that property.
"""

from repro.runner.bench import (BenchReport, compare_reports, run_bench,
                                write_report)
from repro.runner.cache import CacheCounters, ResultCache, task_key
from repro.runner.chaos import ChaosScenario, chaos_report, chaos_scenarios
from repro.runner.engine import (RunStats, TaskOutcome, prewarm_suite,
                                 run_shards, run_tasks)
from repro.runner.fleetbench import fleet_frontier_report, frontier_tasks
from repro.runner.grid import bench_grid, experiment_grid
from repro.runner.packbench import (PackScenario, packs_report,
                                    packs_scenarios)
from repro.runner.profile import (ClusterProfile, EventKernelProfile,
                                  FleetProfile, FleetTelemetryProfile,
                                  PackProfile, TelemetryProfile,
                                  profile_cluster, profile_event_kernel,
                                  profile_fleet, profile_fleet_telemetry,
                                  profile_packs, profile_telemetry)
from repro.runner.schema import BENCH_SCHEMA, validate_report
from repro.runner.tasks import (ExperimentTask, cluster_stats_from_payload,
                                cluster_stats_to_payload, execute_task,
                                fleet_stats_from_payload,
                                fleet_stats_to_payload,
                                result_from_payload, result_to_payload)

__all__ = [
    "ExperimentTask",
    "execute_task",
    "result_to_payload",
    "result_from_payload",
    "cluster_stats_to_payload",
    "cluster_stats_from_payload",
    "fleet_stats_to_payload",
    "fleet_stats_from_payload",
    "fleet_frontier_report",
    "frontier_tasks",
    "ResultCache",
    "CacheCounters",
    "task_key",
    "run_shards",
    "run_tasks",
    "RunStats",
    "TaskOutcome",
    "prewarm_suite",
    "bench_grid",
    "experiment_grid",
    "run_bench",
    "write_report",
    "compare_reports",
    "BenchReport",
    "BENCH_SCHEMA",
    "validate_report",
    "ChaosScenario",
    "chaos_report",
    "chaos_scenarios",
    "PackScenario",
    "packs_report",
    "packs_scenarios",
    "ClusterProfile",
    "EventKernelProfile",
    "FleetProfile",
    "FleetTelemetryProfile",
    "PackProfile",
    "TelemetryProfile",
    "profile_cluster",
    "profile_event_kernel",
    "profile_fleet",
    "profile_fleet_telemetry",
    "profile_packs",
    "profile_telemetry",
]
