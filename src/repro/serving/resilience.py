"""SLO-guarded resilience for the serving cluster.

The cluster's baseline crash story -- restart cold, reroute -- maximizes
exactly the cold-start penalty the paper mitigates.  This module turns
the seeded fault plumbing (:mod:`repro.sim.faults`) into a system that
*survives* faults, with four cooperating mechanisms driven by one
:class:`ResiliencePolicy`:

1. **Warm-state checkpoint/restore.**  Each instance periodically
   checkpoints its loaded-code-object registry (GPUReplay-style record/
   replay).  After a crash the supervisor restores the freshest clean
   checkpoint, charging only the *delta* of code objects loaded since it
   was written -- post-crash cold-start cost is governed by checkpoint
   freshness rather than always being worst-case.  Checkpoints can be
   corrupted on write (``checkpoint.write`` fault site) and restores can
   fail (``restore.load``); both fall back toward a full cold restart.
2. **Restart supervision.**  Per-instance health tracking with
   exponential crash-loop backoff and a circuit breaker: ``k`` crashes
   inside a sliding window open the breaker, which excludes the instance
   from routing for an (escalating) cooldown; the first request after
   the cooldown is a half-open probe that either closes the breaker or
   re-opens it with a longer cooldown.
3. **Admission control.**  A bounded cluster queue with deadline-based
   load shedding (a request predicted to wait longer than its deadline
   is rejected immediately, never queued) and an overload degraded mode
   that falls back from proactive to reactive loading -- cold spawns
   shed PASK's preload work and serve through the lazy launch path until
   the overload clears (with hysteresis).
4. **Graceful drain.**  After a configurable number of requests the
   supervisor drains an instance: final checkpoint, process restart,
   full warm restore -- the instance re-enters the pool warm, never
   cold.

The policy composes with the existing fault plans; an inert (or absent)
policy leaves the cluster replay byte-identical to the pre-resilience
simulator, which the golden regression tests pin.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.faults import FaultCounters, FaultInjector
from repro.sim.trace import Phase, TraceRecorder

__all__ = ["ResiliencePolicy", "ResilienceState"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the cluster resilience layer.

    The default policy enables checkpoint/restore and the circuit
    breaker with conservative settings; admission control and periodic
    recycling are opt-in (``None`` disables each mechanism).  Use
    :meth:`disabled` for a policy object with every mechanism off --
    attaching it to a cluster changes nothing (``is_inert``), which the
    golden regression tests rely on.
    """

    # --- warm-state checkpoint/restore --------------------------------
    checkpoint_interval_s: Optional[float] = 0.5  # None: no checkpoints
    checkpoint_write_s: float = 0.002     # write must finish pre-crash
    checkpoint_retention: int = 3         # checkpoints kept per instance
    restore_overhead_s: float = 0.002     # fixed map-in cost per restore
    restore_speedup: float = 8.0          # restore vs. load bandwidth
    # --- restart supervision ------------------------------------------
    restart_backoff: float = 2.0          # crash-loop backoff multiplier
    max_restart_delay_s: float = 1.0
    breaker_threshold: Optional[int] = 3  # crashes in window; None: off
    breaker_window_s: float = 5.0
    breaker_cooldown_s: float = 0.5
    breaker_backoff: float = 2.0          # cooldown escalation on reopen
    breaker_max_cooldown_s: float = 10.0
    # --- admission control --------------------------------------------
    max_queue_depth: Optional[int] = None  # pending queued requests
    shed_wait_s: Optional[float] = None    # deadline: shed if wait >
    degrade_wait_s: Optional[float] = None  # overload: reactive loading
    # --- graceful drain -----------------------------------------------
    recycle_after_requests: Optional[int] = None
    drain_restart_s: float = 0.01         # process swap during a drain

    def __post_init__(self) -> None:
        if (self.checkpoint_interval_s is not None
                and self.checkpoint_interval_s <= 0):
            raise ValueError("checkpoint_interval_s must be positive")
        for name in ("checkpoint_write_s", "restore_overhead_s",
                     "max_restart_delay_s", "breaker_window_s",
                     "breaker_cooldown_s", "breaker_max_cooldown_s",
                     "drain_restart_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("restore_speedup", "restart_backoff",
                     "breaker_backoff"):
            if getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be >= 1")
        if self.checkpoint_retention < 1:
            raise ValueError("checkpoint_retention must be >= 1")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        for name in ("shed_wait_s", "degrade_wait_s"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")
        if (self.recycle_after_requests is not None
                and self.recycle_after_requests < 1):
            raise ValueError("recycle_after_requests must be >= 1")

    @classmethod
    def disabled(cls) -> "ResiliencePolicy":
        """A policy with every mechanism switched off (inert)."""
        return cls(checkpoint_interval_s=None, breaker_threshold=None,
                   restart_backoff=1.0, max_queue_depth=None,
                   shed_wait_s=None, degrade_wait_s=None,
                   recycle_after_requests=None)

    @property
    def is_inert(self) -> bool:
        """Whether attaching this policy can never change a replay."""
        return (self.checkpoint_interval_s is None
                and self.breaker_threshold is None
                and self.restart_backoff == 1.0
                and self.max_queue_depth is None
                and self.shed_wait_s is None
                and self.degrade_wait_s is None
                and self.recycle_after_requests is None)


class ResilienceState:
    """Per-replay supervisor driven by :class:`ClusterSimulator.run`.

    Owns the mutable mechanism state (admission queue, degraded-mode
    flag) and implements the per-instance health transitions.  All
    randomness flows through the replay's :class:`FaultInjector`
    (``checkpoint.write`` / ``restore.load`` sites), so a seeded replay
    with a policy attached stays fully deterministic.
    """

    def __init__(self, policy: ResiliencePolicy, counters: FaultCounters,
                 recorder: Optional[TraceRecorder],
                 warm: float, cold_extra: float, degraded_cold: float,
                 restart_delay_s: float) -> None:
        self.policy = policy
        self.counters = counters
        self.recorder = recorder
        self.warm = warm
        self.cold_extra = cold_extra
        self.degraded_cold = degraded_cold
        self.restart_delay_s = restart_delay_s
        self.degraded = False
        self._queued_starts: List[float] = []

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def admit(self, now: float, start: float) -> bool:
        """Admission decision for a first-attempt request.

        ``start`` is the earliest time the chosen instance could begin
        serving.  Returns ``False`` (shed) when the bounded queue is
        full or the predicted wait exceeds the shedding deadline; an
        admitted request with a future start occupies one queue slot
        until it starts.  Also flips the overload degraded mode, with
        2x hysteresis on the way out.
        """
        policy = self.policy
        wait = start - now
        queue = self._queued_starts
        while queue and queue[0] <= now:
            heapq.heappop(queue)
        if wait > 0:
            if (policy.max_queue_depth is not None
                    and len(queue) >= policy.max_queue_depth):
                self._shed(now)
                return False
            if policy.shed_wait_s is not None and wait > policy.shed_wait_s:
                self._shed(now)
                return False
        if policy.degrade_wait_s is not None:
            if wait > policy.degrade_wait_s:
                self.degraded = True
            elif wait <= 0.5 * policy.degrade_wait_s:
                self.degraded = False
        if start > now:
            heapq.heappush(queue, start)
        return True

    def _shed(self, now: float) -> None:
        self.counters.shed_requests += 1
        if self.recorder is not None:
            self.recorder.record(now, now, "cluster", Phase.FAULT, "shed")

    def cold_service(self, frac_base: float, default_cold: float) -> float:
        """Service time of a cold serve for an instance whose warm
        fraction is ``frac_base`` (0 = fully cold, from a restored
        checkpoint otherwise).  In degraded mode a fully-cold spawn
        sheds the proactive preload work and serves through the reactive
        lazy-loading path instead."""
        if frac_base <= 0.0:
            if self.degraded:
                self.counters.degraded_requests += 1
                return self.degraded_cold
            return default_cold
        return self.warm + (1.0 - frac_base) * self.cold_extra

    # ------------------------------------------------------------------
    # Instance routing hooks
    # ------------------------------------------------------------------
    @staticmethod
    def ready_at(instance) -> float:
        """Earliest time ``instance`` may serve (busy + breaker)."""
        if instance.breaker_open:
            return max(instance.busy_until, instance.breaker_until)
        return instance.busy_until

    @staticmethod
    def routable(instance, now: float) -> bool:
        """Whether the breaker admits routing to ``instance`` at ``now``
        (closed, or open past its cooldown = half-open probe)."""
        return not instance.breaker_open or instance.breaker_until <= now

    def on_scheduled(self, instance, start: float, service: float,
                     warm_attempt: bool) -> None:
        """A request was committed to ``instance`` at ``start``."""
        if instance.breaker_open and start >= instance.breaker_until:
            # Half-open probe: the breaker's verdict rides on this
            # request (closed on completion, re-opened on crash).
            self.counters.breaker_probes += 1
        if not warm_attempt and instance.ramp_end <= instance.ramp_start:
            # First cold serve of this life: the loading ramp along
            # which checkpoints capture partial warm state.
            instance.ramp_start = start
            instance.ramp_end = start + max(service - self.warm, 0.0)

    # ------------------------------------------------------------------
    # Health transitions
    # ------------------------------------------------------------------
    def on_complete(self, instance, finish: float) -> None:
        """A request completed on ``instance`` at ``finish``."""
        policy = self.policy
        instance.consecutive_crashes = 0
        if instance.breaker_open:
            # Successful half-open probe: close the breaker and forget
            # the crash history that opened it.
            instance.breaker_open = False
            instance.open_streak = 0
            instance.crash_times.clear()
        instance.served += 1
        if (policy.recycle_after_requests is not None
                and instance.served >= policy.recycle_after_requests):
            self._drain(instance, finish)

    def _drain(self, instance, finish: float) -> None:
        """Supervised drain: final checkpoint, restart, full restore.

        The instance was between requests (nothing in flight), so the
        drain costs only its own downtime; it re-enters the pool fully
        warm.  Drains are supervised and verified, so they do not roll
        the corruption/restore fault sites."""
        policy = self.policy
        downtime = (policy.checkpoint_write_s + policy.drain_restart_s
                    + policy.restore_overhead_s
                    + self.cold_extra / policy.restore_speedup)
        ready = finish + downtime
        instance.busy_until = ready
        instance.last_used = ready
        instance.warm = True
        instance.frac_base = 1.0
        instance.served = 0
        instance.life_start = ready
        instance.ramp_start = ready
        instance.ramp_end = ready
        self.counters.drains += 1
        if self.recorder is not None:
            self.recorder.record(finish, ready, "cluster", Phase.DRAIN,
                                 "drain")

    def on_crash(self, instance, crash_time: float,
                 injector: Optional[FaultInjector]) -> None:
        """A request crashed ``instance`` at ``crash_time``: run the
        supervisor (backoff, checkpoint restore, breaker) and leave the
        instance parked until its restart completes."""
        policy = self.policy
        instance.consecutive_crashes += 1
        instance.crash_times.append(crash_time)
        horizon = crash_time - policy.breaker_window_s
        while instance.crash_times and instance.crash_times[0] < horizon:
            instance.crash_times.pop(0)

        delay = min(
            self.restart_delay_s
            * policy.restart_backoff ** (instance.consecutive_crashes - 1),
            max(policy.max_restart_delay_s, self.restart_delay_s))

        fraction = self._restore_fraction(instance, crash_time, injector)
        downtime = delay
        if fraction > 0.0:
            restore_cost = (policy.restore_overhead_s
                            + fraction * self.cold_extra
                            / policy.restore_speedup)
            downtime += restore_cost
            self.counters.warm_restores += 1
            if self.recorder is not None:
                self.recorder.record(crash_time + delay,
                                     crash_time + downtime, "cluster",
                                     Phase.RESTORE, "restore")
        ready = crash_time + downtime
        instance.busy_until = ready
        instance.last_used = ready
        instance.warm = fraction >= 1.0
        instance.frac_base = fraction
        instance.served = 0
        instance.life_start = ready
        instance.ramp_start = ready
        instance.ramp_end = ready

        threshold = policy.breaker_threshold
        if threshold is None:
            return
        if instance.breaker_open:
            # A failed half-open probe: re-open with a longer cooldown.
            self._open_breaker(instance, crash_time)
        elif len(instance.crash_times) >= threshold:
            self._open_breaker(instance, crash_time)

    def _open_breaker(self, instance, crash_time: float) -> None:
        policy = self.policy
        cooldown = min(
            policy.breaker_cooldown_s
            * policy.breaker_backoff ** instance.open_streak,
            policy.breaker_max_cooldown_s)
        instance.open_streak += 1
        instance.breaker_open = True
        instance.breaker_until = crash_time + cooldown
        instance.crash_times.clear()
        self.counters.breaker_opens += 1
        if self.recorder is not None:
            self.recorder.record(crash_time, instance.breaker_until,
                                 "cluster", Phase.FAULT, "breaker-open")

    # ------------------------------------------------------------------
    # Checkpoint/restore model
    # ------------------------------------------------------------------
    def _restore_fraction(self, instance, crash_time: float,
                          injector: Optional[FaultInjector]) -> float:
        """Warm fraction recoverable from the freshest clean checkpoint
        written before ``crash_time``, or ``0.0`` for a cold restart.

        Checkpoints are written every ``checkpoint_interval_s`` starting
        one interval into the instance's current life; a checkpoint is
        usable only if its write finished before the crash.  Injected
        ``checkpoint.write`` corruption steps back to the next-older
        retained checkpoint; an injected ``restore.load`` failure
        abandons the restore entirely.
        """
        policy = self.policy
        interval = policy.checkpoint_interval_s
        if interval is None:
            return 0.0
        latest = int((crash_time - policy.checkpoint_write_s
                      - instance.life_start) // interval)
        if latest < 1:
            return 0.0
        oldest = max(1, latest - policy.checkpoint_retention + 1)
        chosen = 0.0
        for j in range(latest, oldest - 1, -1):
            fraction = self._fraction_at(instance,
                                         instance.life_start + j * interval)
            if fraction <= 0.0:
                break  # older checkpoints capture even less
            if injector is not None and injector.checkpoint_corrupts():
                self.counters.checkpoint_corruptions += 1
                continue
            chosen = fraction
            break
        if chosen <= 0.0:
            return 0.0
        if injector is not None and injector.restore_fails():
            self.counters.restore_failures += 1
            return 0.0
        return chosen

    @staticmethod
    def _fraction_at(instance, t: float) -> float:
        """Loaded warm fraction of ``instance``'s current life at ``t``
        (linear along the first cold serve's loading ramp)."""
        if instance.ramp_end > instance.ramp_start:
            if t >= instance.ramp_end:
                return 1.0
            if t <= instance.ramp_start:
                return instance.frac_base
            progress = ((t - instance.ramp_start)
                        / (instance.ramp_end - instance.ramp_start))
            return instance.frac_base + (1.0 - instance.frac_base) * progress
        return instance.frac_base
