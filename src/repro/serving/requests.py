"""Request traces: deterministic workload generation.

The paper motivates PASK with spot serving, serverless scaling and edge
computing, and cites cloud traces with several seconds between requests
landing on the same instance (Sec. VI).  This module generates
reproducible arrival traces for the cluster simulator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RequestTrace", "poisson_trace", "burst_trace", "periodic_trace",
           "diurnal_trace", "bursty_trace"]


@dataclass(frozen=True)
class RequestTrace:
    """A sequence of request arrival times for one model."""

    model: str
    arrivals: Tuple[float, ...]
    batch: int = 1

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ValueError("a trace needs at least one request")
        if any(t < 0 for t in self.arrivals):
            raise ValueError("negative arrival time")
        if list(self.arrivals) != sorted(self.arrivals):
            raise ValueError("arrivals must be sorted")
        if self.batch <= 0:
            raise ValueError("batch must be positive")

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """Time of the last arrival."""
        return self.arrivals[-1]

    @property
    def mean_interarrival(self) -> float:
        """Average gap between consecutive requests."""
        if len(self.arrivals) < 2:
            return 0.0
        gaps = [b - a for a, b in zip(self.arrivals, self.arrivals[1:])]
        return sum(gaps) / len(gaps)


def poisson_trace(model: str, rate_hz: float, duration_s: float,
                  seed: int = 0, batch: int = 1) -> RequestTrace:
    """Poisson arrivals at ``rate_hz`` for ``duration_s`` (deterministic
    per seed; always contains at least the t=0 request)."""
    if rate_hz <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = random.Random(seed)
    arrivals: List[float] = [0.0]
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) / rate_hz
        if t > duration_s:
            break
        arrivals.append(t)
    return RequestTrace(model, tuple(arrivals), batch)


def burst_trace(model: str, burst_size: int, spacing_s: float = 0.0,
                batch: int = 1) -> RequestTrace:
    """A spike: ``burst_size`` requests arriving ~simultaneously."""
    if burst_size <= 0:
        raise ValueError("burst_size must be positive")
    if spacing_s < 0:
        raise ValueError("spacing must be non-negative")
    arrivals = tuple(i * spacing_s for i in range(burst_size))
    return RequestTrace(model, arrivals, batch)


def periodic_trace(model: str, period_s: float, count: int,
                   batch: int = 1) -> RequestTrace:
    """Evenly spaced requests (an edge-device sensor loop)."""
    if period_s <= 0 or count <= 0:
        raise ValueError("period and count must be positive")
    arrivals = tuple(i * period_s for i in range(count))
    return RequestTrace(model, arrivals, batch)


def _thinned_trace(model: str, rate_at, peak_hz: float, duration_s: float,
                   seed: int, batch: int) -> RequestTrace:
    """Nonhomogeneous Poisson arrivals by thinning: candidates at the
    peak rate, accepted with probability ``rate_at(t) / peak_hz``.

    Deterministic per seed; always contains at least the t=0 request,
    matching :func:`poisson_trace`."""
    rng = random.Random(seed)
    arrivals: List[float] = [0.0]
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) / peak_hz
        if t > duration_s:
            break
        if rng.random() < rate_at(t) / peak_hz:
            arrivals.append(t)
    return RequestTrace(model, tuple(arrivals), batch)


def diurnal_trace(model: str, base_rate_hz: float, peak_rate_hz: float,
                  period_s: float, duration_s: float,
                  seed: int = 0, batch: int = 1) -> RequestTrace:
    """Diurnal arrivals: a sinusoidal rate cycling between ``base`` (the
    trough, at t=0) and ``peak`` once per ``period_s``.

    The fleet layer's canonical day/night workload: autoscalers that
    scale to zero in the trough and must re-warm for the peak see
    exactly the cold-start exposure the paper's serverless scenario
    describes.  Deterministic per seed.
    """
    if base_rate_hz <= 0 or peak_rate_hz < base_rate_hz:
        raise ValueError("need 0 < base_rate_hz <= peak_rate_hz")
    if period_s <= 0 or duration_s <= 0:
        raise ValueError("period and duration must be positive")

    def rate_at(t: float) -> float:
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period_s))
        return base_rate_hz + (peak_rate_hz - base_rate_hz) * phase

    return _thinned_trace(model, rate_at, peak_rate_hz, duration_s,
                          seed, batch)


def bursty_trace(model: str, base_rate_hz: float, burst_rate_hz: float,
                 burst_every_s: float, burst_duration_s: float,
                 duration_s: float, seed: int = 0,
                 batch: int = 1) -> RequestTrace:
    """On/off modulated Poisson arrivals (a two-state MMPP with a
    deterministic phase schedule): every ``burst_every_s`` the rate
    jumps from ``base`` to ``burst`` for ``burst_duration_s``.

    Bursts starting from an idle (scaled-down) pool are the adversarial
    input for autoscaling hysteresis.  Deterministic per seed.
    """
    if base_rate_hz <= 0 or burst_rate_hz < base_rate_hz:
        raise ValueError("need 0 < base_rate_hz <= burst_rate_hz")
    if burst_every_s <= 0 or duration_s <= 0:
        raise ValueError("burst period and duration must be positive")
    if not 0 <= burst_duration_s <= burst_every_s:
        raise ValueError("burst_duration_s must fit inside burst_every_s")

    def rate_at(t: float) -> float:
        in_burst = (t % burst_every_s) < burst_duration_s
        return burst_rate_hz if in_burst else base_rate_hz

    return _thinned_trace(model, rate_at, burst_rate_hz, duration_s,
                          seed, batch)
