"""Runtime validation of the reproduction's acceptance criteria.

``repro validate`` runs the cheap subset of DESIGN.md's shape checks and
reports PASS/FAIL per criterion -- a smoke test that the calibrated cost
model still reproduces the paper's qualitative results after local
modifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.serving.experiments import CONV_MODELS, ExperimentSuite, \
    TRANSFORMER_MODELS
from repro.serving.metrics import mean

__all__ = ["Criterion", "validate", "CRITERIA"]


@dataclass(frozen=True)
class Criterion:
    """One named acceptance check."""

    name: str
    description: str
    check: Callable[[ExperimentSuite], bool]


def _fig6a_ordering(suite: ExperimentSuite) -> bool:
    data = suite.fig6a()
    return (data["Ideal"]["average"] > data["PaSK"]["average"]
            > data["NNV12"]["average"] > 1.0)


def _fig6a_pask_band(suite: ExperimentSuite) -> bool:
    return 3.0 <= suite.fig6a()["PaSK"]["average"] <= 7.0


def _fig6a_layer_trend(suite: ExperimentSuite) -> bool:
    pask = suite.fig6a()["PaSK"]
    return all(pask[m] > pask["alex"] for m in ("eff", "reg", "ssd", "unet"))


def _fig6a_transformers_least(suite: ExperimentSuite) -> bool:
    pask = suite.fig6a()["PaSK"]
    worst_transformer = max(pask[m] for m in TRANSFORMER_MODELS)
    return worst_transformer < mean(pask[m] for m in CONV_MODELS)


def _fig6b_utilization(suite: ExperimentSuite) -> bool:
    data = suite.fig6b()
    return (data["Ideal"]["average"] > data["PaSK"]["average"]
            > data["NNV12"]["average"])


def _fig1b_loading_dominates(suite: ExperimentSuite) -> bool:
    data = suite.fig1b()
    return (data["average"]["code_loading"] > 0.55
            and data["average"]["gpu_execution"] < 0.15)


def _fig8_variants_below_pask(suite: ExperimentSuite) -> bool:
    data = suite.fig8()
    return all(v <= 1.0 + 1e-9 for rows in data.values()
               for v in rows.values())


def _fig9_cache(suite: ExperimentSuite) -> bool:
    data = suite.fig9()
    return (0.50 <= data["average"]["hit_rate"] <= 0.95
            and data["average"]["lookups_categorical"]
            < data["average"]["lookups_naive"])


def _table2_monotone(suite: ExperimentSuite) -> bool:
    data = suite.table2(batches=(1, 16, 128))
    for per_batch in data.values():
        values = [per_batch[b] for b in (1, 16, 128)]
        if values != sorted(values, reverse=True):
            return False
    return True


def _fig7_overhead(suite: ExperimentSuite) -> bool:
    return suite.fig7()["average"]["pask_overhead"] < 0.06


CRITERIA: List[Criterion] = [
    Criterion("fig6a-ordering",
              "Ideal > PaSK > NNV12 > Baseline on average", _fig6a_ordering),
    Criterion("fig6a-pask-band",
              "PaSK average speedup within 3-7x (paper 5.62x)",
              _fig6a_pask_band),
    Criterion("fig6a-layer-trend",
              "models with more primitive layers gain more than alex",
              _fig6a_layer_trend),
    Criterion("fig6a-transformers",
              "transformer models gain least", _fig6a_transformers_least),
    Criterion("fig6b-utilization",
              "GPU utilization: Ideal > PaSK > NNV12", _fig6b_utilization),
    Criterion("fig1b-loading",
              "baseline cold start dominated by code loading",
              _fig1b_loading_dominates),
    Criterion("fig8-ablation",
              "PaSK-I and PaSK-R never beat full PaSK",
              _fig8_variants_below_pask),
    Criterion("fig9-cache",
              "hit rate in band; categorical < naive lookups", _fig9_cache),
    Criterion("table2-monotone",
              "speedups decrease monotonically with batch size",
              _table2_monotone),
    Criterion("fig7-overhead",
              "PASK runtime overhead below 6%", _fig7_overhead),
]


def validate(suite: ExperimentSuite) -> List[Tuple[Criterion, bool]]:
    """Run every criterion; returns [(criterion, passed)]."""
    return [(criterion, bool(criterion.check(suite)))
            for criterion in CRITERIA]
