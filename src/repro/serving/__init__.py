"""Serving harness: cold/hot runs, metrics, and experiment runners."""

from repro.serving.server import InferenceServer, ServeResult, serve_cold, serve_hot
from repro.serving.metrics import FaultCounters, availability, \
    geometric_mean, mean
from repro.serving.requests import RequestTrace, burst_trace, \
    bursty_trace, diurnal_trace, periodic_trace, poisson_trace
from repro.serving.cluster import ClusterConfig, ClusterSimulator, ClusterStats
from repro.serving.resilience import ResiliencePolicy
from repro.sim.faults import FaultPlan

__all__ = [
    "ClusterConfig",
    "ClusterSimulator",
    "ClusterStats",
    "FaultCounters",
    "FaultPlan",
    "InferenceServer",
    "RequestTrace",
    "ResiliencePolicy",
    "ServeResult",
    "availability",
    "burst_trace",
    "bursty_trace",
    "diurnal_trace",
    "geometric_mean",
    "mean",
    "periodic_trace",
    "poisson_trace",
    "serve_cold",
    "serve_hot",
]
