"""Statistics helpers used by the experiment runners, plus the
robustness counters collected under fault injection.

:class:`FaultCounters` (re-exported from :mod:`repro.sim.faults`) is the
canonical record of retries, fallbacks, reroutes and availability for a
run; :func:`availability` computes the same ratio from raw counts.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.sim.faults import FaultCounters

__all__ = ["FaultCounters", "availability", "geometric_mean", "mean",
           "normalize"]


def availability(completed: int, failed: int) -> float:
    """Fraction of finished requests that completed successfully."""
    if completed < 0 or failed < 0:
        raise ValueError("counts must be non-negative")
    finished = completed + failed
    if finished == 0:
        return 1.0
    return completed / finished


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    items = list(values)
    if not items:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Each value divided by ``reference``."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [v / reference for v in values]
