"""Statistics helpers used by the experiment runners, plus the
robustness counters collected under fault injection.

:class:`FaultCounters` (re-exported from :mod:`repro.sim.faults`) is the
canonical record of retries, fallbacks, reroutes and availability for a
run; :func:`availability` computes the same ratio from raw counts.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.sim.faults import FaultCounters

__all__ = ["FaultCounters", "availability", "geometric_mean", "mean",
           "normalize", "percentile", "histogram_summary"]


def availability(completed: int, failed: int) -> float:
    """Fraction of finished requests that completed successfully."""
    if completed < 0 or failed < 0:
        raise ValueError("counts must be non-negative")
    finished = completed + failed
    if finished == 0:
        return 1.0
    return completed / finished


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    items = list(values)
    if not items:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Each value divided by ``reference``."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [v / reference for v in values]


def percentile(values: Iterable[float], q: float) -> float:
    """The q-quantile (0..1) of ``values`` by deterministic nearest rank.

    The standard nearest-rank definition — rank ``max(1, ceil(q * n))``,
    1-based over the sorted sample — so ``percentile(values, 0.5)`` of
    an odd-length sample is its true median, ``percentile(values, 1.0)``
    the maximum, and a single-sample input returns that sample for every
    ``q``.  No interpolation, ever: the result is always an element of
    the input, which keeps quantiles byte-stable across platforms.
    Raises :class:`ValueError` on an empty input or ``q`` outside
    ``[0, 1]``.
    """
    if not 0 <= q <= 1:
        raise ValueError(f"quantile out of range: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def histogram_summary(values: Iterable[float],
                      quantiles: Sequence[float] = (0.5, 0.9, 0.99)
                      ) -> Dict[str, float]:
    """Deterministic summary of a sample: count/min/max/mean/quantiles.

    Quantiles use :func:`percentile` (nearest rank), keyed ``"p50"``,
    ``"p90"``, ... from the requested fractions.  Raises
    :class:`ValueError` on empty input, like :func:`mean`.
    """
    items = sorted(values)
    if not items:
        raise ValueError("histogram summary of empty sequence")
    out: Dict[str, float] = {
        "count": float(len(items)),
        "min": items[0],
        "max": items[-1],
        "mean": sum(items) / len(items),
    }
    for q in quantiles:
        rank = max(1, math.ceil(q * len(items)))
        out[f"p{round(q * 100):g}"] = items[rank - 1]
    return out
