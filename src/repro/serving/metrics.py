"""Small statistics helpers used by the experiment runners."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["geometric_mean", "mean", "normalize"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    items = list(values)
    if not items:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Each value divided by ``reference``."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [v / reference for v in values]
